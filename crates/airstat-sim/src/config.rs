//! Scenario configuration.
//!
//! Everything is derived from the paper's §2–§5 setup: 20,667 networks,
//! 10,000 MR16s, 10,000 MR18s, one-week measurement windows in January
//! 2014 and January 2015, plus the July 2014 neighbour comparison. The
//! `scale` knob shrinks every population proportionally so the full
//! pipeline runs in seconds on a laptop while keeping every distribution's
//! *shape*; `scale = 1.0` reproduces the paper's magnitudes.

use airstat_store::QueryBackend;
use airstat_telemetry::backend::WindowId;

use crate::faults::FaultSchedule;

/// The two usage-measurement years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementYear {
    /// January 15–22, 2014.
    Y2014,
    /// January 15–22, 2015.
    Y2015,
}

impl MeasurementYear {
    /// The backend window this year's data lands in.
    pub fn window(self) -> WindowId {
        match self {
            MeasurementYear::Y2014 => WINDOW_JAN_2014,
            MeasurementYear::Y2015 => WINDOW_JAN_2015,
        }
    }
}

/// Backend window for January 15–22, 2014.
pub const WINDOW_JAN_2014: WindowId = WindowId(1401);
/// Backend window for the July 2014 neighbour/link comparison ("six
/// months ago" in §4).
pub const WINDOW_JUL_2014: WindowId = WindowId(1407);
/// Backend window for January 15–22, 2015.
pub const WINDOW_JAN_2015: WindowId = WindowId(1501);

/// Seconds in the one-week measurement window.
pub const WEEK_S: u64 = 7 * 24 * 3600;

/// Which drain implementation the engine runs per agent.
///
/// Both paths produce byte-identical reports — the scheduler runs each
/// agent on its own virtual-time session, so per-agent results are
/// interleaving-invariant — and `tests/scheduler.rs` pins that
/// differentially. The flat path is retained as the reference
/// implementation and for the bench overhead gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollPath {
    /// The backpressure-aware scheduler (`airstat_telemetry::sched`):
    /// priority queues, retry ledger, eviction accounting. The default.
    #[default]
    Scheduler,
    /// The pre-scheduler flat drain loops, kept as the differential
    /// reference.
    FlatReference,
}

impl PollPath {
    /// Looks a path up by its CLI name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "scheduler" => Some(PollPath::Scheduler),
            "flat-reference" => Some(PollPath::FlatReference),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PollPath::Scheduler => "scheduler",
            PollPath::FlatReference => "flat-reference",
        }
    }
}

/// Top-level fleet configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Root random seed; every run with the same seed is byte-identical.
    pub seed: u64,
    /// Population scale in `(0, 1]` relative to the paper's fleet.
    pub scale: f64,
    /// Networks in the usage panel at `scale = 1.0` (paper: 20,667).
    pub usage_networks_full: u32,
    /// MR16-class APs in the radio panel at `scale = 1.0` (paper: 10,000).
    pub mr16_aps_full: u32,
    /// MR18-class APs in the scan panel at `scale = 1.0` (paper: 10,000).
    pub mr18_aps_full: u32,
    /// Unique clients per week at `scale = 1.0` for the 2015 window
    /// (paper: 5,578,126). The 2014 window is derived from growth rates.
    pub clients_2015_full: u64,
    /// Interval between link-stat report submissions (s). The probe
    /// machinery itself stays at 15 s probes / 300 s windows; this only
    /// controls how often the sliding-window value is *reported*.
    pub link_report_interval_s: u64,
    /// Interval between MR18 scan aggregations (s); paper: 180.
    pub scan_window_s: u64,
    /// Probability a poll round-trip is lost (transport fault injection).
    pub poll_drop_probability: f64,
    /// Worker threads for the engine's parallel panels. `1` selects the
    /// strictly serial path; larger values fan independent work units out
    /// across a thread pool. Output is byte-identical for every value —
    /// the engine merges unit results in deterministic order. Defaults to
    /// [`default_threads`].
    pub threads: usize,
    /// Shard count for the aggregation store the engine fills. Like
    /// `threads`, output is byte-identical for every value ≥ 1 — the
    /// store's query engine merges per-shard partials in a canonical
    /// order. Defaults to [`airstat_store::DEFAULT_SHARDS`].
    pub shards: usize,
    /// Optional fault-injection campaign. `None` runs the healthy
    /// pipeline; `Some(schedule)` injects the schedule's per-window
    /// faults during every drain. A [`FaultSchedule::zero`] schedule
    /// reproduces the `None` output byte for byte (differential-tested),
    /// and campaigns stay byte-identical across thread counts.
    pub faults: Option<FaultSchedule>,
    /// Execution strategy the query engine uses: the cost-based
    /// planner (default, picks vectorized+pruned, columnar, or legacy
    /// per plan), or one of those paths forced. All produce
    /// byte-identical reports; they differ only in cold-query cost.
    pub query_backend: QueryBackend,
    /// Which drain implementation runs per agent: the backpressure-aware
    /// scheduler (default) or the retained flat reference loops. Both
    /// produce byte-identical reports.
    pub poll_path: PollPath,
    /// Seal the store's columnar read layout every N ingested batches
    /// mid-campaign (`None` seals only when the first query opens).
    /// Reports are byte-identical for every cadence — a seal is purely a
    /// read-layout projection — and with incremental delta segments each
    /// mid-run seal costs in proportion to the rows dirtied since the
    /// previous one, not the store size.
    pub seal_every: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::paper(0.01)
    }
}

impl FleetConfig {
    /// The paper-faithful configuration at the given scale.
    ///
    /// # Panics
    /// Panics unless `0 < scale <= 1`.
    pub fn paper(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        FleetConfig {
            seed: 0x0051_60C0_2015,
            scale,
            usage_networks_full: 20_667,
            mr16_aps_full: 10_000,
            mr18_aps_full: 10_000,
            clients_2015_full: 5_578_126,
            link_report_interval_s: 3600,
            scan_window_s: 180,
            poll_drop_probability: 0.01,
            threads: default_threads(),
            shards: airstat_store::DEFAULT_SHARDS,
            faults: None,
            query_backend: QueryBackend::default(),
            poll_path: PollPath::default(),
            seal_every: None,
        }
    }

    /// A tiny smoke-test configuration for unit tests.
    pub fn smoke() -> Self {
        FleetConfig {
            link_report_interval_s: 6 * 3600,
            ..FleetConfig::paper(0.002)
        }
    }

    /// Networks in the usage panel at this scale (at least 1).
    pub fn usage_networks(&self) -> u32 {
        scale_count(self.usage_networks_full, self.scale)
    }

    /// MR16 APs at this scale.
    pub fn mr16_aps(&self) -> u32 {
        scale_count(self.mr16_aps_full, self.scale)
    }

    /// MR18 APs at this scale.
    pub fn mr18_aps(&self) -> u32 {
        scale_count(self.mr18_aps_full, self.scale)
    }

    /// Worker threads the engine will actually use (at least 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Store shards the engine will actually use (at least 1).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// Target client count for a measurement year at this scale.
    ///
    /// 2014 is 2015 divided by the paper's 37% total growth.
    pub fn clients(&self, year: MeasurementYear) -> u64 {
        let full_2015 = self.clients_2015_full as f64;
        let full = match year {
            MeasurementYear::Y2015 => full_2015,
            MeasurementYear::Y2014 => full_2015 / 1.371,
        };
        ((full * self.scale).round() as u64).max(1)
    }
}

fn scale_count(full: u32, scale: f64) -> u32 {
    ((f64::from(full) * scale).round() as u32).max(1)
}

/// The host's available parallelism, with a serial fallback when the
/// runtime cannot determine it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let cfg = FleetConfig::paper(1.0);
        assert_eq!(cfg.usage_networks(), 20_667);
        assert_eq!(cfg.mr16_aps(), 10_000);
        assert_eq!(cfg.mr18_aps(), 10_000);
        assert_eq!(cfg.clients(MeasurementYear::Y2015), 5_578_126);
        // 2014 ≈ 4.07M (paper: "4.07 million to 5.58 million").
        let c2014 = cfg.clients(MeasurementYear::Y2014);
        assert!((c2014 as f64 - 4.07e6).abs() < 0.03e6, "{c2014}");
    }

    #[test]
    fn scaling_is_proportional() {
        let cfg = FleetConfig::paper(0.1);
        assert_eq!(cfg.usage_networks(), 2_067);
        assert_eq!(cfg.mr16_aps(), 1_000);
        let ratio = cfg.clients(MeasurementYear::Y2015) as f64 / 5_578_126.0;
        assert!((ratio - 0.1).abs() < 1e-3);
    }

    #[test]
    fn tiny_scale_never_zero() {
        let cfg = FleetConfig::paper(1e-6);
        assert!(cfg.usage_networks() >= 1);
        assert!(cfg.mr16_aps() >= 1);
        assert!(cfg.clients(MeasurementYear::Y2014) >= 1);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        let _ = FleetConfig::paper(0.0);
    }

    #[test]
    fn thread_knob_defaults_sane() {
        let cfg = FleetConfig::paper(0.01);
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.effective_threads(), cfg.threads);
        let serial = FleetConfig {
            threads: 0,
            ..FleetConfig::smoke()
        };
        assert_eq!(serial.effective_threads(), 1);
    }

    #[test]
    fn shard_knob_defaults_sane() {
        let cfg = FleetConfig::paper(0.01);
        assert_eq!(cfg.shards, airstat_store::DEFAULT_SHARDS);
        assert_eq!(cfg.effective_shards(), cfg.shards);
        let single = FleetConfig {
            shards: 0,
            ..FleetConfig::smoke()
        };
        assert_eq!(single.effective_shards(), 1);
    }

    #[test]
    fn windows_are_distinct() {
        assert_ne!(WINDOW_JAN_2014, WINDOW_JUL_2014);
        assert_ne!(WINDOW_JUL_2014, WINDOW_JAN_2015);
        assert_eq!(MeasurementYear::Y2014.window(), WINDOW_JAN_2014);
        assert_eq!(MeasurementYear::Y2015.window(), WINDOW_JAN_2015);
    }
}
