//! Scheduler-level fleet campaigns: one [`Scheduler`] over 100k+ APs.
//!
//! The engine ([`crate::engine`]) drains each agent on its own solo
//! scheduler, which is what keeps campaign output byte-identical across
//! thread counts — but it can never create *queue pressure*, because a
//! solo scheduler has nothing to evict. This module is where pressure
//! lives: a single shared scheduler admits a whole heterogeneous fleet
//! (healthy / degraded / outage-recovering cohorts, resolved per AP from
//! its fault stream), a bounded admission capacity forces LOW-priority
//! evictions, and a per-tick poll budget makes the fairness quotas and
//! the poll-gap bound observable at fleet scale.
//!
//! The run is exactly as deterministic as the engine: every AP's fault
//! and tunnel streams descend from `seed.child("fleet").indexed(i)`, the
//! admission wave order is the AP index order, and the scheduler itself
//! contains no randomness. `tests/scheduler.rs` runs this at 100k APs
//! and asserts evictions occur, the accounting identity holds with the
//! eviction terms, and no class's queue wait exceeds the pinned bound.

use airstat_stats::SeedTree;
use airstat_telemetry::poll::PollPolicy;
use airstat_telemetry::report::ReportPayload;
use airstat_telemetry::sched::{Admission, SchedConfig, SchedStats, Scheduler};
use airstat_telemetry::transport::{DeviceAgent, TunnelConfig};

use crate::faults::{DegradationTally, FaultIntensity, FaultedEndpoint};

/// Configuration for one scheduler-level fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetCampaignConfig {
    /// APs admitted over the campaign.
    pub aps: usize,
    /// Root seed; same seed, same campaign, byte for byte.
    pub seed: u64,
    /// Reports each AP submits before admission.
    pub reports_per_ap: u64,
    /// The fault intensity every AP resolves its cohort from.
    pub intensity: FaultIntensity,
    /// The poll policy every admitted AP runs under.
    pub policy: PollPolicy,
    /// Device queue capacity per AP (must exceed `reports_per_ap + 1` so
    /// the crash report never overflows — overflow is the engine
    /// campaigns' axis, not this one's).
    pub device_capacity: usize,
    /// Scheduler admission capacity; admissions beyond it evict the
    /// oldest LOW AP. `None` disables pressure entirely.
    pub sched_capacity: Option<usize>,
    /// APs admitted per scheduler tick (the arrival wave).
    pub admit_per_tick: usize,
    /// APs polled per scheduler tick.
    pub tick_poll_budget: usize,
    /// Base tunnel fault configuration cohort intensities add onto.
    pub base: TunnelConfig,
}

impl FleetCampaignConfig {
    /// The canned queue-pressure fleet at a given AP count: the
    /// [`crate::faults::FaultSchedule::queue_pressure_fleet`] cohort mix
    /// with an admission capacity and tick budget sized so arrival
    /// outpaces drain — sustained pressure, sustained evictions.
    pub fn queue_pressure_fleet(aps: usize) -> Self {
        FleetCampaignConfig {
            aps,
            seed: 0x00F1_EE70_2015,
            reports_per_ap: 6,
            intensity: crate::faults::FaultSchedule::queue_pressure_fleet()
                .intensity(crate::config::WINDOW_JAN_2015)
                .clone(),
            policy: PollPolicy::default(),
            device_capacity: 16,
            sched_capacity: Some(2048),
            admit_per_tick: 512,
            tick_poll_budget: 384,
            base: TunnelConfig {
                drop_probability: 0.01,
                poll_batch: 4,
            },
        }
    }
}

/// What one fleet campaign produced.
#[derive(Debug)]
pub struct FleetCampaignRun {
    /// Campaign-wide degradation accounting, eviction terms included.
    pub degradation: DegradationTally,
    /// The shared scheduler's counters.
    pub sched: SchedStats,
    /// The per-class poll-gap bounds the run was held to
    /// (`ceil(max_ready_depth / guarantee)` ticks), indexed by
    /// [`airstat_telemetry::sched::Priority::index`]; `None` where the
    /// tick budget guarantees a class nothing.
    pub poll_gap_bounds: [Option<u64>; 3],
}

impl FleetCampaignRun {
    /// The eviction-era accounting identity: every submitted report is
    /// accepted, destroyed by overflow / crash / eviction, or still
    /// queued when its drain's budget ran out. Returns
    /// `(submitted, accounted)` — equal when the identity holds.
    pub fn accounting_identity(&self) -> (u64, u64) {
        let d = &self.degradation;
        (
            d.submitted,
            d.accepted + d.dropped_overflow + d.lost_to_crash + d.left_queued + d.lost_to_eviction,
        )
    }
}

/// Runs a fleet campaign: admit `admit_per_tick` APs per tick (in AP
/// index order), tick the shared scheduler until every AP has drained or
/// been evicted, and account every report's fate.
pub fn run_fleet_campaign(config: &FleetCampaignConfig) -> FleetCampaignRun {
    let seed = SeedTree::new(config.seed).child("fleet");
    let mut sched: Scheduler<FaultedEndpoint> = Scheduler::new(SchedConfig {
        policy: config.policy,
        tick_poll_budget: config.tick_poll_budget.max(1),
        capacity: config.sched_capacity,
    });
    let mut degradation = DegradationTally::default();
    let mut next_ap = 0usize;
    let admit_wave = config.admit_per_tick.max(1);

    while next_ap < config.aps || sched.live() > 0 {
        let wave_end = (next_ap + admit_wave).min(config.aps);
        while next_ap < wave_end {
            let ap = next_ap as u64;
            next_ap += 1;
            let node = seed.indexed(ap);
            let mut agent = DeviceAgent::with_capacity(ap + 1, config.device_capacity);
            for t in 0..config.reports_per_ap {
                agent.submit(t * 60, ReportPayload::Usage(vec![]));
            }
            let endpoint =
                FaultedEndpoint::new(&config.intensity, config.base, &node, "mr-25.9", agent);
            match sched.admit(ap, endpoint.priority(), endpoint) {
                Admission::Admitted => {}
                Admission::Deduped(_) => {
                    unreachable!("AP indices are unique, dedup cannot fire")
                }
                Admission::Rejected(endpoint) => {
                    // The scheduler already tallied the rejection as a
                    // LOW eviction; the reports it queued were submitted
                    // and destroyed without ever being polled.
                    degradation.submitted += endpoint.agent().reports_submitted();
                    degradation.dropped_overflow += endpoint.agent().dropped_overflow();
                }
            }
        }
        sched.tick();
        drain_finished(&mut sched, &mut degradation);
    }
    sched.run_to_completion();
    drain_finished(&mut sched, &mut degradation);

    let stats = sched.stats().clone();
    degradation.record_evictions(&stats);
    let poll_gap_bounds = [
        sched.poll_gap_bound_ticks(airstat_telemetry::sched::Priority::High),
        sched.poll_gap_bound_ticks(airstat_telemetry::sched::Priority::Normal),
        sched.poll_gap_bound_ticks(airstat_telemetry::sched::Priority::Low),
    ];
    FleetCampaignRun {
        degradation,
        sched: stats,
        poll_gap_bounds,
    }
}

/// Accounts every drain the scheduler has finished so far, keeping the
/// scheduler's `finished` list (and its memory) from growing with the
/// fleet.
fn drain_finished(sched: &mut Scheduler<FaultedEndpoint>, degradation: &mut DegradationTally) {
    for drain in sched.take_finished() {
        degradation.absorb(&drain.stats);
        // The fleet has no backend behind it; a delivered, non-redelivered
        // report is an accepted report.
        degradation.accepted += drain.stats.delivered - drain.stats.redelivered;
        degradation.submitted += drain.endpoint.agent().reports_submitted();
        degradation.dropped_overflow += drain.endpoint.agent().dropped_overflow();
        degradation.lost_to_crash += drain.endpoint.crash_lost();
        degradation.crash_reboots += drain.endpoint.crash_reboots();
        degradation.failovers += drain.endpoint.failovers();
        degradation.secondary_served += drain.endpoint.secondary_served();
        if drain.evicted {
            // `undelivered` is already in the scheduler's
            // `evicted_reports` counter, recorded into `lost_to_eviction`
            // at the end of the run.
        } else if drain.stats.budget_exhausted {
            degradation.left_queued += drain.undelivered;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_campaign_is_deterministic_and_balanced() {
        let config = FleetCampaignConfig {
            aps: 600,
            sched_capacity: Some(128),
            admit_per_tick: 64,
            tick_poll_budget: 32,
            ..FleetCampaignConfig::queue_pressure_fleet(600)
        };
        let a = run_fleet_campaign(&config);
        let b = run_fleet_campaign(&config);
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.sched, b.sched);
        assert!(a.sched.evictions() > 0, "pressure must evict");
        assert_eq!(
            a.sched.evicted_aps[0], 0,
            "HIGH-priority APs are never evicted"
        );
        assert_eq!(
            a.sched.evicted_aps[1], 0,
            "NORMAL-priority APs are never evicted"
        );
        let (submitted, accounted) = a.accounting_identity();
        assert_eq!(submitted, accounted, "accounting identity under eviction");
        assert!(a.degradation.lost_to_eviction > 0);
    }

    #[test]
    fn unbounded_fleet_never_evicts() {
        let config = FleetCampaignConfig {
            aps: 300,
            sched_capacity: None,
            ..FleetCampaignConfig::queue_pressure_fleet(300)
        };
        let run = run_fleet_campaign(&config);
        assert_eq!(run.sched.evictions(), 0);
        assert_eq!(run.degradation.lost_to_eviction, 0);
        let (submitted, accounted) = run.accounting_identity();
        assert_eq!(submitted, accounted);
    }
}
