//! The application traffic profile: the generative side of Tables 5 and 6.
//!
//! For every application we carry four marginals taken from (or
//! interpolated around) Table 5:
//!
//! * `byte_share` — fraction of total 2015 bytes;
//! * `growth` — year-over-year byte growth, used to derive the 2014
//!   profile (`share_2014 ∝ share_2015 / (1 + growth)`);
//! * `reach` — fraction of all clients that touch the app in a week;
//! * `down_frac` — downstream share of the app's bytes (Table 5's
//!   "% download" column), the source of the paper's observations about
//!   balanced file-sharing vs. 45× read-heavy web file hosting vs. 23×
//!   write-heavy online backup and the upload-dominated Dropcam.
//!
//! The traffic generator samples *participation* per client from `reach`
//! and splits the client's byte budget proportionally to
//! `byte_share / reach` (the per-user intensity), so the aggregate shares,
//! per-app client counts, and MB/client columns all emerge from the same
//! three numbers — just like the real table did.

use airstat_classify::apps::Application;
use airstat_classify::device::OsFamily;

use crate::config::MeasurementYear;

/// One application's marginals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// The application.
    pub app: Application,
    /// Share of total 2015 bytes, unnormalized (we normalize at use).
    pub byte_share: f64,
    /// Year-over-year byte growth (0.76 = +76%).
    pub growth: f64,
    /// Fraction of clients using the app per week (2015).
    pub reach: f64,
    /// Downstream fraction of the app's bytes.
    pub down_frac: f64,
}

/// The full 2015 profile table.
///
/// Shares follow Table 5 (mangled cells interpolated); apps added to
/// complete Table 6's categories get small shares consistent with the
/// category totals.
pub const PROFILES: &[AppProfile] = &[
    // Miscellaneous buckets.
    AppProfile {
        app: Application::MiscWeb,
        byte_share: 0.205,
        growth: 0.55,
        reach: 0.829,
        down_frac: 0.77,
    },
    AppProfile {
        app: Application::MiscSecureWeb,
        byte_share: 0.077,
        growth: 0.94,
        reach: 0.80,
        down_frac: 0.70,
    },
    AppProfile {
        app: Application::MiscVideo,
        byte_share: 0.051,
        growth: 0.61,
        reach: 0.248,
        down_frac: 0.91,
    },
    AppProfile {
        app: Application::MiscAudio,
        byte_share: 0.0066,
        growth: 0.54,
        reach: 0.0825,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::NonWebTcp,
        byte_share: 0.082,
        growth: 0.76,
        reach: 0.917,
        down_frac: 0.60,
    },
    AppProfile {
        app: Application::UdpOther,
        byte_share: 0.032,
        growth: 0.60,
        reach: 0.664,
        down_frac: 0.61,
    },
    // Named top-40 applications.
    AppProfile {
        app: Application::Netflix,
        byte_share: 0.098,
        growth: 0.76,
        reach: 0.0289,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Youtube,
        byte_share: 0.100,
        growth: 0.70,
        reach: 0.40,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Itunes,
        byte_share: 0.054,
        growth: 0.66,
        reach: 0.40,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::WindowsFileSharing,
        byte_share: 0.045,
        growth: 0.48,
        reach: 0.1328,
        down_frac: 0.66,
    },
    AppProfile {
        app: Application::Cdns,
        byte_share: 0.039,
        growth: 0.81,
        reach: 0.566,
        down_frac: 0.72,
    },
    AppProfile {
        app: Application::Facebook,
        byte_share: 0.032,
        growth: 0.61,
        reach: 0.642,
        down_frac: 0.90,
    },
    AppProfile {
        app: Application::GoogleHttps,
        byte_share: 0.026,
        growth: 0.67,
        reach: 0.709,
        down_frac: 0.85,
    },
    AppProfile {
        app: Application::AppleFileSharing,
        byte_share: 0.022,
        growth: 0.18,
        reach: 0.0039,
        down_frac: 0.44,
    },
    AppProfile {
        app: Application::AppleCom,
        byte_share: 0.019,
        growth: 0.79,
        reach: 0.495,
        down_frac: 0.94,
    },
    AppProfile {
        app: Application::Google,
        byte_share: 0.018,
        growth: 0.19,
        reach: 0.682,
        down_frac: 0.85,
    },
    AppProfile {
        app: Application::GoogleDrive,
        byte_share: 0.012,
        growth: 3.74,
        reach: 0.238,
        down_frac: 0.79,
    },
    AppProfile {
        app: Application::Dropbox,
        byte_share: 0.012,
        growth: -0.015,
        reach: 0.066,
        down_frac: 0.60,
    },
    AppProfile {
        app: Application::SoftwareUpdates,
        byte_share: 0.0094,
        growth: 0.36,
        reach: 0.124,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Instagram,
        byte_share: 0.0091,
        growth: 0.45,
        reach: 0.149,
        down_frac: 0.96,
    },
    AppProfile {
        app: Application::BitTorrent,
        byte_share: 0.0069,
        growth: -0.085,
        reach: 0.0069,
        down_frac: 0.58,
    },
    AppProfile {
        app: Application::Skype,
        byte_share: 0.0069,
        growth: 0.48,
        reach: 0.0704,
        down_frac: 0.49,
    },
    AppProfile {
        app: Application::Pandora,
        byte_share: 0.0064,
        growth: 0.25,
        reach: 0.0328,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Rtmp,
        byte_share: 0.0062,
        growth: 0.10,
        reach: 0.0253,
        down_frac: 0.96,
    },
    AppProfile {
        app: Application::Gmail,
        byte_share: 0.0062,
        growth: 0.26,
        reach: 0.240,
        down_frac: 0.74,
    },
    AppProfile {
        app: Application::MicrosoftCom,
        byte_share: 0.0059,
        growth: 0.15,
        reach: 0.154,
        down_frac: 0.94,
    },
    AppProfile {
        app: Application::Tumblr,
        byte_share: 0.0057,
        growth: 0.31,
        reach: 0.0485,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Spotify,
        byte_share: 0.0056,
        growth: 1.42,
        reach: 0.0375,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::WindowsLiveMail,
        byte_share: 0.0047,
        growth: 2.16,
        reach: 0.0657,
        down_frac: 0.64,
    },
    AppProfile {
        app: Application::Dropcam,
        byte_share: 0.0042,
        growth: 0.72,
        reach: 0.000527,
        down_frac: 0.05,
    },
    AppProfile {
        app: Application::Hulu,
        byte_share: 0.0036,
        growth: 1.02,
        reach: 0.00926,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Steam,
        byte_share: 0.0035,
        growth: 0.47,
        reach: 0.00377,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Twitter,
        byte_share: 0.0033,
        growth: 0.67,
        reach: 0.345,
        down_frac: 0.91,
    },
    AppProfile {
        app: Application::EncryptedP2p,
        byte_share: 0.0033,
        growth: 0.17,
        reach: 0.0146,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::EncryptedTcp,
        byte_share: 0.0031,
        growth: 0.50,
        reach: 0.258,
        down_frac: 0.65,
    },
    AppProfile {
        app: Application::RemoteDesktop,
        byte_share: 0.0029,
        growth: 0.66,
        reach: 0.0168,
        down_frac: 0.88,
    },
    AppProfile {
        app: Application::Espn,
        byte_share: 0.0027,
        growth: 1.22,
        reach: 0.0364,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::XfinityTv,
        byte_share: 0.0026,
        growth: 0.87,
        reach: 0.0023,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::OtherWebmail,
        byte_share: 0.0025,
        growth: -0.064,
        reach: 0.0498,
        down_frac: 0.49,
    },
    AppProfile {
        app: Application::Skydrive,
        byte_share: 0.0023,
        growth: -0.10,
        reach: 0.0483,
        down_frac: 0.25,
    },
    // Category completions (below the top-40 cut but present in Table 6).
    AppProfile {
        app: Application::XboxLive,
        byte_share: 0.0020,
        growth: 0.50,
        reach: 0.020,
        down_frac: 0.95,
    },
    AppProfile {
        app: Application::Crashplan,
        byte_share: 0.0008,
        growth: 0.10,
        reach: 0.0007,
        down_frac: 0.042,
    },
    AppProfile {
        app: Application::Backblaze,
        byte_share: 0.0007,
        growth: 0.10,
        reach: 0.0006,
        down_frac: 0.042,
    },
    AppProfile {
        app: Application::Wordpress,
        byte_share: 0.0002,
        growth: -0.34,
        reach: 0.050,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Blogger,
        byte_share: 0.00018,
        growth: -0.34,
        reach: 0.037,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Mediafire,
        byte_share: 0.0001,
        growth: -0.27,
        reach: 0.0012,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Hotfile,
        byte_share: 0.00006,
        growth: -0.27,
        reach: 0.0007,
        down_frac: 0.98,
    },
    AppProfile {
        app: Application::Cnn,
        byte_share: 0.0011,
        growth: 0.76,
        reach: 0.080,
        down_frac: 0.95,
    },
    AppProfile {
        app: Application::NyTimes,
        byte_share: 0.0010,
        growth: 0.76,
        reach: 0.073,
        down_frac: 0.95,
    },
    AppProfile {
        app: Application::Vimeo,
        byte_share: 0.0015,
        growth: 0.70,
        reach: 0.020,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Twitch,
        byte_share: 0.0015,
        growth: 1.00,
        reach: 0.010,
        down_frac: 0.97,
    },
    AppProfile {
        app: Application::Snapchat,
        byte_share: 0.0010,
        growth: 1.50,
        reach: 0.060,
        down_frac: 0.85,
    },
    AppProfile {
        app: Application::Pinterest,
        byte_share: 0.0008,
        growth: 0.80,
        reach: 0.070,
        down_frac: 0.95,
    },
    AppProfile {
        app: Application::YahooMail,
        byte_share: 0.0008,
        growth: -0.05,
        reach: 0.040,
        down_frac: 0.55,
    },
    AppProfile {
        app: Application::Webex,
        byte_share: 0.0012,
        growth: 0.40,
        reach: 0.012,
        down_frac: 0.45,
    },
    AppProfile {
        app: Application::Facetime,
        byte_share: 0.0010,
        growth: 0.60,
        reach: 0.015,
        down_frac: 0.50,
    },
];

/// Returns the profile for an app, if it has one.
pub fn profile_of(app: Application) -> Option<&'static AppProfile> {
    PROFILES.iter().find(|p| p.app == app)
}

/// Year-adjusted `(byte_share, reach)` for an app.
///
/// 2014 byte shares are back-projected through the growth column and then
/// used unnormalized — the traffic generator normalizes per client. Reach
/// is back-projected through a compressed growth factor (client counts
/// grew slower than bytes, per Table 5's two % columns).
pub fn year_adjusted(profile: &AppProfile, year: MeasurementYear) -> (f64, f64) {
    match year {
        MeasurementYear::Y2015 => (profile.byte_share, profile.reach),
        MeasurementYear::Y2014 => {
            let share = profile.byte_share / (1.0 + profile.growth).max(0.05);
            // Client reach grew roughly half as fast as bytes.
            let reach_growth = 1.0 + profile.growth / 2.0;
            let reach = (profile.reach / reach_growth.max(0.3)).clamp(0.0, 1.0);
            (share, reach)
        }
    }
}

/// Per-OS affinity multiplier applied to an app's participation odds.
///
/// Encodes the paper's platform observations: consoles stream media and
/// play games but do not mount SMB shares; mobile devices skew to social
/// and video and away from desktop protocols; Chromebooks live in Google
/// services; Dropcam-class embedded devices do one thing only.
pub fn os_affinity(os: OsFamily, app: Application) -> f64 {
    use airstat_classify::apps::AppCategory as C;
    use Application as A;
    let cat = app.category();
    match os {
        OsFamily::PlaystationOs => match cat {
            C::Gaming | C::VideoMusic => 8.0,
            C::SoftwareUpdates => 2.0,
            _ => match app {
                A::NonWebTcp | A::UdpOther | A::MiscWeb => 0.4,
                _ => 0.0,
            },
        },
        OsFamily::AppleIos => match app {
            A::WindowsFileSharing | A::RemoteDesktop | A::Steam | A::XboxLive => 0.0,
            A::Itunes | A::AppleCom | A::Facetime => 3.0,
            A::Instagram | A::Snapchat | A::Facebook | A::Youtube => 1.8,
            A::BitTorrent | A::EncryptedP2p => 0.0,
            _ => 1.0,
        },
        OsFamily::Android => match app {
            A::WindowsFileSharing | A::RemoteDesktop | A::Steam | A::Itunes | A::Facetime => 0.0,
            A::Youtube | A::GoogleHttps | A::Google | A::GoogleDrive => 2.0,
            A::Instagram | A::Snapchat | A::Facebook => 1.8,
            A::BitTorrent | A::EncryptedP2p => 0.1,
            _ => 1.0,
        },
        OsFamily::ChromeOs => match app {
            A::GoogleHttps | A::Google | A::GoogleDrive | A::Gmail | A::Youtube => 3.0,
            A::WindowsFileSharing | A::Itunes | A::Steam | A::BitTorrent => 0.0,
            _ => 0.8,
        },
        OsFamily::Windows => match app {
            A::WindowsFileSharing | A::SoftwareUpdates | A::Steam | A::RemoteDesktop => 2.0,
            A::Skydrive | A::WindowsLiveMail | A::MicrosoftCom => 2.0,
            A::Itunes | A::Facetime => 0.3,
            _ => 1.0,
        },
        OsFamily::MacOsX => match app {
            A::AppleFileSharing | A::Itunes | A::AppleCom | A::Facetime => 2.5,
            A::WindowsFileSharing => 0.3,
            A::Crashplan | A::Backblaze | A::Dropbox => 2.0,
            _ => 1.0,
        },
        OsFamily::Linux => match app {
            A::Itunes | A::WindowsFileSharing | A::Skydrive | A::Facetime => 0.0,
            A::NonWebTcp | A::EncryptedTcp | A::RemoteDesktop => 2.0,
            A::BitTorrent => 3.0,
            _ => 0.8,
        },
        OsFamily::BlackBerry | OsFamily::MobileWindows => match cat {
            C::Email | C::SocialWebPhoto => 1.5,
            C::VideoMusic => 0.5,
            _ => match app {
                A::MiscWeb | A::MiscSecureWeb | A::NonWebTcp | A::UdpOther => 1.0,
                _ => 0.2,
            },
        },
        // Dropcam cameras and other embedded devices live here: Unknown
        // and Other get the Dropcam/backup-style apps at full odds.
        OsFamily::Unknown | OsFamily::Other => match app {
            A::Dropcam => 30.0,
            A::MiscWeb | A::MiscSecureWeb | A::NonWebTcp | A::UdpOther | A::EncryptedTcp => 1.0,
            _ => 0.3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::apps::AppCategory;

    #[test]
    fn profiles_cover_every_application() {
        for &app in Application::ALL {
            assert!(profile_of(app).is_some(), "missing profile for {app:?}");
        }
        assert_eq!(PROFILES.len(), Application::ALL.len());
    }

    #[test]
    fn shares_sum_near_one() {
        let total: f64 = PROFILES.iter().map(|p| p.byte_share).sum();
        assert!((total - 1.0).abs() < 0.06, "shares sum to {total}");
    }

    #[test]
    fn category_shares_match_table6_shape() {
        let mut by_cat = std::collections::BTreeMap::new();
        for p in PROFILES {
            *by_cat.entry(p.app.category()).or_insert(0.0) += p.byte_share;
        }
        let total: f64 = by_cat.values().sum();
        let share = |c: AppCategory| by_cat.get(&c).copied().unwrap_or(0.0) / total;
        // Table 6: Other 47%, Video & music 34%, File sharing 8.4%.
        assert!(
            (share(AppCategory::Other) - 0.47).abs() < 0.05,
            "other {}",
            share(AppCategory::Other)
        );
        assert!((share(AppCategory::VideoMusic) - 0.34).abs() < 0.05);
        assert!((share(AppCategory::FileSharing) - 0.084).abs() < 0.03);
        assert!(share(AppCategory::SocialWebPhoto) > 0.02);
        assert!(share(AppCategory::Email) > 0.01);
    }

    #[test]
    fn marginals_are_sane() {
        for p in PROFILES {
            assert!(p.byte_share > 0.0 && p.byte_share < 0.5, "{:?}", p.app);
            assert!(p.reach > 0.0 && p.reach <= 1.0, "{:?}", p.app);
            assert!((0.0..=1.0).contains(&p.down_frac), "{:?}", p.app);
            assert!(p.growth > -1.0, "{:?}", p.app);
        }
    }

    #[test]
    fn dropcam_marginals_produce_the_papers_anomaly() {
        // Dropcam: tiny reach, meaningful share, upload-dominated.
        let p = profile_of(Application::Dropcam).unwrap();
        // Implied MB/client = share / reach is the highest in the table.
        let intensity = p.byte_share / p.reach;
        for q in PROFILES {
            if q.app != Application::Dropcam
                && q.app != Application::Crashplan
                && q.app != Application::Backblaze
            {
                assert!(
                    intensity > q.byte_share / q.reach,
                    "Dropcam intensity must dominate {:?}",
                    q.app
                );
            }
        }
        assert!(p.down_frac < 0.1, "Dropcam uploads ~19x what it downloads");
    }

    #[test]
    fn year_adjustment_shrinks_growing_apps() {
        let spotify = profile_of(Application::Spotify).unwrap();
        let (s2014, r2014) = year_adjusted(spotify, MeasurementYear::Y2014);
        let (s2015, r2015) = year_adjusted(spotify, MeasurementYear::Y2015);
        assert!(s2014 < s2015 / 2.0, "Spotify grew 142%");
        assert!(r2014 < r2015);
        // Shrinking app: 2014 share larger.
        let bt = profile_of(Application::BitTorrent).unwrap();
        let (bt2014, _) = year_adjusted(bt, MeasurementYear::Y2014);
        assert!(bt2014 > bt.byte_share);
    }

    #[test]
    fn affinities_respect_platform_rules() {
        assert_eq!(
            os_affinity(OsFamily::AppleIos, Application::WindowsFileSharing),
            0.0
        );
        assert_eq!(os_affinity(OsFamily::Android, Application::Itunes), 0.0);
        assert!(os_affinity(OsFamily::PlaystationOs, Application::Steam) > 1.0);
        assert_eq!(
            os_affinity(OsFamily::PlaystationOs, Application::Gmail),
            0.0
        );
        assert!(os_affinity(OsFamily::ChromeOs, Application::GoogleDrive) > 1.0);
        assert!(os_affinity(OsFamily::Unknown, Application::Dropcam) > 10.0);
        // Everything has non-negative affinity everywhere.
        for &os in &OsFamily::ALL {
            for &app in Application::ALL {
                assert!(os_affinity(os, app) >= 0.0);
            }
        }
    }
}
