//! World topology: networks, access points, channels, neighbours, links.
//!
//! The radio-measurement panels (§4 and §5) are separate from the usage
//! panel: 10,000 MR16s and 10,000 MR18s in the US. [`World`] generates
//! their physical context:
//!
//! * each AP belongs to a network (≥ 2 APs each, per §3) laid out with
//!   realistic inter-AP spacing in an indoor environment;
//! * each AP has a **neighbour density** — how many foreign networks it
//!   can hear. Density is log-normally distributed with a long tail (the
//!   paper's §6.1 bug story features APs in Manhattan skyscrapers decoding
//!   beacons from miles away), and its mean grows between the July 2014
//!   and January 2015 epochs per Table 7;
//! * foreign networks land on channels via the Figure 2 placement
//!   distribution, and a fraction are personal hotspots (§4.1);
//! * inter-AP probe links are derived from geometry: path loss gives the
//!   RSSI, a heavy-tailed multipath penalty decouples delivery from RSSI,
//!   and the 5 GHz band's extra attenuation naturally yields far fewer —
//!   but cleaner — 5 GHz links (Figure 3's bimodality).

use airstat_rf::band::{Band, Channel, NON_OVERLAPPING_2_4};
use airstat_rf::interference::{sample_kind_2_4, Interferer, InterfererKind};
use airstat_rf::link::{sample_multipath_penalty_db, ProbeLink};
use airstat_rf::neighbors::{hotspot_probability, ChannelPlacement};
use airstat_rf::propagation::{Environment, PathLoss};
use airstat_stats::dist::{Exponential, LogNormal};
use airstat_stats::SeedTree;
use rand::Rng;

use crate::industry::{Industry, IndustryMix};

/// AP hardware model, deciding which instruments it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApModel {
    /// Two serving radios, no scanner; measures its own channels only.
    Mr16,
    /// Adds the dedicated scanning radio.
    Mr18,
}

/// Table 7's epochs for the neighbour environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborEpoch {
    /// July 2014 ("six months ago"): mean 28.6 networks at 2.4 GHz.
    Jul2014,
    /// January 2015: mean 55.5 networks at 2.4 GHz.
    Jan2015,
}

impl NeighborEpoch {
    /// Mean nearby networks per AP on each band (Table 7).
    pub fn mean_networks(self, band: Band) -> f64 {
        match (self, band) {
            (NeighborEpoch::Jul2014, Band::Ghz2_4) => 28.60,
            (NeighborEpoch::Jan2015, Band::Ghz2_4) => 55.47,
            (NeighborEpoch::Jul2014, Band::Ghz5) => 2.47,
            (NeighborEpoch::Jan2015, Band::Ghz5) => 3.68,
        }
    }

    /// Hotspot share of 2.4 GHz networks (§4.1: ~10% in July 2014 —
    /// 56,293 of ~230k — doubling to ~20% by January 2015).
    pub fn hotspot_fraction(self, band: Band) -> f64 {
        match (self, band) {
            (NeighborEpoch::Jul2014, Band::Ghz2_4) => 0.11,
            (NeighborEpoch::Jan2015, Band::Ghz2_4) => hotspot_probability(Band::Ghz2_4),
            (_, Band::Ghz5) => hotspot_probability(Band::Ghz5),
        }
    }
}

/// One access point in the radio panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ApSite {
    /// Stable device id (also the telemetry device id).
    pub device_id: u64,
    /// Hardware model.
    pub model: ApModel,
    /// Owning network index.
    pub network: u32,
    /// Position in metres within the network's floor plan.
    pub position: (f64, f64),
    /// Serving channel at 2.4 GHz (one of 1/6/11).
    pub channel_2_4: Channel,
    /// Serving channel at 5 GHz (non-DFS).
    pub channel_5: Channel,
    /// Propagation environment of the deployment.
    pub environment: Environment,
    /// Relative neighbour density of the location (1.0 = fleet mean).
    pub density: f64,
    /// Offered client data load through this AP at peak (bits/s).
    pub data_load_bps: f64,
    /// Fraction of that load carried on the 5 GHz radio. Varies per site
    /// with the client mix: most offices are 2.4 GHz-heavy (Figure 1's
    /// 80/20 association split) but band-steered deployments push more
    /// capable clients up.
    pub share_5ghz: f64,
    /// Non-802.11 emitters audible at this AP (§5.3: Bluetooth, ZigBee,
    /// cordless phones, microwave ovens).
    pub interferers: Vec<Interferer>,
}

/// A directed probe link between two fleet APs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldLink {
    /// Receiving AP device id.
    pub rx: u64,
    /// Transmitting AP device id.
    pub tx: u64,
    /// The RF description used by the delivery model.
    pub link: ProbeLink,
}

/// One radio-panel network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSite {
    /// Network index.
    pub id: u32,
    /// Industry vertical.
    pub industry: Industry,
    /// Device ids of member APs.
    pub aps: Vec<u64>,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// All radio-panel networks.
    pub networks: Vec<NetworkSite>,
    /// All radio-panel APs.
    pub aps: Vec<ApSite>,
    /// All probe links (both bands, both directions).
    pub links: Vec<WorldLink>,
    /// Channel placement model for foreign networks.
    pub placement: ChannelPlacement,
}

/// Minimum SNR (dB) for a probe link to be tracked at all.
const LINK_TRACK_SNR_DB: f64 = 5.0;

/// MR16/MR18 transmit power (dBm), Table 1.
const TX_POWER_2_4: f64 = 23.0;
const TX_POWER_5: f64 = 24.0;

impl World {
    /// Generates the radio panel: `mr16 + mr18` APs grouped into networks.
    pub fn generate(seed: &SeedTree, mr16: u32, mr18: u32) -> World {
        let mut rng = seed.child("world").rng();
        let industry_mix = IndustryMix::paper();
        let total_aps = mr16 + mr18;
        let aps_per_network = Exponential::with_mean(1.5);
        // Location density: log-normal, mean 1.0, long tail for the
        // Manhattan case (density 10+ means hundreds of beacons heard).
        let density_dist = LogNormal::new(-0.32, 0.8); // median .73, mean 1.0
                                                       // Peak offered load per AP: a few Mb/s with a heavy tail.
        let load_dist = LogNormal::from_median_p90(3.2e6, 10.5e6);

        let mut networks = Vec::new();
        let mut aps: Vec<ApSite> = Vec::new();
        let mut next_device: u64 = 1;
        while (aps.len() as u32) < total_aps {
            let id = networks.len() as u32;
            let industry = industry_mix.sample(&mut rng);
            // Networks have at least two APs (§3's panel criterion).
            let n_aps = (aps_per_network.sample(&mut rng).round() as u32 + 2)
                .min(total_aps - aps.len() as u32)
                .max(1);
            let environment = match rng.gen_range(0..10) {
                0..=5 => Environment::DenseIndoor,
                6..=8 => Environment::OpenIndoor,
                _ => Environment::OpenOutdoor,
            };
            let density = density_dist.sample(&mut rng);
            // Deployment spacing is bimodal: capacity deployments pack APs
            // 17-50 m apart (dense offices), coverage deployments stretch
            // to 55-105 m (warehouses, campuses with thin WiFi). Compact
            // sites produce the strong, clean 5 GHz inter-AP links of
            // Figure 3's right edge; sprawling sites still hear each other
            // at 2.4 GHz but their 5 GHz paths die — the source of the
            // paper's 3:1 link-count ratio between the bands.
            let spacing = if rng.gen::<f64>() < 0.5 {
                14.0 + rng.gen::<f64>() * 22.0
            } else {
                55.0 + rng.gen::<f64>() * 50.0
            };
            let mut members = Vec::with_capacity(n_aps as usize);
            for k in 0..n_aps {
                let device_id = next_device;
                next_device += 1;
                // Indoor layout: APs roughly on the site's grid, jittered.
                let gx = f64::from(k % 4);
                let gy = f64::from(k / 4);
                let position = (
                    gx * spacing + rng.gen::<f64>() * spacing / 2.0,
                    gy * spacing + rng.gen::<f64>() * spacing / 2.0,
                );
                let model = if (aps.len() as u32) < mr16 {
                    ApModel::Mr16
                } else {
                    ApModel::Mr18
                };
                let ch24_num = NON_OVERLAPPING_2_4[rng.gen_range(0..3)];
                let ch5_num = [36u16, 40, 44, 48, 149, 153, 157, 161][rng.gen_range(0..8)];
                aps.push(ApSite {
                    device_id,
                    model,
                    network: id,
                    position,
                    channel_2_4: Channel::new(Band::Ghz2_4, ch24_num).expect(
                        "invariant: the placement planner only emits valid channel numbers",
                    ),
                    channel_5: Channel::new(Band::Ghz5, ch5_num).expect(
                        "invariant: the placement planner only emits valid channel numbers",
                    ),
                    environment,
                    density,
                    data_load_bps: load_dist.sample(&mut rng),
                    share_5ghz: 0.1 + 0.6 * rng.gen::<f64>(),
                    interferers: sample_interferers(density, &mut rng),
                });
                members.push(device_id);
            }
            networks.push(NetworkSite {
                id,
                industry,
                aps: members,
            });
        }

        let links = build_links(&networks, &aps, seed);
        World {
            networks,
            aps,
            links,
            placement: ChannelPlacement::paper_like(),
        }
    }

    /// Looks up an AP by device id.
    pub fn ap(&self, device_id: u64) -> Option<&ApSite> {
        // Device ids are assigned densely starting at 1.
        let idx = device_id.checked_sub(1)? as usize;
        self.aps.get(idx).filter(|a| a.device_id == device_id)
    }

    /// Links received by `device_id` on `band`.
    pub fn links_into(&self, device_id: u64, band: Band) -> impl Iterator<Item = &WorldLink> {
        self.links
            .iter()
            .filter(move |l| l.rx == device_id && l.link.band == band)
    }

    /// Number of links on a band.
    pub fn link_count(&self, band: Band) -> usize {
        self.links.iter().filter(|l| l.link.band == band).count()
    }
}

/// Samples the non-WiFi emitters audible at one AP.
///
/// Denser locations hear more devices; kinds follow §5.3's 2.4 GHz mix
/// (Bluetooth-dominated) with realistic per-kind activity: ZigBee sensors
/// never sleep, a microwave runs minutes per day, phone calls and
/// headsets come and go.
fn sample_interferers<R: Rng + ?Sized>(density: f64, rng: &mut R) -> Vec<Interferer> {
    let count = Exponential::with_mean((density * 2.5).max(0.3))
        .sample(rng)
        .round() as usize;
    (0..count)
        .map(|_| {
            let kind = sample_kind_2_4(rng);
            let activity_fraction = match kind {
                InterfererKind::Zigbee => 1.0,
                InterfererKind::MicrowaveOven => 0.01 + rng.gen::<f64>() * 0.04,
                InterfererKind::CordlessPhone => 0.05 + rng.gen::<f64>() * 0.25,
                InterfererKind::Bluetooth => 0.2 + rng.gen::<f64>() * 0.8,
                InterfererKind::OutdoorLink => 0.2,
            };
            Interferer {
                kind,
                rx_power_dbm: -75.0 + rng.gen::<f64>() * 30.0,
                center_mhz: 2402.0 + rng.gen::<f64>() * 78.0,
                activity_fraction,
            }
        })
        .collect()
}

/// Builds directed probe links between co-network APs.
fn build_links(networks: &[NetworkSite], aps: &[ApSite], seed: &SeedTree) -> Vec<WorldLink> {
    let mut links = Vec::new();
    for network in networks {
        for (i, &rx_id) in network.aps.iter().enumerate() {
            for &tx_id in network.aps.iter().skip(i + 1) {
                let rx = &aps[(rx_id - 1) as usize];
                let tx = &aps[(tx_id - 1) as usize];
                let dx = rx.position.0 - tx.position.0;
                let dy = rx.position.1 - tx.position.1;
                let d = (dx * dx + dy * dy).sqrt().max(1.0);
                let pl = PathLoss::new(rx.environment);
                // One pair-seed so both directions share shadowing (the
                // path is reciprocal) but penalties differ per receiver.
                let pair_seed = seed
                    .child("link")
                    .indexed(rx_id.min(tx_id))
                    .indexed(rx_id.max(tx_id));
                let mut pair_rng = pair_seed.rng();
                for band in [Band::Ghz2_4, Band::Ghz5] {
                    let tx_power = match band {
                        Band::Ghz2_4 => TX_POWER_2_4,
                        Band::Ghz5 => TX_POWER_5,
                    };
                    let shadowing = pl.sample_shadowing_db(&mut pair_rng);
                    for (a, b) in [(rx_id, tx_id), (tx_id, rx_id)] {
                        let rssi = pl.rssi_dbm(band, tx_power, d, shadowing);
                        let penalty = sample_multipath_penalty_db(band, &mut pair_rng);
                        let link = ProbeLink {
                            band,
                            rssi_dbm: rssi,
                            multipath_penalty_db: penalty,
                        };
                        if link.snr_db() > LINK_TRACK_SNR_DB {
                            links.push(WorldLink { rx: a, tx: b, link });
                        }
                    }
                }
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(&SeedTree::new(0xA11CE), 100, 100)
    }

    #[test]
    fn generates_requested_ap_counts() {
        let w = world();
        assert_eq!(w.aps.len(), 200);
        let mr16 = w.aps.iter().filter(|a| a.model == ApModel::Mr16).count();
        assert_eq!(mr16, 100);
        // Device ids are dense from 1.
        for (i, ap) in w.aps.iter().enumerate() {
            assert_eq!(ap.device_id, i as u64 + 1);
            assert_eq!(w.ap(ap.device_id).unwrap().device_id, ap.device_id);
        }
        assert!(w.ap(0).is_none());
        assert!(w.ap(10_000).is_none());
    }

    #[test]
    fn networks_have_at_least_two_aps_mostly() {
        let w = world();
        // The final network may be truncated by the AP budget; every other
        // network has >= 2 APs.
        for n in &w.networks[..w.networks.len() - 1] {
            assert!(n.aps.len() >= 2, "network {} has {} APs", n.id, n.aps.len());
        }
    }

    #[test]
    fn serving_channels_are_sane() {
        let w = world();
        for ap in &w.aps {
            assert!(NON_OVERLAPPING_2_4.contains(&ap.channel_2_4.number));
            assert!(!ap.channel_5.requires_dfs(), "fleet avoids DFS by default");
            assert!(ap.data_load_bps > 0.0);
            assert!(ap.density > 0.0);
        }
    }

    #[test]
    fn more_2_4_links_than_5() {
        let w = world();
        let l24 = w.link_count(Band::Ghz2_4);
        let l5 = w.link_count(Band::Ghz5);
        assert!(l24 > 0 && l5 > 0);
        // Paper: 16,583 vs 5,650 — a factor ~3 at the same AP count.
        assert!(
            l24 as f64 / l5 as f64 > 1.5,
            "2.4 GHz must have many more tracked links: {l24} vs {l5}"
        );
    }

    #[test]
    fn link_ratio_roughly_matches_paper_scale() {
        // Paper: ~1.66 2.4 GHz links per AP over 10k APs.
        let w = world();
        let per_ap = w.link_count(Band::Ghz2_4) as f64 / w.aps.len() as f64;
        assert!(per_ap > 0.5 && per_ap < 6.0, "links per AP {per_ap}");
    }

    #[test]
    fn links_are_within_same_network() {
        let w = world();
        for l in &w.links {
            let rx = w.ap(l.rx).unwrap();
            let tx = w.ap(l.tx).unwrap();
            assert_eq!(rx.network, tx.network);
            assert_ne!(l.rx, l.tx);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&SeedTree::new(7), 50, 50);
        let b = World::generate(&SeedTree::new(7), 50, 50);
        assert_eq!(a.aps, b.aps);
        assert_eq!(a.links, b.links);
        let c = World::generate(&SeedTree::new(8), 50, 50);
        assert_ne!(a.aps, c.aps);
    }

    #[test]
    fn density_distribution_has_mean_one_and_tail() {
        let w = World::generate(&SeedTree::new(3), 2000, 0);
        let densities: Vec<f64> = w.aps.iter().map(|a| a.density).collect();
        let mean = densities.iter().sum::<f64>() / densities.len() as f64;
        assert!((mean - 1.0).abs() < 0.2, "mean density {mean}");
        let max = densities.iter().cloned().fold(0.0, f64::max);
        assert!(max > 5.0, "need skyscraper-grade outliers, max {max}");
    }

    #[test]
    fn epoch_means_match_table7() {
        assert_eq!(NeighborEpoch::Jan2015.mean_networks(Band::Ghz2_4), 55.47);
        assert_eq!(NeighborEpoch::Jul2014.mean_networks(Band::Ghz2_4), 28.60);
        assert_eq!(NeighborEpoch::Jan2015.mean_networks(Band::Ghz5), 3.68);
        assert_eq!(NeighborEpoch::Jul2014.mean_networks(Band::Ghz5), 2.47);
        assert!(
            NeighborEpoch::Jan2015.hotspot_fraction(Band::Ghz2_4)
                > NeighborEpoch::Jul2014.hotspot_fraction(Band::Ghz2_4)
        );
    }
}
