//! Industry verticals: Table 2's network mix.
//!
//! The usage panel spans 19 verticals from Architecture/Engineering (127
//! networks) to VAR/System Integrator (2,876), with Education the largest
//! named segment (4,075). The vertical affects a network's *size profile*
//! (a university network has far more clients than a restaurant) — that is
//! the only downstream effect we model, matching the paper's observation
//! that the panel "is not dominated by one particular industry".

use airstat_stats::dist::WeightedIndex;
use rand::Rng;

/// The 19 industry verticals of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Industry {
    /// Architecture/Engineering.
    ArchitectureEngineering,
    /// Construction.
    Construction,
    /// Consulting.
    Consulting,
    /// Education.
    Education,
    /// Finance/Insurance.
    FinanceInsurance,
    /// Government/Public Sector.
    Government,
    /// Healthcare.
    Healthcare,
    /// Hospitality.
    Hospitality,
    /// Industrial/Manufacturing.
    IndustrialManufacturing,
    /// Legal.
    Legal,
    /// Media/Advertising.
    MediaAdvertising,
    /// Non-Profit.
    NonProfit,
    /// Real Estate.
    RealEstate,
    /// Restaurants.
    Restaurants,
    /// Retail.
    Retail,
    /// Tech.
    Tech,
    /// Telecom.
    Telecom,
    /// VAR/System Integrator.
    VarSystemIntegrator,
    /// Other.
    Other,
}

impl Industry {
    /// All verticals in Table 2 order.
    pub const ALL: [Industry; 19] = [
        Industry::ArchitectureEngineering,
        Industry::Construction,
        Industry::Consulting,
        Industry::Education,
        Industry::FinanceInsurance,
        Industry::Government,
        Industry::Healthcare,
        Industry::Hospitality,
        Industry::IndustrialManufacturing,
        Industry::Legal,
        Industry::MediaAdvertising,
        Industry::NonProfit,
        Industry::RealEstate,
        Industry::Restaurants,
        Industry::Retail,
        Industry::Tech,
        Industry::Telecom,
        Industry::VarSystemIntegrator,
        Industry::Other,
    ];

    /// Table 2's row label.
    pub fn name(self) -> &'static str {
        match self {
            Industry::ArchitectureEngineering => "Architecture/Engineering",
            Industry::Construction => "Construction",
            Industry::Consulting => "Consulting",
            Industry::Education => "Education",
            Industry::FinanceInsurance => "Finance/Insurance",
            Industry::Government => "Government/Public Sector",
            Industry::Healthcare => "Healthcare",
            Industry::Hospitality => "Hospitality",
            Industry::IndustrialManufacturing => "Industrial/Manufacturing",
            Industry::Legal => "Legal",
            Industry::MediaAdvertising => "Media/Advertising",
            Industry::NonProfit => "Non-Profit",
            Industry::RealEstate => "Real Estate",
            Industry::Restaurants => "Restaurants",
            Industry::Retail => "Retail",
            Industry::Tech => "Tech",
            Industry::Telecom => "Telecom",
            Industry::VarSystemIntegrator => "VAR/System Integrator",
            Industry::Other => "Other",
        }
    }

    /// Table 2's network count for this vertical at full scale.
    pub fn network_count_full(self) -> u32 {
        match self {
            Industry::ArchitectureEngineering => 127,
            Industry::Construction => 333,
            Industry::Consulting => 365,
            Industry::Education => 4_075,
            Industry::FinanceInsurance => 737,
            Industry::Government => 1_112,
            Industry::Healthcare => 1_382,
            Industry::Hospitality => 493,
            Industry::IndustrialManufacturing => 1_220,
            Industry::Legal => 264,
            Industry::MediaAdvertising => 427,
            Industry::NonProfit => 640,
            Industry::RealEstate => 386,
            Industry::Restaurants => 296,
            Industry::Retail => 2_355,
            Industry::Tech => 983,
            Industry::Telecom => 442,
            Industry::VarSystemIntegrator => 2_876,
            Industry::Other => 2_154,
        }
    }

    /// Relative client-population weight of one network in this vertical.
    ///
    /// Education and government networks are campus-scale; restaurants and
    /// real-estate offices are tiny. The absolute scale is normalized away
    /// by the population generator — only ratios matter.
    pub fn size_weight(self) -> f64 {
        match self {
            Industry::Education => 12.0,
            Industry::Government => 4.0,
            Industry::Healthcare => 3.5,
            Industry::Tech => 2.5,
            Industry::IndustrialManufacturing => 2.0,
            Industry::FinanceInsurance => 1.8,
            Industry::Hospitality => 1.8,
            Industry::Retail => 1.0,
            Industry::Telecom => 1.0,
            Industry::MediaAdvertising => 1.0,
            Industry::Consulting => 0.8,
            Industry::NonProfit => 0.8,
            Industry::VarSystemIntegrator => 0.7,
            Industry::Construction => 0.6,
            Industry::ArchitectureEngineering => 0.6,
            Industry::Legal => 0.6,
            Industry::Other => 1.0,
            Industry::RealEstate => 0.4,
            Industry::Restaurants => 0.4,
        }
    }
}

/// Total networks in Table 2.
pub fn total_networks_full() -> u32 {
    Industry::ALL.iter().map(|i| i.network_count_full()).sum()
}

/// A sampler that draws verticals proportionally to Table 2.
#[derive(Debug, Clone)]
pub struct IndustryMix {
    weights: WeightedIndex,
}

impl Default for IndustryMix {
    fn default() -> Self {
        Self::paper()
    }
}

impl IndustryMix {
    /// The paper's mix.
    pub fn paper() -> Self {
        IndustryMix {
            weights: WeightedIndex::new(
                Industry::ALL
                    .iter()
                    .map(|i| f64::from(i.network_count_full())),
            ),
        }
    }

    /// Samples a vertical.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Industry {
        Industry::ALL[self.weights.sample(rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_stats::SeedTree;

    #[test]
    fn totals_match_table2() {
        assert_eq!(total_networks_full(), 20_667);
    }

    #[test]
    fn sampling_tracks_table2_proportions() {
        let mix = IndustryMix::paper();
        let mut rng = SeedTree::new(61).rng();
        let n = 200_000;
        let mut education = 0u32;
        let mut restaurants = 0u32;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                Industry::Education => education += 1,
                Industry::Restaurants => restaurants += 1,
                _ => {}
            }
        }
        let edu_frac = f64::from(education) / n as f64;
        let expected_edu = 4_075.0 / 20_667.0;
        assert!(
            (edu_frac - expected_edu).abs() < 0.005,
            "education {edu_frac}"
        );
        let rest_frac = f64::from(restaurants) / n as f64;
        assert!(
            (rest_frac - 296.0 / 20_667.0).abs() < 0.003,
            "restaurants {rest_frac}"
        );
    }

    #[test]
    fn names_and_weights_total() {
        for i in Industry::ALL {
            assert!(!i.name().is_empty());
            assert!(i.size_weight() > 0.0);
        }
        assert_eq!(Industry::ALL.len(), 19);
        // Education must be the heaviest vertical per network.
        assert!(Industry::Education.size_weight() > Industry::Retail.size_weight());
    }
}
