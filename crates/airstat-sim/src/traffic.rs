//! Traffic generation: from a client's byte budget to classified flows.
//!
//! The honest part of the pipeline: the generator does **not** stamp
//! applications onto usage records. It picks a ground-truth application,
//! synthesizes the [`FlowMetadata`] that app's traffic would show on the
//! slow path (DNS hostname / SNI / ports / protocol markers), and the
//! engine then classifies those flows with the *real* [`RuleSet`] — so
//! classifier blind spots (e.g. Spotify before its 2015 fingerprint)
//! distort the measured tables exactly the way they distorted the paper's.
//!
//! [`RuleSet`]: airstat_classify::apps::RuleSet

use airstat_classify::apps::{Application, ContentHint, FlowMetadata};
use airstat_stats::dist::LogNormal;
use rand::Rng;

use crate::appmix::{os_affinity, year_adjusted, PROFILES};
use crate::config::MeasurementYear;
use crate::population::ClientTruth;

/// One generated flow: ground truth plus what the wire shows.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedFlow {
    /// The application that actually produced the traffic.
    pub truth: Application,
    /// What the AP's slow path extracts.
    pub metadata: FlowMetadata,
    /// Bytes from client to network.
    pub up_bytes: u64,
    /// Bytes from network to client.
    pub down_bytes: u64,
}

/// A client's week of application traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeeklyTraffic {
    /// All flows, unordered.
    pub flows: Vec<GeneratedFlow>,
}

impl WeeklyTraffic {
    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.up_bytes + f.down_bytes).sum()
    }
}

/// Expected participation-weight sum for an OS and year.
///
/// `E[Σ_i w_i] = Σ_i P(participate_i) · intensity_i ≈ Σ_i share_i · affinity_i`.
/// Dividing by this keeps each OS's *mean* weekly bytes on the Table 3
/// calibration while letting clients of rare heavy applications (the
/// Netflix/Dropcam users) consume several times the average — exactly the
/// per-client skew Table 5's MB/client column shows.
pub fn expected_weight_sum(os: airstat_classify::device::OsFamily, year: MeasurementYear) -> f64 {
    let mut sum = 0.0;
    for profile in PROFILES {
        let (share, reach) = year_adjusted(profile, year);
        let affinity = os_affinity(os, profile.app);
        if affinity <= 0.0 || reach <= 0.0 {
            continue;
        }
        let p = (reach * affinity).min(1.0);
        sum += p * share / reach;
    }
    sum.max(1e-6)
}

/// Generates one client's weekly traffic.
///
/// Algorithm (see `appmix`): every application the client *participates
/// in* (Bernoulli on year-adjusted reach × OS affinity) gets a weight of
/// `byte_share / reach`, jittered log-normally; bytes per app are
/// `budget · w_i / E[Σw]` — normalizing by the *expected* weight sum
/// (not the client's own) preserves aggregate byte shares while giving
/// heavy-app participants proportionally larger realized totals. Per-app
/// up/down follows the profile's download fraction with a small jitter.
pub fn generate_weekly<R: Rng + ?Sized>(
    client: &ClientTruth,
    year: MeasurementYear,
    rng: &mut R,
) -> WeeklyTraffic {
    let jitter = LogNormal::new(0.0, 0.5);
    let mut participations: Vec<(Application, f64, f64)> = Vec::new();
    for profile in PROFILES {
        let (share, reach) = year_adjusted(profile, year);
        let affinity = os_affinity(client.os, profile.app);
        if affinity <= 0.0 {
            continue;
        }
        let p = (reach * affinity).min(1.0);
        if rng.gen::<f64>() < p {
            let intensity = share / reach.max(1e-6) * jitter.sample(rng);
            participations.push((profile.app, intensity, profile.down_frac));
        }
    }
    if participations.is_empty() {
        // Everyone at least touches the web once (captive portal, probe).
        participations.push((Application::MiscWeb, 1.0, 0.8));
    }
    let norm = expected_weight_sum(client.os, year);
    let budget = client.weekly_bytes as f64;
    // Handhelds consume rather than produce: the paper measured mobile
    // platforms downloading ~9x what they upload vs ~3x for Mac OS X.
    // Mobile apps upload thumbnails where desktops sync originals, so the
    // *upload* share of every app shrinks on a mobile client.
    let upload_shrink = if client.os.is_mobile() { 0.55 } else { 1.0 };
    let mut flows = Vec::with_capacity(participations.len());
    for (app, weight, down_frac) in participations {
        let bytes = budget * weight / norm;
        if bytes < 1.0 {
            continue;
        }
        // Jitter the direction split a little per client.
        let down_frac = 1.0 - (1.0 - down_frac) * upload_shrink;
        let down_frac = (down_frac + (rng.gen::<f64>() - 0.5) * 0.05).clamp(0.0, 1.0);
        let down = (bytes * down_frac) as u64;
        let up = (bytes as u64).saturating_sub(down);
        flows.push(GeneratedFlow {
            truth: app,
            metadata: metadata_for(app, rng),
            up_bytes: up,
            down_bytes: down,
        });
    }
    WeeklyTraffic { flows }
}

/// Synthesizes the on-the-wire metadata a flow from `app` presents.
///
/// Named applications expose their real hostnames (which the ruleset will
/// recognize); the misc buckets expose exactly the *absence* of signal
/// that lands them in the misc buckets.
pub fn metadata_for<R: Rng + ?Sized>(app: Application, rng: &mut R) -> FlowMetadata {
    use Application as A;
    match app {
        // Misc buckets: generic or absent metadata.
        A::MiscWeb => FlowMetadata::http(&format!("site{}.example.com", rng.gen_range(0..100_000))),
        A::MiscSecureWeb => {
            FlowMetadata::https(&format!("portal{}.example.org", rng.gen_range(0..100_000)))
        }
        A::MiscVideo => {
            let mut m =
                FlowMetadata::http(&format!("media{}.example.net", rng.gen_range(0..10_000)));
            m.content_hint = Some(ContentHint::Video);
            m
        }
        A::MiscAudio => {
            let mut m =
                FlowMetadata::http(&format!("radio{}.example.net", rng.gen_range(0..10_000)));
            m.content_hint = Some(ContentHint::Audio);
            m
        }
        A::NonWebTcp => FlowMetadata::tcp(rng.gen_range(1024..60_000)),
        A::UdpOther => FlowMetadata::udp(rng.gen_range(1024..60_000)),
        // Port/protocol applications.
        A::WindowsFileSharing => FlowMetadata::tcp(445),
        A::AppleFileSharing => FlowMetadata::tcp(548),
        A::Rtmp => FlowMetadata::tcp(1935),
        A::RemoteDesktop => FlowMetadata::tcp(if rng.gen() { 3389 } else { 5900 }),
        A::XboxLive => FlowMetadata::udp(3074),
        A::BitTorrent => {
            let mut m = FlowMetadata::tcp(rng.gen_range(6881..=6889));
            m.bittorrent_handshake = true;
            m
        }
        A::EncryptedP2p => {
            let mut m = FlowMetadata::tcp(rng.gen_range(20_000..60_000));
            m.opaque_encrypted = true;
            m
        }
        A::EncryptedTcp => {
            let mut m = FlowMetadata::tcp(443);
            m.opaque_encrypted = true;
            m
        }
        A::OtherWebmail => {
            if rng.gen::<f64>() < 0.5 {
                FlowMetadata::tcp(993)
            } else {
                FlowMetadata::https("imap.mail.example.org")
            }
        }
        // Hostname applications.
        _ => {
            let host = canonical_host(app);
            if rng.gen::<f64>() < 0.85 {
                FlowMetadata::https(host)
            } else {
                FlowMetadata::http(host)
            }
        }
    }
}

/// The canonical hostname each named application resolves through.
fn canonical_host(app: Application) -> &'static str {
    use Application as A;
    match app {
        A::Netflix => "movies.netflix.com",
        A::Youtube => "r4---sn-abc.googlevideo.com",
        A::Itunes => "itunes.apple.com",
        A::Cdns => "e8218.akamaihd.net",
        A::Facebook => "www.facebook.com",
        A::GoogleHttps | A::Google => "www.google.com",
        A::AppleCom => "www.apple.com",
        A::GoogleDrive => "drive.google.com",
        A::Dropbox => "client.dropbox.com",
        A::SoftwareUpdates => "swcdn.apple.com",
        A::Instagram => "scontent.cdninstagram.com",
        A::Skype => "conn.skype.com",
        A::Pandora => "audio.pandora.com",
        A::Gmail => "mail.google.com",
        A::MicrosoftCom => "www.microsoft.com",
        A::Tumblr => "www.tumblr.com",
        A::Spotify => "audio-fa.spotify.com",
        A::WindowsLiveMail => "mail.live.com",
        A::Dropcam => "nexusapi.dropcam.com",
        A::Hulu => "play.hulu.com",
        A::Steam => "content1.steamcontent.com",
        A::Twitter => "pbs.twimg.com",
        A::Espn => "a.espncdn.com",
        A::XfinityTv => "xfinitytv.comcast.net",
        A::Skydrive => "onedrive.live.com",
        A::Crashplan => "backup.crashplan.com",
        A::Backblaze => "pod-001.backblaze.com",
        A::Wordpress => "s0.wordpress.com",
        A::Blogger => "example.blogspot.com",
        A::Mediafire => "download.mediafire.com",
        A::Hotfile => "s14.hotfile.com",
        A::Cnn => "www.cnn.com",
        A::NyTimes => "www.nytimes.com",
        A::Vimeo => "player.vimeo.com",
        A::Twitch => "video-edge.ttvnw.net",
        A::Snapchat => "feelinsonice.appspot.com",
        A::Pinterest => "i.pinimg.com",
        A::YahooMail => "mail.yahoo.com",
        A::Webex => "mw1.webex.com",
        A::Facetime => "facetime.apple.com",
        // Misc/port apps never reach here.
        _ => "unknown.example",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationModel;
    use airstat_classify::apps::RuleSet;
    use airstat_classify::device::OsFamily;
    use airstat_stats::SeedTree;

    fn clients(n: usize, year: MeasurementYear, seed: u64) -> Vec<ClientTruth> {
        let model = PopulationModel::new(year);
        let mut rng = SeedTree::new(seed).child("clients").rng();
        (0..n)
            .map(|i| model.sample_client(i as u64, &mut rng))
            .collect()
    }

    #[test]
    fn mean_realized_bytes_track_budgets() {
        // Realized totals vary per client (heavy-app participants use
        // more), but the population mean must stay on the budget mean.
        let cs = clients(30_000, MeasurementYear::Y2015, 1);
        let mut rng = SeedTree::new(1).child("traffic").rng();
        let mut budget_sum = 0u64;
        let mut realized_sum = 0u64;
        for c in &cs {
            budget_sum += c.weekly_bytes;
            realized_sum += generate_weekly(c, MeasurementYear::Y2015, &mut rng).total_bytes();
        }
        let ratio = realized_sum as f64 / budget_sum as f64;
        assert!((ratio - 1.0).abs() < 0.25, "realized/budget = {ratio}");
    }

    #[test]
    fn rare_heavy_app_participants_use_more() {
        // A Netflix participant's realized volume should exceed its raw
        // budget on average — the paper's Netflix users pull ~1.2 GB/week
        // vs a 367 MB/week fleet average.
        let cs = clients(30_000, MeasurementYear::Y2015, 2);
        let mut rng = SeedTree::new(2).child("traffic").rng();
        let mut with_netflix = (0u64, 0u64); // (realized, budget)
        let mut without = (0u64, 0u64);
        for c in &cs {
            let week = generate_weekly(c, MeasurementYear::Y2015, &mut rng);
            let has = week.flows.iter().any(|f| f.truth == Application::Netflix);
            let slot = if has { &mut with_netflix } else { &mut without };
            slot.0 += week.total_bytes();
            slot.1 += c.weekly_bytes;
        }
        let boost = |(r, b): (u64, u64)| r as f64 / b.max(1) as f64;
        assert!(
            boost(with_netflix) > 1.5 * boost(without),
            "netflix participants {} vs others {}",
            boost(with_netflix),
            boost(without)
        );
    }

    #[test]
    fn named_apps_classified_back_correctly() {
        let rs = RuleSet::standard_2015();
        let mut rng = SeedTree::new(2).rng();
        // Every hostname/port app must round-trip through the classifier.
        for profile in PROFILES {
            let app = profile.app;
            for _ in 0..8 {
                let m = metadata_for(app, &mut rng);
                let classified = rs.classify(&m);
                match app {
                    // Google HTTP/HTTPS share a hostname; accept either.
                    Application::Google | Application::GoogleHttps => assert!(
                        matches!(classified, Application::Google | Application::GoogleHttps),
                        "google flow -> {classified:?}"
                    ),
                    // Yahoo/IMAP flows map to the webmail bucket family.
                    Application::YahooMail | Application::OtherWebmail => assert!(
                        matches!(
                            classified,
                            Application::YahooMail
                                | Application::OtherWebmail
                                | Application::MiscSecureWeb
                        ),
                        "webmail flow -> {classified:?}"
                    ),
                    _ => assert_eq!(classified, app, "app {app:?} metadata {m:?}"),
                }
            }
        }
    }

    #[test]
    fn aggregate_shares_follow_profile() {
        let cs = clients(20_000, MeasurementYear::Y2015, 3);
        let mut rng = SeedTree::new(3).child("traffic").rng();
        let mut by_app: std::collections::HashMap<Application, u64> = Default::default();
        let mut total = 0u64;
        for c in &cs {
            for f in generate_weekly(c, MeasurementYear::Y2015, &mut rng).flows {
                let b = f.up_bytes + f.down_bytes;
                *by_app.entry(f.truth).or_default() += b;
                total += b;
            }
        }
        let share = |app| by_app.get(&app).copied().unwrap_or(0) as f64 / total as f64;
        // The heavy hitters must be in roughly the right place.
        assert!(
            share(Application::MiscWeb) > 0.08,
            "misc web {}",
            share(Application::MiscWeb)
        );
        let video = share(Application::Youtube) + share(Application::Netflix);
        assert!(video > 0.05 && video < 0.45, "video {video}");
        // Tiny apps stay tiny.
        assert!(share(Application::Hotfile) < 0.01);
    }

    #[test]
    fn download_ratios_match_direction_profiles() {
        let cs = clients(30_000, MeasurementYear::Y2015, 4);
        let mut rng = SeedTree::new(4).child("traffic").rng();
        let mut up: std::collections::HashMap<Application, u64> = Default::default();
        let mut down: std::collections::HashMap<Application, u64> = Default::default();
        for c in &cs {
            for f in generate_weekly(c, MeasurementYear::Y2015, &mut rng).flows {
                *up.entry(f.truth).or_default() += f.up_bytes;
                *down.entry(f.truth).or_default() += f.down_bytes;
            }
        }
        let down_frac = |app: Application| {
            let u = up.get(&app).copied().unwrap_or(0) as f64;
            let d = down.get(&app).copied().unwrap_or(0) as f64;
            d / (u + d).max(1.0)
        };
        // Netflix ≈ 98% down; Dropcam ≈ 5% down (uploads 19x).
        assert!(down_frac(Application::Netflix) > 0.94);
        if down.contains_key(&Application::Dropcam) || up.contains_key(&Application::Dropcam) {
            assert!(down_frac(Application::Dropcam) < 0.15);
        }
        // File sharing is balanced-ish.
        let fs = down_frac(Application::Dropbox);
        assert!(fs > 0.4 && fs < 0.8, "dropbox {fs}");
    }

    #[test]
    fn platform_rules_respected_in_traffic() {
        let cs = clients(30_000, MeasurementYear::Y2015, 5);
        let mut rng = SeedTree::new(5).child("traffic").rng();
        for c in cs.iter().filter(|c| c.os == OsFamily::AppleIos) {
            for f in generate_weekly(c, MeasurementYear::Y2015, &mut rng).flows {
                assert_ne!(
                    f.truth,
                    Application::WindowsFileSharing,
                    "iOS mounting SMB?"
                );
                assert_ne!(f.truth, Application::Steam);
            }
        }
    }

    #[test]
    fn spotify_misclassified_under_2014_rules() {
        // The pipeline-honesty check: Spotify traffic classified with the
        // 2014 ruleset lands in misc secure web.
        let rs2014 = RuleSet::standard_2014();
        let mut rng = SeedTree::new(6).rng();
        let m = metadata_for(Application::Spotify, &mut rng);
        let got = rs2014.classify(&m);
        assert!(
            matches!(got, Application::MiscSecureWeb | Application::MiscWeb),
            "{got:?}"
        );
    }

    #[test]
    fn empty_budget_yields_minimal_traffic() {
        let model = PopulationModel::new(MeasurementYear::Y2015);
        let mut rng = SeedTree::new(7).rng();
        let mut c = model.sample_client(0, &mut rng);
        c.weekly_bytes = 0;
        let week = generate_weekly(&c, MeasurementYear::Y2015, &mut rng);
        assert_eq!(week.total_bytes(), 0);
    }
}
