//! Deterministic fault-injection campaigns.
//!
//! The paper's pipeline is *designed* to degrade gracefully: devices queue
//! reports while offline, the backend re-polls with backoff, a second
//! data center absorbs outages, and sequence-number dedup makes all the
//! retries safe (§2). This module drives that machinery at fleet scale
//! with a scripted [`FaultSchedule`]: per measurement window it injects
//!
//! * **tunnel flaps** — short primary-tunnel losses a failover absorbs;
//! * **datacenter outages** — a primary-DC outage spanning several poll
//!   rounds, with a burst re-poll storm when the primary recovers;
//! * **AP crash/reboot cycles** — the in-RAM report queue is lost, a
//!   crash report follows the reboot;
//! * **queue-overflow pressure** — a tightened device queue capacity so
//!   backlogs overflow (oldest-first) during faults;
//! * **burst re-poll storms** — speculative, unacknowledged re-polls
//!   whose redeliveries the backend must deduplicate;
//!
//! plus elevated poll loss and lost acknowledgements. Every fault draw
//! descends from the per-agent `SeedTree` node (`child("faults")`), a
//! stream disjoint from the tunnel's (`child("tunnel")`), so campaigns
//! compose with the parallel engine: any thread count replays the same
//! faults, and a [`FaultSchedule::zero`] campaign is byte-identical to a
//! run with no schedule at all — the differential test in
//! `tests/fault_campaigns.rs` pins both properties.

use airstat_stats::SeedTree;
use airstat_telemetry::backend::WindowId;
use airstat_telemetry::crash::RebootReason;
use airstat_telemetry::failover::{DataCenter, DualTunnel};
use airstat_telemetry::poll::{DrainStats, LatencyHistogram, PollPolicy, PollSession};
use airstat_telemetry::report::{CrashRecord, Report, ReportPayload};
use airstat_telemetry::sched::{
    Admission, PollEndpoint, Priority, RoundOutcome, SchedConfig, SchedStats, Scheduler,
};
use airstat_telemetry::transport::{DeviceAgent, PollOutcome, TunnelConfig};
use rand::rngs::SmallRng;
use rand::Rng;

/// Consecutive primary failures before a campaign drain fails over.
pub const FAILOVER_THRESHOLD: u32 = 2;

/// Fault intensities for one measurement window.
///
/// Every probability is per fault *opportunity* (per agent for one-shot
/// events like outages and crashes, per poll round for flaps and lost
/// acks); zero disables the fault entirely, and [`FaultIntensity::zero`]
/// disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultIntensity {
    /// Poll-loss probability *added* to the engine's base
    /// `poll_drop_probability` (capped at 0.95 overall).
    pub extra_drop_probability: f64,
    /// Probability a delivered poll's acknowledgement is lost, forcing a
    /// retransmission the backend must dedup.
    pub ack_loss_probability: f64,
    /// Per-round probability the primary tunnel flaps.
    pub flap_probability: f64,
    /// Poll rounds a flap keeps the primary down.
    pub flap_rounds: u32,
    /// Probability this agent's drain overlaps the primary-DC outage.
    pub dc_outage_probability: f64,
    /// Poll rounds the outage lasts.
    pub dc_outage_rounds: u32,
    /// Unacknowledged re-polls fired when the primary DC recovers (the
    /// catch-up storm) or a spontaneous storm triggers.
    pub repoll_burst: u32,
    /// Per-agent probability of a spontaneous re-poll storm.
    pub storm_probability: f64,
    /// Per-agent probability of one crash/reboot cycle mid-drain.
    pub crash_probability: f64,
    /// Device queue capacity override (overflow pressure); `None` keeps
    /// [`DeviceAgent::DEFAULT_CAPACITY`].
    pub queue_capacity: Option<usize>,
    /// Poll batch-size override; smaller batches stretch drains across
    /// more rounds so faults and backlogs interact. `None` keeps the
    /// engine default.
    pub poll_batch: Option<usize>,
    /// Heterogeneous-fleet cohorts: `(weight, intensity)` pairs an agent
    /// resolves *once*, up front, from its fault stream — weights are
    /// cumulative probabilities over `[0, 1)`, any remainder falling back
    /// to this intensity's own knobs. Empty (the default) draws nothing,
    /// which keeps zero schedules byte-identical to no schedule at all.
    /// One level deep: a cohort's own `cohorts` list is ignored.
    pub cohorts: Vec<(f64, FaultIntensity)>,
}

impl FaultIntensity {
    /// No faults at all.
    pub fn zero() -> Self {
        FaultIntensity {
            extra_drop_probability: 0.0,
            ack_loss_probability: 0.0,
            flap_probability: 0.0,
            flap_rounds: 0,
            dc_outage_probability: 0.0,
            dc_outage_rounds: 0,
            repoll_burst: 0,
            storm_probability: 0.0,
            crash_probability: 0.0,
            queue_capacity: None,
            poll_batch: None,
            cohorts: Vec::new(),
        }
    }

    /// Whether this intensity injects nothing.
    pub fn is_zero(&self) -> bool {
        *self == FaultIntensity::zero()
    }

    /// Resolves the cohort this agent belongs to. With no cohorts the
    /// intensity itself is returned **without consuming any randomness**
    /// — the byte-identity contract for homogeneous schedules. With
    /// cohorts, exactly one `f64` is drawn and matched against the
    /// cumulative weights; leftover probability mass falls back to the
    /// base intensity.
    pub fn resolve_cohort<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> &'a FaultIntensity {
        if self.cohorts.is_empty() {
            return self;
        }
        let draw = rng.gen::<f64>();
        let mut cumulative = 0.0;
        for (weight, intensity) in &self.cohorts {
            cumulative += weight;
            if draw < cumulative {
                return intensity;
            }
        }
        self
    }

    /// The scheduler class this intensity's agents drain at: APs riding
    /// out a DC outage are [`Priority::High`] (oldest backlog, drain
    /// first), any other degradation is [`Priority::Normal`], and a fully
    /// healthy AP is [`Priority::Low`] — the only evictable class.
    pub fn priority_class(&self) -> Priority {
        if self.dc_outage_probability > 0.0 {
            Priority::High
        } else if self.extra_drop_probability > 0.0
            || self.ack_loss_probability > 0.0
            || self.flap_probability > 0.0
            || self.storm_probability > 0.0
            || self.crash_probability > 0.0
        {
            Priority::Normal
        } else {
            Priority::Low
        }
    }
}

/// A named, per-window fault schedule for one campaign.
///
/// Schedules are plain data: a default [`FaultIntensity`] plus optional
/// per-window overrides, and the [`PollPolicy`] the backend uses while
/// the campaign runs. Three canned scenarios cover the degradation axes
/// ([`FaultSchedule::tunnel_loss`], [`FaultSchedule::dc_outage`],
/// [`FaultSchedule::queue_pressure`]); [`FaultSchedule::zero`] is the
/// control arm.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    name: String,
    policy: PollPolicy,
    default: FaultIntensity,
    overrides: Vec<(WindowId, FaultIntensity)>,
}

/// The canned scenario names [`FaultSchedule::by_name`] accepts.
pub const SCENARIO_NAMES: [&str; 5] = [
    "zero",
    "tunnel-loss",
    "dc-outage",
    "queue-pressure",
    "queue-pressure-fleet",
];

impl FaultSchedule {
    /// A schedule from parts.
    pub fn new(
        name: impl Into<String>,
        policy: PollPolicy,
        default: FaultIntensity,
        overrides: Vec<(WindowId, FaultIntensity)>,
    ) -> Self {
        FaultSchedule {
            name: name.into(),
            policy,
            default,
            overrides,
        }
    }

    /// The control schedule: zero intensity everywhere. Running it must
    /// reproduce a no-schedule run byte for byte.
    pub fn zero() -> Self {
        FaultSchedule::new(
            "zero",
            PollPolicy::default(),
            FaultIntensity::zero(),
            Vec::new(),
        )
    }

    /// Scenario 1 — chronic transport loss: elevated poll drops, lost
    /// acks, and short tunnel flaps in every window. Nothing is ever
    /// destroyed, so completeness stays at 100% while duplicates and
    /// latency climb.
    pub fn tunnel_loss() -> Self {
        FaultSchedule::new(
            "tunnel-loss",
            PollPolicy::default(),
            FaultIntensity {
                extra_drop_probability: 0.25,
                ack_loss_probability: 0.10,
                flap_probability: 0.08,
                flap_rounds: 2,
                poll_batch: Some(16),
                ..FaultIntensity::zero()
            },
            Vec::new(),
        )
    }

    /// Scenario 2 — tunnel loss plus one primary-DC outage during the
    /// January 2015 windows, with a catch-up re-poll storm on recovery
    /// and tightened device queues; the 2014 windows see only the
    /// background loss. Expect `duplicates_dropped > 0` and completeness
    /// below 100% (queue overflow while the backlog waits out the
    /// outage).
    pub fn dc_outage() -> Self {
        let background = FaultIntensity {
            extra_drop_probability: 0.15,
            ack_loss_probability: 0.08,
            flap_probability: 0.05,
            flap_rounds: 2,
            poll_batch: Some(8),
            ..FaultIntensity::zero()
        };
        let outage = FaultIntensity {
            dc_outage_probability: 1.0,
            dc_outage_rounds: 4,
            repoll_burst: 2,
            queue_capacity: Some(24),
            ..background.clone()
        };
        FaultSchedule::new(
            "dc-outage",
            PollPolicy::default(),
            background,
            vec![(crate::config::WINDOW_JAN_2015, outage)],
        )
    }

    /// Scenario 3 — resource exhaustion: tiny device queues, frequent
    /// crash/reboot cycles, and spontaneous re-poll storms. Completeness
    /// drops on every axis (overflow, crash loss) and the dedup layer
    /// works hardest.
    pub fn queue_pressure() -> Self {
        FaultSchedule::new(
            "queue-pressure",
            PollPolicy::default(),
            FaultIntensity {
                extra_drop_probability: 0.05,
                ack_loss_probability: 0.05,
                crash_probability: 0.30,
                storm_probability: 0.25,
                repoll_burst: 3,
                queue_capacity: Some(12),
                poll_batch: Some(8),
                ..FaultIntensity::zero()
            },
            Vec::new(),
        )
    }

    /// Scenario 4 — a heterogeneous fleet under the scheduler: ~70% of
    /// agents resolve to a healthy cohort ([`Priority::Low`]), ~20% to a
    /// degraded cohort with loss, lost acks, and crashes
    /// ([`Priority::Normal`]), and ~10% to an outage-recovering cohort
    /// ([`Priority::High`]) whose backlog drains first. This is the
    /// scenario the 100k-AP fairness and eviction campaigns run
    /// (`airstat_sim::fleet::run_fleet_campaign`), and under the engine
    /// it exercises cohort resolution with per-class drain priorities.
    pub fn queue_pressure_fleet() -> Self {
        let degraded = FaultIntensity {
            extra_drop_probability: 0.20,
            ack_loss_probability: 0.10,
            flap_probability: 0.05,
            flap_rounds: 2,
            crash_probability: 0.10,
            storm_probability: 0.10,
            repoll_burst: 2,
            poll_batch: Some(8),
            ..FaultIntensity::zero()
        };
        let recovering = FaultIntensity {
            extra_drop_probability: 0.10,
            dc_outage_probability: 1.0,
            dc_outage_rounds: 4,
            repoll_burst: 2,
            poll_batch: Some(8),
            ..FaultIntensity::zero()
        };
        FaultSchedule::new(
            "queue-pressure-fleet",
            PollPolicy::default(),
            FaultIntensity {
                cohorts: vec![(0.20, degraded), (0.10, recovering)],
                ..FaultIntensity::zero()
            },
            Vec::new(),
        )
    }

    /// Looks a canned scenario up by its CLI name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "zero" => Some(FaultSchedule::zero()),
            "tunnel-loss" => Some(FaultSchedule::tunnel_loss()),
            "dc-outage" => Some(FaultSchedule::dc_outage()),
            "queue-pressure" => Some(FaultSchedule::queue_pressure()),
            "queue-pressure-fleet" => Some(FaultSchedule::queue_pressure_fleet()),
            _ => None,
        }
    }

    /// The schedule's name (scenario label in the degradation report).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backend poll policy campaigns run under.
    pub fn policy(&self) -> PollPolicy {
        self.policy
    }

    /// The intensity for a measurement window (override or default).
    pub fn intensity(&self, window: WindowId) -> &FaultIntensity {
        self.overrides
            .iter()
            .find(|(w, _)| *w == window)
            .map(|(_, i)| i)
            .unwrap_or(&self.default)
    }

    /// Whether every window's intensity is zero.
    pub fn is_zero(&self) -> bool {
        self.default.is_zero() && self.overrides.iter().all(|(_, i)| i.is_zero())
    }
}

/// Campaign-wide degradation accounting, merged across every drained
/// agent in deterministic unit order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationTally {
    /// Reports submitted by device agents (completeness denominator).
    pub submitted: u64,
    /// Unique reports the backend accepted (completeness numerator).
    pub accepted: u64,
    /// Reports destroyed by queue overflow (oldest-first eviction).
    pub dropped_overflow: u64,
    /// Reports destroyed by crash/reboot cycles (in-RAM queue loss).
    pub lost_to_crash: u64,
    /// Reports still queued when a drain's poll budget ran out.
    pub left_queued: u64,
    /// Never-delivered reports destroyed when the scheduler evicted (or
    /// rejected) their AP under queue pressure.
    pub lost_to_eviction: u64,
    /// HIGH-priority APs evicted (always 0: the scheduler never evicts
    /// this class — rendered so the report proves it).
    pub evicted_high: u64,
    /// NORMAL-priority APs evicted (always 0, as above).
    pub evicted_normal: u64,
    /// LOW-priority APs evicted or rejected under queue pressure.
    pub evicted_low: u64,
    /// Crash/reboot cycles injected.
    pub crash_reboots: u64,
    /// Poll rounds across all agents.
    pub polls: u64,
    /// Poll rounds lost to transport faults.
    pub polls_lost: u64,
    /// Poll rounds that found every usable tunnel down.
    pub disconnected_polls: u64,
    /// Primary→secondary failover transitions.
    pub failovers: u64,
    /// Delivered polls served by the secondary data center.
    pub secondary_served: u64,
    /// Reports redelivered on the wire (lost acks, re-poll storms);
    /// upper-bounds the backend's `duplicates_dropped`.
    pub redelivered: u64,
    /// Agents whose poll budget ran out before their queue drained.
    pub budget_exhausted_agents: u64,
    /// Report delivery latency in virtual seconds since each drain began.
    pub latency: LatencyHistogram,
}

impl DegradationTally {
    /// Folds one drain's transport stats in.
    pub fn absorb(&mut self, stats: &DrainStats) {
        self.polls += stats.polls;
        self.polls_lost += stats.lost;
        self.disconnected_polls += stats.disconnected;
        self.redelivered += stats.redelivered;
        self.budget_exhausted_agents += u64::from(stats.budget_exhausted);
        self.latency.merge(&stats.latency);
    }

    /// Folds another tally in (panel → campaign merge).
    pub fn merge(&mut self, other: &DegradationTally) {
        self.submitted += other.submitted;
        self.accepted += other.accepted;
        self.dropped_overflow += other.dropped_overflow;
        self.lost_to_crash += other.lost_to_crash;
        self.left_queued += other.left_queued;
        self.lost_to_eviction += other.lost_to_eviction;
        self.evicted_high += other.evicted_high;
        self.evicted_normal += other.evicted_normal;
        self.evicted_low += other.evicted_low;
        self.crash_reboots += other.crash_reboots;
        self.polls += other.polls;
        self.polls_lost += other.polls_lost;
        self.disconnected_polls += other.disconnected_polls;
        self.failovers += other.failovers;
        self.secondary_served += other.secondary_served;
        self.redelivered += other.redelivered;
        self.budget_exhausted_agents += other.budget_exhausted_agents;
        self.latency.merge(&other.latency);
    }

    /// Data completeness: unique accepted reports over submitted reports
    /// (1.0 for an empty campaign).
    pub fn completeness(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.accepted as f64 / self.submitted as f64
        }
    }

    /// Folds a scheduler's eviction counters in.
    pub fn record_evictions(&mut self, sched: &SchedStats) {
        self.evicted_high += sched.evicted_aps[Priority::High.index()];
        self.evicted_normal += sched.evicted_aps[Priority::Normal.index()];
        self.evicted_low += sched.evicted_aps[Priority::Low.index()];
        self.lost_to_eviction += sched.evicted_reports;
    }
}

/// What one faulted drain produced, beyond the transport stats.
#[derive(Debug)]
pub struct FaultedDrain {
    /// Delivered reports in delivery order (redeliveries included — the
    /// backend's dedup drops them at ingest).
    pub reports: Vec<Report>,
    /// Transport-level drain statistics.
    pub stats: DrainStats,
    /// Reports the injected crash destroyed.
    pub crash_lost: u64,
    /// Crash/reboot cycles injected (0 or 1 per drain).
    pub crash_reboots: u64,
    /// Primary→secondary failover transitions observed.
    pub failovers: u64,
    /// Delivered polls served by the secondary data center.
    pub secondary_served: u64,
}

/// Drains `agent` through a [`DualTunnel`] while injecting the faults
/// `intensity` prescribes.
///
/// Fault randomness comes from `node.child("faults")`, transport
/// randomness from `node.child("tunnel")` — the same stream the
/// no-schedule engine path uses, so a zero intensity consumes the tunnel
/// stream identically and reproduces its output byte for byte.
pub fn drain_faulted(
    intensity: &FaultIntensity,
    policy: PollPolicy,
    base: TunnelConfig,
    node: &SeedTree,
    firmware: &str,
    agent: &mut DeviceAgent,
) -> FaultedDrain {
    let mut fault_rng = node.child("faults").rng();
    let mut tunnel_rng = node.child("tunnel").rng();
    // Cohort membership is the very first draw (none for homogeneous
    // schedules), exactly as `FaultedEndpoint::new` does it, so flat and
    // scheduled drains see identical fault streams.
    let intensity = intensity.resolve_cohort(&mut fault_rng);
    let config = TunnelConfig {
        drop_probability: (base.drop_probability + intensity.extra_drop_probability).min(0.95),
        poll_batch: intensity.poll_batch.unwrap_or(base.poll_batch),
    };
    let mut dual = DualTunnel::new(config, FAILOVER_THRESHOLD);

    // One-shot events are planned up front from the fault stream.
    let outage = if intensity.dc_outage_probability > 0.0
        && fault_rng.gen::<f64>() < intensity.dc_outage_probability
    {
        let start = fault_rng.gen_range(0u64..2);
        Some((start, start + u64::from(intensity.dc_outage_rounds.max(1))))
    } else {
        None
    };
    let crash_round = if intensity.crash_probability > 0.0
        && fault_rng.gen::<f64>() < intensity.crash_probability
    {
        Some(fault_rng.gen_range(0u64..4))
    } else {
        None
    };
    let storm_round = if intensity.storm_probability > 0.0
        && fault_rng.gen::<f64>() < intensity.storm_probability
    {
        Some(fault_rng.gen_range(0u64..3))
    } else {
        None
    };

    let mut session = PollSession::new(policy);
    let mut stats = DrainStats::default();
    let mut reports = Vec::new();
    let mut highest_delivered: Option<u64> = None;
    let mut crash_lost = 0u64;
    let mut crash_reboots = 0u64;
    let mut failovers = 0u64;
    let mut last_dc = DataCenter::Primary;
    let mut in_outage = false;
    let mut flap_left = 0u32;
    let mut pending_burst = 0u32;
    let mut round = 0u64;

    while agent.queued() > 0 || pending_burst > 0 {
        if !session.begin_round() {
            stats.budget_exhausted = agent.queued() > 0;
            break;
        }
        // --- scripted fault events for this round ---
        if let Some((start, end)) = outage {
            if round == start {
                dual.outage(DataCenter::Primary);
                in_outage = true;
                flap_left = 0;
            }
            if round == end && in_outage {
                dual.restore(DataCenter::Primary);
                in_outage = false;
                // The catch-up storm: the recovered primary re-polls the
                // span it missed without waiting for ack state.
                pending_burst += intensity.repoll_burst;
            }
        }
        if crash_round == Some(round) && agent.queued() > 0 {
            crash_lost += agent.crash_reboot() as u64;
            crash_reboots += 1;
            agent.submit(
                session.now_s(),
                ReportPayload::Crash(vec![CrashRecord {
                    firmware: firmware.to_string(),
                    reason: RebootReason::Watchdog.code(),
                    program_counter: 0x40_0000 + fault_rng.gen_range(0u64..0x8_0000),
                    uptime_s: session.now_s(),
                    free_memory_bytes: 4096,
                }]),
            );
        }
        if storm_round == Some(round) {
            pending_burst += intensity.repoll_burst.max(1);
        }
        if flap_left > 0 {
            flap_left -= 1;
            if flap_left == 0 && !in_outage {
                dual.restore(DataCenter::Primary);
            }
        } else if !in_outage
            && intensity.flap_probability > 0.0
            && fault_rng.gen::<f64>() < intensity.flap_probability
        {
            dual.outage(DataCenter::Primary);
            flap_left = intensity.flap_rounds.max(1);
        }
        // --- the poll itself ---
        let ack = if pending_burst > 0 {
            pending_burst -= 1;
            false
        } else {
            !(intensity.ack_loss_probability > 0.0
                && fault_rng.gen::<f64>() < intensity.ack_loss_probability)
        };
        let (outcome, dc) = dual.poll_mode(agent, &mut tunnel_rng, ack);
        match outcome {
            PollOutcome::Delivered(batch) => {
                session.on_success();
                if dc != last_dc && dc == DataCenter::Secondary {
                    failovers += 1;
                }
                last_dc = dc;
                for report in &batch {
                    if highest_delivered.is_some_and(|h| report.seq <= h) {
                        stats.redelivered += 1;
                    }
                }
                if let Some(max) = batch.iter().map(|r| r.seq).max() {
                    highest_delivered = Some(highest_delivered.map_or(max, |h| h.max(max)));
                }
                stats.delivered += batch.len() as u64;
                stats.latency.record_n(session.now_s(), batch.len() as u64);
                reports.extend(batch);
            }
            PollOutcome::Lost => {
                session.on_failure();
                stats.lost += 1;
            }
            PollOutcome::Disconnected => {
                session.on_failure();
                stats.disconnected += 1;
            }
        }
        round += 1;
    }

    stats.polls = dual.polls_attempted();
    stats.bytes = dual.bytes_transferred();
    stats.virtual_elapsed_s = session.now_s();
    FaultedDrain {
        reports,
        stats,
        crash_lost,
        crash_reboots,
        failovers,
        secondary_served: dual.served_by(DataCenter::Secondary),
    }
}

/// A fault-injecting AP endpoint the scheduler can drain: the exact
/// round-by-round machinery of [`drain_faulted`], with the loop inverted
/// so [`Scheduler::tick`](airstat_telemetry::sched::Scheduler::tick)
/// drives the rounds instead of a private `while`.
///
/// The endpoint owns its tunnels, its fault stream, and its transport
/// stream, so *when* the scheduler polls it cannot change *what* any
/// round does — the interleaving-invariance the zero-pressure
/// byte-identity test relies on. Cohort membership (and with it the
/// drain [`Priority`]) is resolved at construction, from the same first
/// fault-stream draw the flat path uses.
#[derive(Debug)]
pub struct FaultedEndpoint {
    intensity: FaultIntensity,
    agent: DeviceAgent,
    dual: DualTunnel,
    fault_rng: SmallRng,
    tunnel_rng: SmallRng,
    firmware: String,
    priority: Priority,
    outage: Option<(u64, u64)>,
    crash_round: Option<u64>,
    storm_round: Option<u64>,
    highest_delivered: Option<u64>,
    crash_lost: u64,
    crash_reboots: u64,
    failovers: u64,
    last_dc: DataCenter,
    in_outage: bool,
    flap_left: u32,
    pending_burst: u32,
    round: u64,
}

impl FaultedEndpoint {
    /// Builds the endpoint, consuming the fault stream exactly as
    /// [`drain_faulted`] does up front: cohort draw first, then the
    /// one-shot outage/crash/storm plans.
    pub fn new(
        intensity: &FaultIntensity,
        base: TunnelConfig,
        node: &SeedTree,
        firmware: &str,
        agent: DeviceAgent,
    ) -> Self {
        let mut fault_rng = node.child("faults").rng();
        let tunnel_rng = node.child("tunnel").rng();
        let intensity = intensity.resolve_cohort(&mut fault_rng).clone();
        let config = TunnelConfig {
            drop_probability: (base.drop_probability + intensity.extra_drop_probability).min(0.95),
            poll_batch: intensity.poll_batch.unwrap_or(base.poll_batch),
        };
        let dual = DualTunnel::new(config, FAILOVER_THRESHOLD);
        let outage = if intensity.dc_outage_probability > 0.0
            && fault_rng.gen::<f64>() < intensity.dc_outage_probability
        {
            let start = fault_rng.gen_range(0u64..2);
            Some((start, start + u64::from(intensity.dc_outage_rounds.max(1))))
        } else {
            None
        };
        let crash_round = if intensity.crash_probability > 0.0
            && fault_rng.gen::<f64>() < intensity.crash_probability
        {
            Some(fault_rng.gen_range(0u64..4))
        } else {
            None
        };
        let storm_round = if intensity.storm_probability > 0.0
            && fault_rng.gen::<f64>() < intensity.storm_probability
        {
            Some(fault_rng.gen_range(0u64..3))
        } else {
            None
        };
        let priority = intensity.priority_class();
        FaultedEndpoint {
            intensity,
            agent,
            dual,
            fault_rng,
            tunnel_rng,
            firmware: firmware.to_string(),
            priority,
            outage,
            crash_round,
            storm_round,
            highest_delivered: None,
            crash_lost: 0,
            crash_reboots: 0,
            failovers: 0,
            last_dc: DataCenter::Primary,
            in_outage: false,
            flap_left: 0,
            pending_burst: 0,
            round: 0,
        }
    }

    /// The scheduler class the resolved cohort drains at.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Never-delivered reports destroyed by the injected crash. Unlike
    /// [`FaultedDrain::crash_lost`] (a raw cleared-queue count), this
    /// excludes delivered-but-unacked reports the backend already
    /// accepted, so the eviction-era accounting identity balances.
    pub fn crash_lost(&self) -> u64 {
        self.crash_lost
    }

    /// Crash/reboot cycles injected (0 or 1).
    pub fn crash_reboots(&self) -> u64 {
        self.crash_reboots
    }

    /// Primary→secondary failover transitions observed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Delivered polls served by the secondary data center.
    pub fn secondary_served(&self) -> u64 {
        self.dual.served_by(DataCenter::Secondary)
    }

    /// Read access to the wrapped agent.
    pub fn agent(&self) -> &DeviceAgent {
        &self.agent
    }

    /// Hands the agent back once the drain is finished.
    pub fn into_agent(self) -> DeviceAgent {
        self.agent
    }

    fn undelivered_count(&self) -> u64 {
        let queued = self.agent.queued();
        if queued == 0 {
            return 0;
        }
        match self.highest_delivered {
            None => queued as u64,
            Some(h) => self.agent.peek(queued).iter().filter(|r| r.seq > h).count() as u64,
        }
    }
}

impl PollEndpoint for FaultedEndpoint {
    fn poll_round(&mut self, now_s: u64) -> RoundOutcome {
        let round = self.round;
        // --- scripted fault events for this round (drain_faulted order) ---
        if let Some((start, end)) = self.outage {
            if round == start {
                self.dual.outage(DataCenter::Primary);
                self.in_outage = true;
                self.flap_left = 0;
            }
            if round == end && self.in_outage {
                self.dual.restore(DataCenter::Primary);
                self.in_outage = false;
                self.pending_burst += self.intensity.repoll_burst;
            }
        }
        if self.crash_round == Some(round) && self.agent.queued() > 0 {
            self.crash_lost += self.undelivered_count();
            self.crash_reboots += 1;
            self.agent.crash_reboot();
            // A reboot wipes delivery state along with the queue: the
            // next sequence numbers restart above what was acked, and the
            // crash report itself is a fresh, undelivered submission.
            self.agent.submit(
                now_s,
                ReportPayload::Crash(vec![CrashRecord {
                    firmware: self.firmware.clone(),
                    reason: RebootReason::Watchdog.code(),
                    program_counter: 0x40_0000 + self.fault_rng.gen_range(0u64..0x8_0000),
                    uptime_s: now_s,
                    free_memory_bytes: 4096,
                }]),
            );
        }
        if self.storm_round == Some(round) {
            self.pending_burst += self.intensity.repoll_burst.max(1);
        }
        if self.flap_left > 0 {
            self.flap_left -= 1;
            if self.flap_left == 0 && !self.in_outage {
                self.dual.restore(DataCenter::Primary);
            }
        } else if !self.in_outage
            && self.intensity.flap_probability > 0.0
            && self.fault_rng.gen::<f64>() < self.intensity.flap_probability
        {
            self.dual.outage(DataCenter::Primary);
            self.flap_left = self.intensity.flap_rounds.max(1);
        }
        // --- the poll itself ---
        let ack = if self.pending_burst > 0 {
            self.pending_burst -= 1;
            false
        } else {
            !(self.intensity.ack_loss_probability > 0.0
                && self.fault_rng.gen::<f64>() < self.intensity.ack_loss_probability)
        };
        let (outcome, dc) = self
            .dual
            .poll_mode(&mut self.agent, &mut self.tunnel_rng, ack);
        self.round += 1;
        match outcome {
            PollOutcome::Delivered(batch) => {
                if dc != self.last_dc && dc == DataCenter::Secondary {
                    self.failovers += 1;
                }
                self.last_dc = dc;
                let mut redelivered = 0u64;
                for report in &batch {
                    if self.highest_delivered.is_some_and(|h| report.seq <= h) {
                        redelivered += 1;
                    }
                }
                if let Some(max) = batch.iter().map(|r| r.seq).max() {
                    self.highest_delivered =
                        Some(self.highest_delivered.map_or(max, |h| h.max(max)));
                }
                RoundOutcome::Delivered {
                    reports: batch,
                    redelivered,
                }
            }
            PollOutcome::Lost => RoundOutcome::Lost,
            PollOutcome::Disconnected => RoundOutcome::Disconnected,
        }
    }

    fn pending(&self) -> bool {
        self.agent.queued() > 0 || self.pending_burst > 0
    }

    fn continue_after_failure(&self) -> bool {
        // The flat faulted loop's `while queued > 0 || burst > 0` guard
        // also exits after a failed round once nothing is left.
        self.pending()
    }

    fn queued(&self) -> u64 {
        self.agent.queued() as u64
    }

    fn undelivered(&self) -> u64 {
        self.undelivered_count()
    }

    fn polls_attempted(&self) -> u64 {
        self.dual.polls_attempted()
    }

    fn bytes_transferred(&self) -> u64 {
        self.dual.bytes_transferred()
    }
}

/// Drains one faulted agent through a solo zero-pressure scheduler —
/// what the engine's default [`crate::config::PollPath::Scheduler`]
/// runs per agent. Returns the same
/// [`FaultedDrain`] shape as the flat path plus the scheduler's own
/// counters.
pub fn drain_faulted_scheduled(
    intensity: &FaultIntensity,
    policy: PollPolicy,
    base: TunnelConfig,
    node: &SeedTree,
    firmware: &str,
    agent: &mut DeviceAgent,
) -> (FaultedDrain, SchedStats) {
    if agent.queued() == 0 {
        // The flat loop's guard never runs a round for an empty agent;
        // mirror that before involving the scheduler.
        return (
            FaultedDrain {
                reports: Vec::new(),
                stats: DrainStats::default(),
                crash_lost: 0,
                crash_reboots: 0,
                failovers: 0,
                secondary_served: 0,
            },
            SchedStats::default(),
        );
    }
    let key = agent.device_id();
    let owned_agent = std::mem::replace(agent, DeviceAgent::new(0));
    let endpoint = FaultedEndpoint::new(intensity, base, node, firmware, owned_agent);
    let mut sched = Scheduler::new(SchedConfig::solo(policy));
    match sched.admit(key, endpoint.priority(), endpoint) {
        Admission::Admitted => {}
        _ => unreachable!("a fresh scheduler admits its first endpoint"),
    }
    sched.run_to_completion();
    let drain = sched
        .take_finished()
        .pop()
        .expect("invariant: a solo admission always finishes");
    let endpoint = drain.endpoint;
    let faulted = FaultedDrain {
        reports: drain.reports,
        stats: drain.stats,
        crash_lost: endpoint.crash_lost(),
        crash_reboots: endpoint.crash_reboots(),
        failovers: endpoint.failovers(),
        secondary_served: endpoint.secondary_served(),
    };
    *agent = endpoint.into_agent();
    (faulted, sched.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{WINDOW_JAN_2014, WINDOW_JAN_2015};

    fn loaded_agent(n: u64, capacity: usize) -> DeviceAgent {
        let mut agent = DeviceAgent::with_capacity(1, capacity);
        for t in 0..n {
            agent.submit(t, ReportPayload::Usage(vec![]));
        }
        agent
    }

    #[test]
    fn scenarios_resolve_by_name() {
        for name in SCENARIO_NAMES {
            let schedule = FaultSchedule::by_name(name).expect(name);
            assert_eq!(schedule.name(), name);
        }
        assert!(FaultSchedule::by_name("nope").is_none());
        assert!(FaultSchedule::zero().is_zero());
        assert!(!FaultSchedule::dc_outage().is_zero());
    }

    #[test]
    fn per_window_overrides_apply() {
        let schedule = FaultSchedule::dc_outage();
        assert_eq!(
            schedule.intensity(WINDOW_JAN_2015).dc_outage_probability,
            1.0
        );
        assert_eq!(
            schedule.intensity(WINDOW_JAN_2014).dc_outage_probability,
            0.0,
            "2014 windows only see the background loss"
        );
    }

    #[test]
    fn zero_intensity_drain_is_clean() {
        let mut agent = loaded_agent(40, DeviceAgent::DEFAULT_CAPACITY);
        let node = SeedTree::new(11).child("unit");
        let base = TunnelConfig {
            drop_probability: 0.0,
            poll_batch: 16,
        };
        let drain = drain_faulted(
            &FaultIntensity::zero(),
            PollPolicy::default(),
            base,
            &node,
            "fw-test",
            &mut agent,
        );
        assert_eq!(drain.reports.len(), 40);
        assert_eq!(drain.stats.redelivered, 0);
        assert_eq!(drain.failovers, 0);
        assert_eq!(drain.crash_reboots, 0);
        assert_eq!(agent.queued(), 0);
    }

    #[test]
    fn outage_fails_over_and_storm_redelivers() {
        let intensity = FaultIntensity {
            dc_outage_probability: 1.0,
            dc_outage_rounds: 3,
            repoll_burst: 2,
            ..FaultIntensity::zero()
        };
        let mut agent = loaded_agent(40, DeviceAgent::DEFAULT_CAPACITY);
        let node = SeedTree::new(12).child("unit");
        let base = TunnelConfig {
            drop_probability: 0.0,
            poll_batch: 8,
        };
        let drain = drain_faulted(
            &intensity,
            PollPolicy::default(),
            base,
            &node,
            "fw-test",
            &mut agent,
        );
        assert!(drain.failovers > 0, "outage must force a failover");
        assert!(drain.secondary_served > 0);
        assert!(
            drain.stats.redelivered > 0,
            "the recovery storm redelivers unacked spans"
        );
        assert_eq!(agent.queued(), 0);
        // Every submitted report was delivered at least once.
        let mut seqs: Vec<u64> = drain.reports.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 40);
    }

    #[test]
    fn crash_loses_queue_and_files_report() {
        let intensity = FaultIntensity {
            crash_probability: 1.0,
            ..FaultIntensity::zero()
        };
        let mut agent = loaded_agent(64, DeviceAgent::DEFAULT_CAPACITY);
        let node = SeedTree::new(13).child("unit");
        let base = TunnelConfig {
            drop_probability: 0.0,
            poll_batch: 8,
        };
        let drain = drain_faulted(
            &intensity,
            PollPolicy::default(),
            base,
            &node,
            "fw-test",
            &mut agent,
        );
        assert_eq!(drain.crash_reboots, 1);
        assert!(drain.crash_lost > 0);
        assert!(
            drain
                .reports
                .iter()
                .any(|r| matches!(r.payload, ReportPayload::Crash(_))),
            "the crash report reaches the backend after the reboot"
        );
    }

    #[test]
    fn tally_merge_and_completeness() {
        let mut a = DegradationTally {
            submitted: 100,
            accepted: 90,
            dropped_overflow: 10,
            ..DegradationTally::default()
        };
        let b = DegradationTally {
            submitted: 100,
            accepted: 100,
            ..DegradationTally::default()
        };
        a.merge(&b);
        assert_eq!(a.submitted, 200);
        assert_eq!(a.accepted, 190);
        assert!((a.completeness() - 0.95).abs() < 1e-12);
        assert_eq!(DegradationTally::default().completeness(), 1.0);
    }
}
