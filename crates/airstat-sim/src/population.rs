//! Client populations: who connects, on what hardware, using how much.
//!
//! Encodes the year-specific marginals behind Tables 3 and 4:
//!
//! * the OS mix (client-count shares), back-projected for 2014 through the
//!   growth column of Table 3;
//! * per-OS weekly volume profiles (log-normal, fit so the *mean* matches
//!   the MB/client column — usage is heavy-tailed, §6.2: "a subset of
//!   clients driving most of the usage");
//! * the capability evolution of Table 4 (11ac 2.5% → 18%, 5 GHz 48.9% →
//!   64.9%, 40 MHz 23.4% → 63.8%, multi-stream growth);
//! * classifier *evidence* per client: rather than stamping the OS on the
//!   record, the generator emits a MAC with a plausible OUI, DHCP
//!   fingerprints and User-Agent strings, and the pipeline then runs the
//!   real [`DeviceClassifier`](airstat_classify::DeviceClassifier) — so Unknown rows arise from genuine
//!   ambiguity (VM fingerprints, embedded devices) exactly as in the
//!   paper.

use airstat_classify::device::{DeviceEvidence, DhcpFingerprint, OsFamily};
use airstat_classify::mac::{oui_of, MacAddress, Oui, Vendor};

use airstat_rf::phy::{Capabilities, Generation};
use airstat_stats::dist::{LogNormal, WeightedIndex};
use rand::Rng;

use crate::config::MeasurementYear;

/// Ground truth about one generated client (what the simulator knows;
/// the pipeline only ever sees the evidence).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientTruth {
    /// The actual platform.
    pub os: OsFamily,
    /// MAC address presented on the air.
    pub mac: MacAddress,
    /// Advertised capabilities.
    pub caps: Capabilities,
    /// Weekly traffic budget in bytes.
    pub weekly_bytes: u64,
    /// Classifier evidence the AP accumulates.
    pub evidence: DeviceEvidence,
    /// Whether this client is an always-on embedded device (cameras,
    /// consoles idling) as opposed to a human-carried one — affects the
    /// diurnal activity profile.
    pub always_on: bool,
}

/// Per-OS population marginals for one year.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OsMarginal {
    os: OsFamily,
    /// Client count at full scale.
    clients: f64,
    /// Mean weekly bytes per client (MB).
    mb_per_client: f64,
}

/// Table 3's 2015 column (clients, MB/client).
const MARGINALS_2015: &[OsMarginal] = &[
    OsMarginal {
        os: OsFamily::Windows,
        clients: 822_761.0,
        mb_per_client: 751.0,
    },
    OsMarginal {
        os: OsFamily::AppleIos,
        clients: 2_550_379.0,
        mb_per_client: 224.0,
    },
    OsMarginal {
        os: OsFamily::MacOsX,
        clients: 313_976.0,
        mb_per_client: 1_487.0,
    },
    OsMarginal {
        os: OsFamily::Android,
        clients: 1_535_859.0,
        mb_per_client: 121.0,
    },
    OsMarginal {
        os: OsFamily::Unknown,
        clients: 228_182.0,
        mb_per_client: 357.0,
    },
    OsMarginal {
        os: OsFamily::ChromeOs,
        clients: 178_095.0,
        mb_per_client: 366.0,
    },
    OsMarginal {
        os: OsFamily::Other,
        clients: 13_969.0,
        mb_per_client: 1_951.0,
    },
    OsMarginal {
        os: OsFamily::PlaystationOs,
        clients: 4_267.0,
        mb_per_client: 5_319.0,
    },
    OsMarginal {
        os: OsFamily::Linux,
        clients: 4_402.0,
        mb_per_client: 1_393.0,
    },
    OsMarginal {
        os: OsFamily::BlackBerry,
        clients: 13_681.0,
        mb_per_client: 11.0,
    },
    OsMarginal {
        os: OsFamily::MobileWindows,
        clients: 4_943.0,
        mb_per_client: 26.0,
    },
];

/// Table 3's client-count growth (% increase), used to back-project 2014.
fn client_growth(os: OsFamily) -> f64 {
    match os {
        OsFamily::Windows => 0.28,
        OsFamily::AppleIos => 0.34,
        OsFamily::MacOsX => 0.24,
        OsFamily::Android => 0.61,
        OsFamily::Unknown => -0.089,
        OsFamily::ChromeOs => 2.22,
        OsFamily::Other => -0.33,
        OsFamily::PlaystationOs => -0.13,
        OsFamily::Linux => 1.65,
        OsFamily::BlackBerry => -0.53,
        OsFamily::MobileWindows => -0.42,
    }
}

/// Table 3's MB/client growth, used to back-project 2014 volumes.
fn volume_growth(os: OsFamily) -> f64 {
    match os {
        OsFamily::Windows => 0.12,
        OsFamily::AppleIos => 0.44,
        OsFamily::MacOsX => 0.17,
        OsFamily::Android => 0.69,
        OsFamily::Unknown => -0.0036,
        OsFamily::ChromeOs => 0.16,
        OsFamily::Other => 1.68,
        OsFamily::PlaystationOs => 0.77,
        OsFamily::Linux => 1.69,
        OsFamily::BlackBerry => -0.19,
        OsFamily::MobileWindows => 0.13,
    }
}

/// Heavy-tail width (log-scale sigma) of per-client weekly volume.
const VOLUME_SIGMA: f64 = 1.6;

/// A year-specific client population model.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    year: MeasurementYear,
    os_choice: WeightedIndex,
    os_order: Vec<OsFamily>,
    volume: Vec<LogNormal>,
}

impl PopulationModel {
    /// Builds the model for a measurement year.
    pub fn new(year: MeasurementYear) -> Self {
        let mut weights = Vec::with_capacity(MARGINALS_2015.len());
        let mut os_order = Vec::with_capacity(MARGINALS_2015.len());
        let mut volume = Vec::with_capacity(MARGINALS_2015.len());
        for m in MARGINALS_2015 {
            let clients = match year {
                MeasurementYear::Y2015 => m.clients,
                MeasurementYear::Y2014 => m.clients / (1.0 + client_growth(m.os)),
            };
            let mb = match year {
                MeasurementYear::Y2015 => m.mb_per_client,
                MeasurementYear::Y2014 => m.mb_per_client / (1.0 + volume_growth(m.os)),
            };
            weights.push(clients);
            os_order.push(m.os);
            // Log-normal with the target *mean*: median = mean / e^(σ²/2).
            let median_bytes = mb * 1e6 / (VOLUME_SIGMA * VOLUME_SIGMA / 2.0).exp();
            volume.push(LogNormal::new(median_bytes.ln(), VOLUME_SIGMA));
        }
        PopulationModel {
            year,
            os_choice: WeightedIndex::new(weights),
            os_order,
            volume,
        }
    }

    /// The year this model describes.
    pub fn year(&self) -> MeasurementYear {
        self.year
    }

    /// Generates one client.
    pub fn sample_client<R: Rng + ?Sized>(&self, id: u64, rng: &mut R) -> ClientTruth {
        let idx = self.os_choice.sample(rng);
        let os = self.os_order[idx];
        let weekly_bytes = self.volume[idx].sample(rng).min(5e12) as u64;
        let caps = sample_capabilities(os, self.year, rng);
        let mac = sample_mac(os, id, rng);
        let evidence = sample_evidence(os, mac, rng);
        let always_on = matches!(os, OsFamily::PlaystationOs | OsFamily::Other)
            || (os == OsFamily::Unknown && rng.gen::<f64>() < 0.5)
            || (os == OsFamily::Linux && rng.gen::<f64>() < 0.7);
        ClientTruth {
            os,
            mac,
            caps,
            weekly_bytes,
            evidence,
            always_on,
        }
    }
}

/// Samples Table 4-consistent capabilities for a client.
///
/// Aggregate targets per year (Table 4) with platform adjustments: phones
/// are 1–2 streams; desktops carry the 3/4-stream share; consoles and
/// embedded devices skew legacy.
pub fn sample_capabilities<R: Rng + ?Sized>(
    os: OsFamily,
    year: MeasurementYear,
    rng: &mut R,
) -> Capabilities {
    let (p_ac, p_n, p_dual, p_forty, p2, p3, p4): (f64, f64, f64, f64, f64, f64, f64) = match year {
        MeasurementYear::Y2014 => (0.025, 0.957, 0.489, 0.234, 0.077, 0.024, 0.007),
        MeasurementYear::Y2015 => (0.18, 0.977, 0.649, 0.638, 0.193, 0.038, 0.018),
    };
    // Platform multipliers on the ac / dual-band odds. Dual-band applies
    // to the *residual* probability after 802.11ac clients (which are
    // dual-band by definition), so the aggregate still hits Table 4.
    let (ac_mult, dual_mult) = match os {
        OsFamily::AppleIos | OsFamily::MacOsX => (1.5, 1.1),
        OsFamily::Android => (1.0, 0.8),
        OsFamily::Windows | OsFamily::ChromeOs => (0.9, 1.0),
        OsFamily::BlackBerry | OsFamily::MobileWindows => (0.1, 0.5),
        OsFamily::PlaystationOs | OsFamily::Other | OsFamily::Unknown | OsFamily::Linux => {
            (0.3, 0.7)
        }
    };
    let p_dual_resid = ((p_dual - p_ac) / (1.0 - p_ac)).max(0.0);
    let u: f64 = rng.gen();
    let generation = if u < p_ac * ac_mult {
        Generation::Ac
    } else if u < p_n {
        Generation::N
    } else if u < 0.999 {
        Generation::G
    } else {
        Generation::B
    };
    let dual =
        generation == Generation::Ac || rng.gen::<f64>() < (p_dual_resid * dual_mult).min(1.0);
    let forty = rng.gen::<f64>() < p_forty;
    // Spatial streams: phones cap at 2 (antenna budget), so desktops and
    // laptops carry the fleet's 3/4-stream share (Table 4's aggregates
    // are 2:19.3%, 3:3.8%, 4:1.8% in 2015 with ~78% mobile clients).
    let (q2, q3, q4) = if os.is_mobile() {
        (p2 * 0.93, 0.0, 0.0)
    } else {
        (p2 * 1.3, p3 * 4.3, p4 * 4.3)
    };
    let su: f64 = rng.gen();
    let streams = if su < q4 {
        4
    } else if su < q4 + q3 {
        3
    } else if su < q4 + q3 + q2 {
        2
    } else {
        1
    };
    Capabilities::new(generation, dual, forty, streams)
}

/// Picks a plausible OUI for the platform and derives the MAC.
fn sample_mac<R: Rng + ?Sized>(os: OsFamily, id: u64, rng: &mut R) -> MacAddress {
    let vendor = match os {
        OsFamily::AppleIos | OsFamily::MacOsX => Vendor::Apple,
        OsFamily::Android => *pick(
            rng,
            &[Vendor::Samsung, Vendor::Htc, Vendor::Motorola, Vendor::Lg],
        ),
        OsFamily::Windows => *pick(rng, &[Vendor::Intel, Vendor::Dell, Vendor::Hp]),
        OsFamily::ChromeOs => *pick(rng, &[Vendor::Google, Vendor::Intel]),
        OsFamily::Linux => *pick(rng, &[Vendor::RaspberryPi, Vendor::Intel]),
        OsFamily::PlaystationOs => Vendor::Sony,
        OsFamily::BlackBerry => Vendor::Rim,
        OsFamily::MobileWindows => Vendor::Microsoft,
        OsFamily::Other => *pick(rng, &[Vendor::Dropcam, Vendor::Sony, Vendor::Microsoft]),
        OsFamily::Unknown => *pick(rng, &[Vendor::Intel, Vendor::Dell, Vendor::Hp]),
    };
    let oui: Oui = oui_of(vendor);
    MacAddress::from_id(oui, id)
}

fn pick<'a, T, R: Rng + ?Sized>(rng: &mut R, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

/// Builds the classifier evidence one AP would accumulate for a client.
///
/// Most clients present coherent evidence; the deliberate imperfections:
///
/// * ~2% of laptops/desktops run VMs and present **two** DHCP fingerprints
///   (→ Unknown, §3.2);
/// * embedded devices (Unknown ground truth) present unrecognized DHCP
///   patterns and no User-Agent;
/// * a fraction of clients never browse, so the AP has DHCP evidence only.
pub fn sample_evidence<R: Rng + ?Sized>(
    os: OsFamily,
    mac: MacAddress,
    rng: &mut R,
) -> DeviceEvidence {
    let (fingerprint, ua): (DhcpFingerprint, Option<&str>) = match os {
        OsFamily::Windows => (
            DhcpFingerprint::WindowsStyle,
            Some("Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36"),
        ),
        OsFamily::AppleIos => (
            DhcpFingerprint::IosStyle,
            Some("Mozilla/5.0 (iPhone; CPU iPhone OS 8_1_2 like Mac OS X) Version/8.0 Safari"),
        ),
        OsFamily::MacOsX => (
            DhcpFingerprint::MacStyle,
            Some("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_1) Safari/600.2.5"),
        ),
        OsFamily::Android => (
            DhcpFingerprint::AndroidStyle,
            Some("Mozilla/5.0 (Linux; Android 4.4.4; SM-G900V) Chrome/39.0 Mobile"),
        ),
        OsFamily::ChromeOs => (
            DhcpFingerprint::ChromeOsStyle,
            Some("Mozilla/5.0 (X11; CrOS x86_64 6457.107.0) Chrome/40.0"),
        ),
        OsFamily::Linux => (DhcpFingerprint::LinuxStyle, None),
        OsFamily::PlaystationOs => (
            DhcpFingerprint::PlaystationStyle,
            Some("Mozilla/5.0 (PlayStation 4 2.03) AppleWebKit/536.26"),
        ),
        OsFamily::BlackBerry => (
            DhcpFingerprint::BlackBerryStyle,
            Some("Mozilla/5.0 (BlackBerry; U; BlackBerry 9900)"),
        ),
        OsFamily::MobileWindows => (
            DhcpFingerprint::MobileWindowsStyle,
            Some("Mozilla/5.0 (Windows Phone 8.1; ARM; Lumia 630)"),
        ),
        OsFamily::Other | OsFamily::Unknown => (DhcpFingerprint::Unrecognized, None),
    };
    let mut dhcp = vec![fingerprint];
    // VMs / dual-boot on desktop platforms (§3.2's Unknown source).
    let desktop = matches!(os, OsFamily::Windows | OsFamily::MacOsX | OsFamily::Linux);
    if desktop && rng.gen::<f64>() < 0.02 {
        let second = if fingerprint == DhcpFingerprint::WindowsStyle {
            DhcpFingerprint::LinuxStyle
        } else {
            DhcpFingerprint::WindowsStyle
        };
        dhcp.push(second);
    }
    // Some clients never browse through the AP (TLS-only apps, headless).
    let browses = match os {
        OsFamily::Other | OsFamily::Unknown | OsFamily::Linux => false,
        _ => rng.gen::<f64>() < 0.9,
    };
    let user_agents = match (browses, ua) {
        (true, Some(ua)) => vec![ua.to_string()],
        _ => vec![],
    };
    DeviceEvidence {
        mac: Some(mac),
        dhcp,
        user_agents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::device::ClassifierVersion;
    use airstat_classify::DeviceClassifier;
    use airstat_stats::SeedTree;
    use std::collections::HashMap;

    fn sample_population(year: MeasurementYear, n: usize, seed: u64) -> Vec<ClientTruth> {
        let model = PopulationModel::new(year);
        let mut rng = SeedTree::new(seed).child("pop").rng();
        (0..n)
            .map(|i| model.sample_client(i as u64, &mut rng))
            .collect()
    }

    #[test]
    fn os_mix_tracks_table3() {
        let clients = sample_population(MeasurementYear::Y2015, 100_000, 1);
        let mut counts: HashMap<OsFamily, usize> = HashMap::new();
        for c in &clients {
            *counts.entry(c.os).or_default() += 1;
        }
        let frac = |os| counts.get(&os).copied().unwrap_or(0) as f64 / clients.len() as f64;
        // Table 3 shares: iOS 45.7%, Android 27.5%, Windows 14.7%.
        assert!(
            (frac(OsFamily::AppleIos) - 0.457).abs() < 0.01,
            "{}",
            frac(OsFamily::AppleIos)
        );
        assert!((frac(OsFamily::Android) - 0.275).abs() < 0.01);
        assert!((frac(OsFamily::Windows) - 0.147).abs() < 0.01);
        // iOS clients ≈ 3x Windows clients (§3.2's headline).
        assert!(frac(OsFamily::AppleIos) / frac(OsFamily::Windows) > 2.5);
    }

    #[test]
    fn os_mix_2014_shifts_toward_desktop() {
        let c2014 = sample_population(MeasurementYear::Y2014, 100_000, 2);
        let c2015 = sample_population(MeasurementYear::Y2015, 100_000, 2);
        let frac = |cs: &[ClientTruth], os| {
            cs.iter().filter(|c| c.os == os).count() as f64 / cs.len() as f64
        };
        // Android and Chrome OS shares grew; BlackBerry shrank.
        assert!(frac(&c2014, OsFamily::Android) < frac(&c2015, OsFamily::Android));
        assert!(frac(&c2014, OsFamily::ChromeOs) < frac(&c2015, OsFamily::ChromeOs));
        assert!(frac(&c2014, OsFamily::BlackBerry) > frac(&c2015, OsFamily::BlackBerry));
    }

    #[test]
    fn volumes_heavy_tailed_with_correct_means() {
        let clients = sample_population(MeasurementYear::Y2015, 200_000, 3);
        // Windows mean ≈ 751 MB/week.
        let win: Vec<u64> = clients
            .iter()
            .filter(|c| c.os == OsFamily::Windows)
            .map(|c| c.weekly_bytes)
            .collect();
        let mean_mb = win.iter().sum::<u64>() as f64 / win.len() as f64 / 1e6;
        assert!(
            (mean_mb / 751.0 - 1.0).abs() < 0.25,
            "windows mean {mean_mb} MB"
        );
        // Heavy tail: median far below mean.
        let mut sorted = win.clone();
        sorted.sort_unstable();
        let median_mb = sorted[sorted.len() / 2] as f64 / 1e6;
        assert!(
            median_mb < mean_mb / 2.0,
            "median {median_mb} vs mean {mean_mb}"
        );
        // Mobile devices use far less than desktops on average.
        let ios: Vec<u64> = clients
            .iter()
            .filter(|c| c.os == OsFamily::AppleIos)
            .map(|c| c.weekly_bytes)
            .collect();
        let ios_mean = ios.iter().sum::<u64>() as f64 / ios.len() as f64 / 1e6;
        assert!(
            mean_mb > 2.0 * ios_mean,
            "windows {mean_mb} vs ios {ios_mean}"
        );
    }

    #[test]
    fn capabilities_track_table4() {
        let mut rng = SeedTree::new(4).rng();
        let n = 100_000;
        let mut ac = 0;
        let mut dual = 0;
        let mut forty = 0;
        let mut multi2 = 0;
        let model = PopulationModel::new(MeasurementYear::Y2015);
        for i in 0..n {
            let c = model.sample_client(i as u64, &mut rng);
            if c.caps.supports_ac() {
                ac += 1;
            }
            if c.caps.dual_band() {
                dual += 1;
            }
            if c.caps.forty_mhz() {
                forty += 1;
            }
            if c.caps.streams() >= 2 {
                multi2 += 1;
            }
        }
        let f = |x: i32| f64::from(x) / n as f64;
        assert!((f(ac) - 0.18).abs() < 0.05, "ac {}", f(ac));
        assert!((f(dual) - 0.649).abs() < 0.06, "dual {}", f(dual));
        assert!((f(forty) - 0.638).abs() < 0.06, "forty {}", f(forty));
        // Two+ streams ≈ 19.3 + 3.8 + 1.8 ≈ 25%, reduced a bit by the
        // mobile two-stream cap.
        assert!(
            f(multi2) > 0.15 && f(multi2) < 0.30,
            "streams {}",
            f(multi2)
        );
    }

    #[test]
    fn capabilities_grow_year_over_year() {
        let mut rng = SeedTree::new(5).rng();
        let n = 50_000;
        let mut count_ac = |year| {
            let model = PopulationModel::new(year);
            (0..n)
                .filter(|&i| model.sample_client(i as u64, &mut rng).caps.supports_ac())
                .count() as f64
                / n as f64
        };
        let ac14 = count_ac(MeasurementYear::Y2014);
        let ac15 = count_ac(MeasurementYear::Y2015);
        assert!(ac14 < 0.08, "2014 ac {ac14}");
        assert!(ac15 > 2.0 * ac14, "ac grew {ac14} -> {ac15}");
    }

    #[test]
    fn classifier_recovers_most_ground_truth() {
        let clients = sample_population(MeasurementYear::Y2015, 50_000, 6);
        let classifier = DeviceClassifier::new(ClassifierVersion::V2015);
        let mut correct = 0usize;
        let mut unknown = 0usize;
        for c in &clients {
            let got = classifier.classify(&c.evidence);
            if got == c.os {
                correct += 1;
            }
            if got == OsFamily::Unknown {
                unknown += 1;
            }
        }
        let accuracy = correct as f64 / clients.len() as f64;
        let unknown_frac = unknown as f64 / clients.len() as f64;
        assert!(accuracy > 0.85, "accuracy {accuracy}");
        // The Unknown row is ~4% in Table 3; ours should be mid-single-digit.
        assert!(
            unknown_frac > 0.01 && unknown_frac < 0.12,
            "unknown {unknown_frac}"
        );
    }

    #[test]
    fn unknown_row_shrinks_with_ruleset_upgrade() {
        let clients = sample_population(MeasurementYear::Y2015, 50_000, 7);
        let count_unknown = |v| {
            let classifier = DeviceClassifier::new(v);
            clients
                .iter()
                .filter(|c| classifier.classify(&c.evidence) == OsFamily::Unknown)
                .count()
        };
        let old = count_unknown(ClassifierVersion::V2014);
        let new = count_unknown(ClassifierVersion::V2015);
        assert!(new < old, "unknowns must shrink: {old} -> {new}");
    }

    #[test]
    fn macs_are_unique_per_id() {
        let model = PopulationModel::new(MeasurementYear::Y2015);
        let mut rng = SeedTree::new(8).rng();
        let macs: std::collections::HashSet<MacAddress> = (0..10_000)
            .map(|i| model.sample_client(i, &mut rng).mac)
            .collect();
        assert_eq!(macs.len(), 10_000);
    }

    #[test]
    fn consoles_are_always_on() {
        let clients = sample_population(MeasurementYear::Y2015, 50_000, 9);
        for c in clients.iter().filter(|c| c.os == OsFamily::PlaystationOs) {
            assert!(c.always_on);
        }
        // Phones are not.
        assert!(clients
            .iter()
            .filter(|c| c.os == OsFamily::AppleIos)
            .all(|c| !c.always_on));
    }
}
