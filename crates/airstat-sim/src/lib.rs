//! # airstat-sim — the synthetic wireless fleet
//!
//! The paper's dataset is proprietary, so AirStat substitutes a generative
//! fleet: ~20k customer networks across 19 industry verticals, ~10k MR16-
//! and ~10k MR18-class access points, and millions of clients (scaled by a
//! configurable factor so a laptop run finishes in seconds). The models
//! are parameterized by the *marginal* statistics the paper publishes —
//! client OS mix, capability evolution, per-app byte shares, neighbour
//! densities — and the pipeline then re-derives the paper's tables from
//! raw simulated telemetry, exercising the same classification,
//! aggregation and analysis code paths the production system used.
//!
//! Module map:
//!
//! * [`config`] — scenario knobs and the paper-faithful presets;
//! * [`industry`] — Table 2's industry verticals and the network mix;
//! * [`population`] — client populations: OS mix per year (Table 3),
//!   capability evolution (Table 4), per-OS usage volumes, classifier
//!   evidence generation;
//! * [`appmix`] — the application traffic profile behind Tables 5/6
//!   (byte shares, client reach, download fractions, YoY growth);
//! * [`traffic`] — turns a client into a week of classified flows;
//! * [`world`] — topology: networks, APs, channels, neighbour densities,
//!   probe links, interferers;
//! * [`engine`] — the discrete-event loop that runs measurement windows
//!   and pushes reports through the telemetry pipeline into a sharded
//!   store (or any [`airstat_store::ReportSink`]);
//! * [`exec`] — deterministic ordered fan-out of independent work units
//!   across a scoped thread pool (the engine's parallel backbone; now
//!   hosted by `airstat-store` and re-exported here);
//! * [`faults`] — deterministic fault-injection campaigns: scripted
//!   per-window schedules of tunnel flaps, DC outages, crash/reboot
//!   cycles, queue pressure and re-poll storms, with campaign-wide
//!   degradation accounting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod appmix;
pub mod config;
pub mod engine;
pub use airstat_store::exec;
pub mod faults;
pub mod fleet;
pub mod industry;
pub mod population;
pub mod surge;
pub mod traffic;
pub mod world;

pub use config::{FleetConfig, MeasurementYear, PollPath};
pub use engine::{CampaignRun, FleetSimulation, SimulationOutput};
pub use faults::{DegradationTally, FaultIntensity, FaultSchedule, FaultedEndpoint};
pub use fleet::{run_fleet_campaign, FleetCampaignConfig, FleetCampaignRun};
