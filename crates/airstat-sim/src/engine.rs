//! The discrete-event fleet engine.
//!
//! [`FleetSimulation::run`] executes the paper's full measurement campaign
//! against a synthetic fleet and returns a loaded [`ShardedStore`]
//! (campaigns can also fill any other [`ReportSink`] — e.g. the legacy
//! [`airstat_telemetry::backend::Backend`] — via
//! [`FleetSimulation::run_into`]):
//!
//! * **usage windows** — January 2014 and January 2015 client panels.
//!   Each year gets its own population model, device-classifier version
//!   and application ruleset (§3's heuristics improved between the
//!   windows); flows are classified at the edge and shipped through
//!   fault-injected tunnels;
//! * **radio windows** — July 2014 and January 2015 for the MR16 panel:
//!   neighbour censuses (Table 7 / Figure 2), serving-radio airtime
//!   counters (Figure 6), and week-long probe-link delivery series
//!   (Figures 3–5) driven by per-link AR(1) fading plus the epoch's
//!   interference level;
//! * **scan window** — January 2015 for the MR18 panel: 3-minute
//!   channel-scan aggregates sampled at 10:00 and 22:00 local
//!   (Figures 7–10).
//!
//! Determinism: all randomness descends from `FleetConfig::seed` through
//! labelled [`SeedTree`] children, so any table regenerates bit-identically.
//!
//! Parallelism: every panel decomposes into independent work units — a
//! usage-panel client batch, one AP's radio week, one AP's scan week —
//! each seeded from its own `SeedTree` node and drained through its own
//! faulty tunnel. [`crate::exec::run_ordered`] fans the units across
//! `FleetConfig::threads` workers and merges the resulting report batches
//! into the sink in ascending unit order, so any thread count reproduces
//! the serial output byte for byte — and so does any shard count, since
//! the store's query engine merges per-shard partials canonically.

use std::path::Path;
use std::sync::Arc;
// airstat::allow(no-wall-clock): wall time here only feeds PanelStats throughput diagnostics for the operator; it never reaches report bytes
use std::time::Instant;

use airstat_classify::apps::{Application, RuleSet};
use airstat_classify::device::{ClassifierVersion, DeviceClassifier};
use airstat_classify::flows::{Direction, FlowKey, FlowTable};
use airstat_rf::airtime::ChannelLoad;
use airstat_rf::band::{Band, Channel};
use airstat_rf::link::{FadingProcess, LinkModel};
use airstat_rf::propagation::{Environment, PathLoss};
use airstat_stats::dist::{Exponential, LogNormal};
use airstat_stats::SeedTree;
use airstat_store::{
    DurableStore, PersistenceStats, QueryBackend, QueryEngine, ReportSink, SealEvery, SegmentError,
    ShardedStore, StoreConfig,
};
use airstat_telemetry::backend::WindowId;
use airstat_telemetry::crash::{DeviceMemory, RebootReason};
use airstat_telemetry::poll::{drain_flat_reference, drain_scheduled, PollPolicy};
use airstat_telemetry::report::{
    AirtimeRecord, ChannelScanRecord, ClientInfoRecord, CrashRecord, LinkRecord, NeighborRecord,
    Report, ReportPayload, UsageRecord,
};
use airstat_telemetry::sched::SchedStats;
use airstat_telemetry::transport::{DeviceAgent, Tunnel, TunnelConfig};
use rand::Rng;

use crate::config::{
    FleetConfig, MeasurementYear, PollPath, WEEK_S, WINDOW_JAN_2015, WINDOW_JUL_2014,
};
use crate::exec::run_ordered;
use crate::faults::{self, DegradationTally};
use crate::population::PopulationModel;
use crate::traffic::generate_weekly;
use crate::world::{ApModel, ApSite, NeighborEpoch, World};

/// Everything a campaign produces besides the sink it filled.
///
/// [`FleetSimulation::run_into`] returns this directly; the convenience
/// [`FleetSimulation::run`] pairs it with the [`ShardedStore`] it filled
/// as a [`SimulationOutput`].
#[derive(Debug)]
pub struct CampaignRun {
    /// The generated world (for topology-aware analyses and examples).
    pub world: World,
    /// Polls attempted across all tunnels.
    pub polls_attempted: u64,
    /// Polls lost to injected faults (all retransmitted eventually).
    pub polls_lost: u64,
    /// Clients (2015 window) whose usage arrived through more than one AP;
    /// the store's MAC-level aggregation (§2.3) merges them.
    pub roamed_clients: u64,
    /// Per-panel wall-clock and volume statistics, in execution order.
    pub panels: Vec<PanelStats>,
    /// Wire bytes encoded across every tunnel (all panels).
    pub bytes_encoded: u64,
    /// Worker threads the run actually used.
    pub threads: usize,
    /// Campaign-wide degradation accounting (completeness, latency,
    /// fault counters). With `FleetConfig::faults = None` this is the
    /// healthy baseline: completeness 1.0, no failovers, no crash loss.
    pub degradation: DegradationTally,
    /// Scheduler counters merged across every drain (zeroed when the run
    /// used [`PollPath::FlatReference`]).
    pub sched: SchedStats,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimulationOutput {
    /// The loaded sharded store — what the analytics crate queries
    /// (through [`SimulationOutput::query`]).
    pub store: ShardedStore,
    /// The generated world (for topology-aware analyses and examples).
    pub world: World,
    /// Polls attempted across all tunnels.
    pub polls_attempted: u64,
    /// Polls lost to injected faults (all retransmitted eventually).
    pub polls_lost: u64,
    /// Clients (2015 window) whose usage arrived through more than one AP;
    /// the store's MAC-level aggregation (§2.3) merges them.
    pub roamed_clients: u64,
    /// Per-panel wall-clock and volume statistics, in execution order.
    pub panels: Vec<PanelStats>,
    /// Wire bytes encoded across every tunnel (all panels).
    pub bytes_encoded: u64,
    /// Worker threads the run actually used.
    pub threads: usize,
    /// Query execution strategy the run was configured with (the
    /// cost-based planner by default); threaded through to every engine
    /// [`SimulationOutput::query`] opens.
    pub query_backend: QueryBackend,
    /// Campaign-wide degradation accounting (completeness, latency,
    /// fault counters). With `FleetConfig::faults = None` this is the
    /// healthy baseline: completeness 1.0, no failovers, no crash loss.
    pub degradation: DegradationTally,
    /// Scheduler counters merged across every drain (zeroed when the run
    /// used [`PollPath::FlatReference`]).
    pub sched: SchedStats,
}

impl SimulationOutput {
    /// Reports accepted by the store across all panels.
    pub fn reports_ingested(&self) -> u64 {
        self.panels.iter().map(|p| p.reports).sum()
    }

    /// Seals the store and opens a cached parallel query engine over the
    /// frozen snapshot, using the run's worker-thread count and
    /// configured query backend.
    pub fn query(&self) -> QueryEngine {
        QueryEngine::with_backend(self.store.seal(), self.threads, self.query_backend)
    }

    /// A human-readable per-panel throughput table (wall time, report and
    /// wire-byte volume) for CLI/example status output.
    pub fn throughput_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let plural = if self.threads == 1 { "" } else { "s" };
        let _ = writeln!(
            out,
            "engine throughput ({} worker thread{plural}):",
            self.threads
        );
        for p in &self.panels {
            let _ = writeln!(
                out,
                "  {:<12} {:>8.3} s  {:>9} reports  {:>12} wire bytes  ({:.2} MiB/s)",
                p.label,
                p.wall_s,
                p.reports,
                p.bytes,
                p.wire_rate_mib_s(),
            );
        }
        let total_wall: f64 = self.panels.iter().map(|p| p.wall_s).sum();
        let _ = write!(
            out,
            "  {:<12} {:>8.3} s  {:>9} reports  {:>12} wire bytes",
            "total",
            total_wall,
            self.reports_ingested(),
            self.bytes_encoded,
        );
        out
    }
}

/// Wall-clock and volume statistics for one engine panel.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelStats {
    /// Panel label (matches the panel's seed-tree child label).
    pub label: &'static str,
    /// Wall-clock seconds the panel took, drains included.
    pub wall_s: f64,
    /// Reports the backend accepted from this panel.
    pub reports: u64,
    /// Wire bytes encoded while draining this panel's agents.
    pub bytes: u64,
}

impl PanelStats {
    /// Encoded wire throughput in MiB/s (0 when the panel took no
    /// measurable time).
    pub fn wire_rate_mib_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.bytes as f64 / self.wall_s / (1024.0 * 1024.0)
        } else {
            0.0
        }
    }
}

/// The simulation driver.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    config: FleetConfig,
}

/// Firmware version the simulated fleet runs during the windows (§2.2).
///
/// Kept for the January 2015 window; see [`firmware_for`].
pub const FIRMWARE_VERSION: &str = "mr-25.9";

/// §2.2: "a total of 2 major firmware revisions ... January and December
/// 2014". The July 2014 panel therefore runs the January revision; the
/// January 2015 panels run the December one. Crash signatures segregate
/// by revision exactly as the real triage dashboards did.
pub fn firmware_for(window: WindowId) -> &'static str {
    use crate::config::WINDOW_JUL_2014;
    if window == WINDOW_JUL_2014 {
        "mr-24.11"
    } else {
        FIRMWARE_VERSION
    }
}

/// Hours of the Figure 9 sampling points (local time).
pub const DAY_SAMPLE_HOUR: u64 = 10;
/// Night sampling hour for Figure 9.
pub const NIGHT_SAMPLE_HOUR: u64 = 22;

impl FleetSimulation {
    /// Creates a simulation with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetSimulation { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the full campaign into a [`ShardedStore`] shaped by the
    /// configuration's `shards`/`threads` knobs. With
    /// `config.seal_every = Some(n)` the store re-seals its columnar
    /// read layout every `n` ingested batches mid-campaign (identical
    /// reports either way; only seal timing changes).
    pub fn run(&self) -> SimulationOutput {
        let store = ShardedStore::with_config(self.store_config());
        if let Some(every) = self.config.seal_every {
            let mut sink = SealEvery::new(store, every);
            let run = self.run_into(&mut sink);
            self.finish_output(sink.into_inner(), run)
        } else {
            let mut store = store;
            let run = self.run_into(&mut store);
            self.finish_output(store, run)
        }
    }

    /// Runs the full campaign into a fresh [`DurableStore`] rooted at
    /// `dir`: every drained batch is written to the store's tail log
    /// before it reaches the in-memory shards (so a crash mid-campaign
    /// recovers via [`ShardedStore::open`] to the exact batches ingested
    /// so far), and the final state is persisted as a committed segment
    /// set a later `--resume` run reloads instead of re-simulating.
    ///
    /// Returns the usual output plus what the final persist wrote.
    pub fn run_durable(
        &self,
        dir: &Path,
    ) -> Result<(SimulationOutput, PersistenceStats), SegmentError> {
        let durable = DurableStore::create(dir, self.store_config())?;
        let (durable, run) = if let Some(every) = self.config.seal_every {
            let mut sink = SealEvery::new(durable, every);
            let run = self.run_into(&mut sink);
            (sink.into_inner(), run)
        } else {
            let mut durable = durable;
            let run = self.run_into(&mut durable);
            (durable, run)
        };
        let (store, persisted) = durable.into_store()?;
        Ok((self.finish_output(store, run), persisted))
    }

    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            shards: self.config.effective_shards(),
            threads: self.config.effective_threads(),
        }
    }

    fn finish_output(&self, store: ShardedStore, run: CampaignRun) -> SimulationOutput {
        SimulationOutput {
            store,
            world: run.world,
            polls_attempted: run.polls_attempted,
            polls_lost: run.polls_lost,
            roamed_clients: run.roamed_clients,
            panels: run.panels,
            bytes_encoded: run.bytes_encoded,
            threads: run.threads,
            query_backend: self.config.query_backend,
            degradation: run.degradation,
            sched: run.sched,
        }
    }

    /// Runs the full campaign into any [`ReportSink`].
    ///
    /// The sink sees identical report batches in identical order no
    /// matter how it aggregates them — this is what the differential
    /// store-equivalence tests use to fill a legacy
    /// [`airstat_telemetry::backend::Backend`] and a
    /// [`ShardedStore`] from the same campaign.
    pub fn run_into(&self, sink: &mut dyn ReportSink) -> CampaignRun {
        let seed = SeedTree::new(self.config.seed);
        let world = World::generate(&seed, self.config.mr16_aps(), self.config.mr18_aps());
        let mut polls = PollStats::default();
        let mut degradation = DegradationTally::default();
        let mut sched = SchedStats::default();
        let threads = self.config.effective_threads();
        let mut panels = Vec::new();

        // Usage panels.
        let mut roamed_clients = 0;
        for year in [MeasurementYear::Y2014, MeasurementYear::Y2015] {
            let label = match year {
                MeasurementYear::Y2014 => "usage-2014",
                MeasurementYear::Y2015 => "usage-2015",
            };
            // airstat::allow(no-wall-clock): wall time here only feeds PanelStats throughput diagnostics for the operator; it never reaches report bytes
            let started = Instant::now();
            let (roamed, tally) = self.run_usage_window(
                &seed,
                year,
                threads,
                sink,
                &mut polls,
                &mut degradation,
                &mut sched,
            );
            panels.push(tally.into_stats(label, started));
            if year == MeasurementYear::Y2015 {
                roamed_clients = roamed;
            }
        }
        // Radio panels (MR16): July 2014 and January 2015.
        for (label, epoch, window) in [
            ("radio-jul14", NeighborEpoch::Jul2014, WINDOW_JUL_2014),
            ("radio-jan15", NeighborEpoch::Jan2015, WINDOW_JAN_2015),
        ] {
            // airstat::allow(no-wall-clock): wall time here only feeds PanelStats throughput diagnostics for the operator; it never reaches report bytes
            let started = Instant::now();
            let tally = self.run_radio_window(
                &seed.child(label),
                &world,
                epoch,
                window,
                threads,
                sink,
                &mut polls,
                &mut degradation,
                &mut sched,
            );
            panels.push(tally.into_stats(label, started));
        }
        // Scan panel (MR18): January 2015.
        // airstat::allow(no-wall-clock): wall time here only feeds PanelStats throughput diagnostics for the operator; it never reaches report bytes
        let started = Instant::now();
        let tally = self.run_scan_window(
            &seed.child("scan-jan15"),
            &world,
            NeighborEpoch::Jan2015,
            WINDOW_JAN_2015,
            threads,
            sink,
            &mut polls,
            &mut degradation,
            &mut sched,
        );
        panels.push(tally.into_stats("scan-jan15", started));

        let bytes_encoded = panels.iter().map(|p| p.bytes).sum();
        CampaignRun {
            world,
            polls_attempted: polls.attempted,
            polls_lost: polls.lost,
            roamed_clients,
            panels,
            bytes_encoded,
            threads,
            degradation,
            sched,
        }
    }

    // ------------------------------------------------------------------
    // Usage panel
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_usage_window(
        &self,
        seed: &SeedTree,
        year: MeasurementYear,
        threads: usize,
        sink: &mut dyn ReportSink,
        polls: &mut PollStats,
        degradation: &mut DegradationTally,
        sched: &mut SchedStats,
    ) -> (u64, PanelTally) {
        let window = year.window();
        let year_label = match year {
            MeasurementYear::Y2014 => "usage-2014",
            MeasurementYear::Y2015 => "usage-2015",
        };
        let node = seed.child(year_label);
        let clients_node = node.child("clients");
        let population = PopulationModel::new(year);
        let (classifier, ruleset) = match year {
            MeasurementYear::Y2014 => (
                DeviceClassifier::new(ClassifierVersion::V2014),
                RuleSet::standard_2014(),
            ),
            MeasurementYear::Y2015 => (
                DeviceClassifier::new(ClassifierVersion::V2015),
                RuleSet::standard_2015(),
            ),
        };
        // The ruleset is immutable during the window: share one copy
        // across every work unit instead of cloning it per client.
        let ruleset = Arc::new(ruleset);
        let n_clients = self.config.clients(year);
        // Clients are grouped under virtual usage-panel APs; each AP is a
        // device agent polled through a faulty tunnel. One AP's batch is
        // one work unit, seeded from its own `clients/<batch>` node.
        const CLIENTS_PER_AP: u64 = 250;
        let pl = PathLoss::new(Environment::DenseIndoor);
        let distance = LogNormal::from_median_p90(20.0, 55.0);
        let n_batches = n_clients.div_ceil(CLIENTS_PER_AP) as usize;

        let unit = |index: usize| -> UnitOutput {
            let batch = index as u64;
            let mut out = UnitOutput::default();
            let mut rng = clients_node.indexed(batch).rng();
            // Usage-panel device ids live far above the radio panel's.
            let device_id = 1_000_001 + batch;
            let batch_end = ((batch + 1) * CLIENTS_PER_AP).min(n_clients);
            let mut usage_records = Chunked::new(POLL_CHUNK);
            let mut info_records = Chunked::new(POLL_CHUNK);
            // Usage records a roaming client produced at a *different* AP
            // (§2.3: the backend re-aggregates these by MAC).
            let mut roaming_spill = Chunked::new(POLL_CHUNK);
            let mut flow_table = FlowTable::new(Arc::clone(&ruleset), 256, 300);
            for client_id in batch * CLIENTS_PER_AP..batch_end {
                let client = population.sample_client(client_id, &mut rng);
                // RSSI on both bands from one geometry draw.
                let d = distance.sample(&mut rng);
                let shadow = pl.sample_shadowing_db(&mut rng);
                let rssi24 = pl.rssi_dbm(Band::Ghz2_4, 23.0, d, shadow);
                let rssi5 = pl.rssi_dbm(Band::Ghz5, 24.0, d, shadow);
                // Band selection: only some dual-band clients *prefer*
                // 5 GHz (driver roaming policies of the era), and even
                // those fall back when the higher band is too attenuated.
                // Net effect: ~80% of associated clients sit on 2.4 GHz
                // and the 5 GHz population reads *weaker* than 2.4 GHz —
                // both §3.1 observations.
                let prefers_5 = client.caps.dual_band() && rng.gen::<f64>() < 0.55;
                let band = if prefers_5 && rssi5 > -78.0 {
                    Band::Ghz5
                } else {
                    Band::Ghz2_4
                };
                let rssi = match band {
                    Band::Ghz2_4 => rssi24,
                    Band::Ghz5 => rssi5,
                };
                let os = classifier.classify(&client.evidence);
                info_records.push(ClientInfoRecord {
                    mac: client.mac,
                    os,
                    caps: client.caps,
                    band,
                    rssi_dbm: rssi.min(-25.0),
                });
                // One week of flows, pushed through the AP's flow table
                // (§2.1): the first packet of each flow takes the slow
                // path where the ruleset runs once; data rides the fast
                // path; FIN retires the entry into per-client counters.
                // The table is reused across clients (reset, not rebuilt).
                let week = generate_weekly(&client, year, &mut rng);
                flow_table.reset();
                for (i, flow) in week.flows.iter().enumerate() {
                    let key = FlowKey {
                        client: client.mac,
                        flow_id: i as u64,
                    };
                    let t = i as u64;
                    flow_table.open(key, &flow.metadata, t);
                    if flow.up_bytes > 0 {
                        flow_table.packet(key, Direction::Up, flow.up_bytes, &flow.metadata, t);
                    }
                    if flow.down_bytes > 0 {
                        flow_table.packet(key, Direction::Down, flow.down_bytes, &flow.metadata, t);
                    }
                    flow_table.finish(key, t + 1);
                }
                let mut per_app: std::collections::BTreeMap<Application, (u64, u64)> =
                    Default::default();
                for ((_, app), usage) in flow_table.flush() {
                    let slot = per_app.entry(app).or_default();
                    slot.0 += usage.up_bytes;
                    slot.1 += usage.down_bytes;
                }
                // Roaming: phones wander across APs during the week
                // (§6.2 calls out smartphone roaming explicitly); a
                // roamer's later flows show up at a different AP and the
                // backend must merge them by MAC.
                let roam_p = if os.is_mobile() { 0.45 } else { 0.10 };
                let roams = rng.gen::<f64>() < roam_p;
                if roams {
                    out.roamed += 1;
                }
                for (app, (up, down)) in per_app {
                    let record = UsageRecord {
                        mac: client.mac,
                        app,
                        up_bytes: up,
                        down_bytes: down,
                    };
                    if roams && rng.gen::<f64>() < 0.4 {
                        // This app's bytes were used at the roamed-to AP.
                        roaming_spill.push(record);
                    } else {
                        usage_records.push(record);
                    }
                }
            }
            // Split into multiple reports (daily polls in production).
            let mut agent = self.make_agent(device_id, window);
            for (i, chunk) in info_records.into_chunks().into_iter().enumerate() {
                agent.submit(i as u64 * 86_400, ReportPayload::ClientInfo(chunk));
            }
            for (i, chunk) in usage_records.into_chunks().into_iter().enumerate() {
                agent.submit(i as u64 * 3_600, ReportPayload::Usage(chunk));
            }
            self.drain_agent_collect(&node.indexed(device_id), window, &mut agent, &mut out);
            // The batch's roamers surface at a dedicated roamed-to AP so
            // the unit stays self-contained; the backend's MAC-level
            // aggregation merges the split usage regardless of which AP
            // reported it.
            if !roaming_spill.is_empty() {
                let roam_device = ROAM_DEVICE_BASE + batch;
                let mut roam_agent = self.make_agent(roam_device, window);
                for (i, chunk) in roaming_spill.into_chunks().into_iter().enumerate() {
                    roam_agent.submit(i as u64 * 3_600, ReportPayload::Usage(chunk));
                }
                self.drain_agent_collect(
                    &node.indexed(roam_device),
                    window,
                    &mut roam_agent,
                    &mut out,
                );
            }
            out
        };

        let mut tally = PanelTally::default();
        let mut roamed_clients = 0u64;
        run_ordered(threads, n_batches, unit, |_, out: UnitOutput| {
            roamed_clients += out.roamed;
            tally.merge(&out, sink, window, polls, degradation, sched);
        });
        (roamed_clients, tally)
    }

    // ------------------------------------------------------------------
    // Radio panel (MR16 + link probes + censuses)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_radio_window(
        &self,
        node: &SeedTree,
        world: &World,
        epoch: NeighborEpoch,
        window: WindowId,
        threads: usize,
        sink: &mut dyn ReportSink,
        polls: &mut PollStats,
        degradation: &mut DegradationTally,
        sched: &mut SchedStats,
    ) -> PanelTally {
        let model24 = LinkModel::for_band(Band::Ghz2_4);
        let model5 = LinkModel::for_band(Band::Ghz5);
        let diurnal_table = diurnal_table();
        // One AP's whole radio week is one work unit: its randomness
        // descends from the per-AP node alone.
        let unit = |index: usize| -> UnitOutput {
            let ap = &world.aps[index];
            let mut out = UnitOutput::default();
            let ap_node = node.indexed(ap.device_id);
            let mut rng = ap_node.child("census").rng();
            let mut agent = self.make_agent(ap.device_id, window);

            // 1. Neighbour census. The wire records move straight into
            //    the payload; the census keeps precomputed counts.
            let mut census = sample_census(world, ap, epoch, &mut rng);
            agent.submit(0, ReportPayload::Neighbors(census.take_records()));

            // 1b. §6.1's firmware bug: the neighbour table accumulates
            // every BSSID ever heard with no eviction. Extreme sites
            // (skyscrapers, roadside deployments) exhaust the heap and
            // reboot; the crash report reaches the backend like any other
            // telemetry once the device recovers.
            let mut memory = match ap.model {
                ApModel::Mr16 => DeviceMemory::mr16(),
                ApModel::Mr18 => DeviceMemory::mr18(),
            };
            memory.set_clients(rng.gen_range(5..60));
            let heard = u64::from(census.count_on_band(Band::Ghz2_4))
                + u64::from(census.count_on_band(Band::Ghz5));
            memory.grow_neighbor_table(heard);
            let churn = ((heard as f64) * 0.05).ceil() as u64;
            for cycle in 1..96u64 {
                if !memory.grow_neighbor_table(churn) {
                    agent.submit(
                        cycle * 900,
                        ReportPayload::Crash(vec![CrashRecord {
                            firmware: firmware_for(window).to_string(),
                            reason: RebootReason::OutOfMemory.code(),
                            program_counter: 0x40_0000 + rng.gen_range(0u64..0x8_0000),
                            uptime_s: cycle * 900,
                            free_memory_bytes: memory.free_bytes(),
                        }]),
                    );
                    break;
                }
            }

            // 2. Serving-radio airtime over the week, accumulated in
            //    six-hour reporting intervals with the diurnal cycle.
            let mut airtime_records = Vec::new();
            for (band, channel) in [(Band::Ghz2_4, ap.channel_2_4), (Band::Ghz5, ap.channel_5)] {
                let mut elapsed = 0u64;
                let mut busy = 0u64;
                let mut wifi = 0u64;
                for hour in 0..(WEEK_S / 3600) {
                    let load = serving_load(
                        ap,
                        &census,
                        band,
                        epoch,
                        diurnal_table[(hour % 24) as usize],
                        &mut rng,
                    );
                    let step_us = 3_600_000_000u64;
                    let u = load.utilization();
                    let d = load.decodable_fraction();
                    elapsed += step_us;
                    busy += (u * step_us as f64) as u64;
                    wifi += (d * u * step_us as f64) as u64;
                }
                airtime_records.push(AirtimeRecord {
                    channel,
                    elapsed_us: elapsed,
                    busy_us: busy,
                    wifi_us: wifi,
                });
            }
            agent.submit(WEEK_S, ReportPayload::Airtime(airtime_records));

            // 3. Probe links: delivery ratio time series over the week.
            let mut link_rng = ap_node.child("links").rng();
            let interval = self.config.link_report_interval_s.max(300);
            let inbound: Vec<_> = world
                .links_into(ap.device_id, Band::Ghz2_4)
                .chain(world.links_into(ap.device_id, Band::Ghz5))
                .collect();
            if !inbound.is_empty() {
                let mut faders: Vec<FadingProcess> = inbound
                    .iter()
                    .map(|_| FadingProcess::probe_interval_default())
                    .collect();
                let mut t = 0u64;
                while t < WEEK_S {
                    let hour = (t / 3600) % 24;
                    let mut records = Vec::with_capacity(inbound.len());
                    for (wl, fader) in inbound.iter().zip(faders.iter_mut()) {
                        // Step the fading once per report interval (the
                        // process parameters absorb the coarser step).
                        let fade = fader.step(&mut link_rng);
                        let band = wl.link.band;
                        let model = match band {
                            Band::Ghz2_4 => &model24,
                            Band::Ghz5 => &model5,
                        };
                        let load = serving_load(
                            ap,
                            &census,
                            band,
                            epoch,
                            diurnal_table[hour as usize],
                            &mut link_rng,
                        );
                        let p = model.delivery_probability(&wl.link, load.utilization(), fade);
                        // 300 s window of 15 s probes = 20 expected.
                        let received = (0..20).filter(|_| link_rng.gen::<f64>() < p).count() as u32;
                        records.push(LinkRecord {
                            peer_device: wl.tx,
                            band,
                            probes_expected: 20,
                            probes_received: received,
                        });
                    }
                    agent.submit(t, ReportPayload::Links(records));
                    t += interval;
                }
            }

            self.drain_agent_collect(&ap_node, window, &mut agent, &mut out);
            out
        };

        let mut tally = PanelTally::default();
        run_ordered(threads, world.aps.len(), unit, |_, out: UnitOutput| {
            tally.merge(&out, sink, window, polls, degradation, sched);
        });
        tally
    }

    // ------------------------------------------------------------------
    // Scan panel (MR18)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn run_scan_window(
        &self,
        node: &SeedTree,
        world: &World,
        epoch: NeighborEpoch,
        window: WindowId,
        threads: usize,
        sink: &mut dyn ReportSink,
        polls: &mut PollStats,
        degradation: &mut DegradationTally,
        sched: &mut SchedStats,
    ) -> PanelTally {
        let diurnal_table = diurnal_table();
        let scan_aps: Vec<&ApSite> = world
            .aps
            .iter()
            .filter(|a| a.model == ApModel::Mr18)
            .collect();
        let unit = |index: usize| -> UnitOutput {
            let ap = scan_aps[index];
            let mut out = UnitOutput::default();
            let ap_node = node.indexed(ap.device_id);
            let mut rng = ap_node.child("scan").rng();
            let mut agent = self.make_agent(ap.device_id + 500_000, window); // scan radio identity
            let census = sample_census(world, ap, epoch, &mut rng);
            // Two 3-minute aggregates per day: 10:00 and 22:00.
            for day in 0..7u64 {
                for hour in [DAY_SAMPLE_HOUR, NIGHT_SAMPLE_HOUR] {
                    let timestamp = day * 86_400 + hour * 3_600;
                    let mut records = Vec::new();
                    for band in [Band::Ghz2_4, Band::Ghz5] {
                        for channel in Channel::all_in(band) {
                            let load = channel_load(
                                ap,
                                &census,
                                channel,
                                epoch,
                                diurnal_table[hour as usize],
                                &mut rng,
                            );
                            let networks = census.count_on(channel);
                            records.push(ChannelScanRecord {
                                channel,
                                utilization_ppm: (load.utilization() * 1e6) as u32,
                                decodable_ppm: (load.decodable_fraction() * 1e6) as u32,
                                networks,
                            });
                        }
                    }
                    agent.submit(timestamp, ReportPayload::ChannelScan(records));
                }
            }
            self.drain_agent_collect(&ap_node, window, &mut agent, &mut out);
            out
        };

        let mut tally = PanelTally::default();
        run_ordered(threads, scan_aps.len(), unit, |_, out: UnitOutput| {
            tally.merge(&out, sink, window, polls, degradation, sched);
        });
        tally
    }

    /// Creates a device agent, applying the active fault schedule's
    /// queue-capacity pressure for `window` (default capacity otherwise).
    fn make_agent(&self, device_id: u64, window: WindowId) -> DeviceAgent {
        let capacity = self
            .config
            .faults
            .as_ref()
            .and_then(|schedule| schedule.intensity(window).queue_capacity)
            .unwrap_or(DeviceAgent::DEFAULT_CAPACITY);
        DeviceAgent::with_capacity(device_id, capacity)
    }

    /// Polls an agent until drained, collecting the decoded reports into
    /// `out` (the caller merges them into the backend in deterministic
    /// unit order).
    ///
    /// Without a fault schedule this is the healthy path: one tunnel,
    /// the default [`PollPolicy`], and a drain that must empty the queue.
    /// With a schedule, the window's scripted faults drive a
    /// [`DualTunnel`] (`airstat_telemetry::failover`) instead. Either
    /// way the drain runs on the configured [`PollPath`]: the scheduler
    /// (default) or the retained flat reference loop. All four paths
    /// consume the same `child("tunnel")` RNG stream per poll and each
    /// agent's drain runs on its own virtual-time session, so a zero
    /// intensity schedule reproduces the no-schedule output byte for
    /// byte — and both poll paths produce identical reports.
    fn drain_agent_collect(
        &self,
        node: &SeedTree,
        window: WindowId,
        agent: &mut DeviceAgent,
        out: &mut UnitOutput,
    ) {
        let base = TunnelConfig {
            drop_probability: self.config.poll_drop_probability,
            poll_batch: 64,
        };
        match &self.config.faults {
            None => {
                let mut tunnel = Tunnel::new(base);
                let mut rng = node.child("tunnel").rng();
                let (reports, stats) = match self.config.poll_path {
                    PollPath::Scheduler => {
                        let (reports, stats, sched) =
                            drain_scheduled(PollPolicy::default(), &mut tunnel, agent, &mut rng);
                        out.sched.merge(&sched);
                        (reports, stats)
                    }
                    PollPath::FlatReference => {
                        drain_flat_reference(PollPolicy::default(), &mut tunnel, agent, &mut rng)
                    }
                };
                out.reports.extend(reports);
                out.polls_attempted += stats.polls;
                out.polls_lost += stats.lost;
                out.bytes += stats.bytes;
                out.tally.absorb(&stats);
                assert_eq!(agent.queued(), 0, "agent failed to drain");
            }
            Some(schedule) => {
                let intensity = schedule.intensity(window);
                let drained = match self.config.poll_path {
                    PollPath::Scheduler => {
                        let (drained, sched) = faults::drain_faulted_scheduled(
                            intensity,
                            schedule.policy(),
                            base,
                            node,
                            firmware_for(window),
                            agent,
                        );
                        out.sched.merge(&sched);
                        drained
                    }
                    PollPath::FlatReference => faults::drain_faulted(
                        intensity,
                        schedule.policy(),
                        base,
                        node,
                        firmware_for(window),
                        agent,
                    ),
                };
                out.reports.extend(drained.reports);
                out.polls_attempted += drained.stats.polls;
                out.polls_lost += drained.stats.lost;
                out.bytes += drained.stats.bytes;
                out.tally.absorb(&drained.stats);
                out.tally.lost_to_crash += drained.crash_lost;
                out.tally.crash_reboots += drained.crash_reboots;
                out.tally.failovers += drained.failovers;
                out.tally.secondary_served += drained.secondary_served;
                out.tally.left_queued += agent.queued() as u64;
            }
        }
        out.tally.submitted += agent.reports_submitted();
        out.tally.dropped_overflow += agent.dropped_overflow();
    }
}

/// Poll-sized report chunk length (records per report).
const POLL_CHUNK: usize = 512;

/// Device-id base for the usage panel's synthetic roamed-to APs; far
/// above both the radio panel's ids and the usage batch agents'.
const ROAM_DEVICE_BASE: u64 = 2_000_000;

/// What one work unit hands back to the driver thread.
#[derive(Debug, Default)]
struct UnitOutput {
    /// Decoded reports, in submission order, ready for backend ingest.
    reports: Vec<Report>,
    polls_attempted: u64,
    polls_lost: u64,
    /// Wire bytes encoded by this unit's tunnels.
    bytes: u64,
    /// Clients in this unit that roamed (usage panel only).
    roamed: u64,
    /// Degradation accounting for this unit's drains.
    tally: DegradationTally,
    /// Scheduler counters for this unit's drains.
    sched: SchedStats,
}

/// Running totals for one panel, merged on the driver thread.
#[derive(Debug, Default)]
struct PanelTally {
    reports: u64,
    bytes: u64,
}

impl PanelTally {
    /// Ingests one unit's reports and folds its counters in. Called from
    /// the ordered sink, so ingest order equals unit order.
    fn merge(
        &mut self,
        out: &UnitOutput,
        sink: &mut dyn ReportSink,
        window: WindowId,
        polls: &mut PollStats,
        degradation: &mut DegradationTally,
        sched: &mut SchedStats,
    ) {
        let accepted = sink.ingest_batch(window, &out.reports);
        self.reports += accepted;
        self.bytes += out.bytes;
        polls.attempted += out.polls_attempted;
        polls.lost += out.polls_lost;
        degradation.merge(&out.tally);
        degradation.accepted += accepted;
        degradation.record_evictions(&out.sched);
        sched.merge(&out.sched);
    }

    // airstat::allow(no-wall-clock): wall time here only feeds PanelStats throughput diagnostics for the operator; it never reaches report bytes
    fn into_stats(self, label: &'static str, started: Instant) -> PanelStats {
        PanelStats {
            label,
            wall_s: started.elapsed().as_secs_f64(),
            reports: self.reports,
            bytes: self.bytes,
        }
    }
}

/// Accumulates records directly into poll-sized chunks, replacing the
/// build-everything-then-`chunks().to_vec()` pattern (one fewer copy of
/// every record on the hot path). Chunk boundaries match
/// `slice::chunks(size)` over the same push sequence exactly.
#[derive(Debug)]
struct Chunked<T> {
    size: usize,
    chunks: Vec<Vec<T>>,
}

impl<T> Chunked<T> {
    fn new(size: usize) -> Self {
        Chunked {
            size,
            chunks: Vec::new(),
        }
    }

    fn push(&mut self, value: T) {
        match self.chunks.last_mut() {
            Some(last) if last.len() < self.size => last.push(value),
            _ => {
                let mut chunk = Vec::with_capacity(self.size);
                chunk.push(value);
                self.chunks.push(chunk);
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    fn into_chunks(self) -> Vec<Vec<T>> {
        self.chunks
    }
}

#[derive(Debug, Default)]
struct PollStats {
    attempted: u64,
    lost: u64,
}

/// The diurnal activity multiplier for a local hour (0–23).
///
/// Business-network shape: low overnight, ramping to a midday plateau.
/// Calibrated so the Figure 9 day/night utilization gap is a few percent.
pub fn diurnal(hour: u64) -> f64 {
    match hour {
        0..=5 => 0.35,
        6..=8 => 0.7,
        9..=17 => 1.0,
        18..=20 => 0.8,
        _ => 0.5,
    }
}

/// [`diurnal`] precomputed for all 24 hours — the hot loops index this
/// instead of re-evaluating the match hundreds of thousands of times.
pub fn diurnal_table() -> [f64; 24] {
    std::array::from_fn(|hour| diurnal(hour as u64))
}

/// A sampled neighbour census for one AP.
#[derive(Debug, Clone)]
pub struct SampledCensus {
    /// The wire records (per channel with nonzero count).
    pub records: Vec<NeighborRecord>,
    /// Fraction of neighbours beaconing as legacy 802.11b.
    pub legacy_fraction: f64,
    // Counts are precomputed at sampling time so the per-hour load loops
    // do map lookups instead of scanning `records`, and so the records
    // themselves can be moved into a report payload (`take_records`)
    // without cloning.
    counts: std::collections::BTreeMap<(Band, u16), u32>,
    band_totals: [u32; 2],
}

fn band_index(band: Band) -> usize {
    match band {
        Band::Ghz2_4 => 0,
        Band::Ghz5 => 1,
    }
}

impl SampledCensus {
    /// Networks heard on `channel`.
    pub fn count_on(&self, channel: Channel) -> u32 {
        self.counts
            .get(&(channel.band, channel.number))
            .copied()
            .unwrap_or(0)
    }

    /// Networks heard on a band.
    pub fn count_on_band(&self, band: Band) -> u32 {
        self.band_totals[band_index(band)]
    }

    /// Moves the wire records out (e.g. into a report payload). The
    /// precomputed per-channel and per-band counts remain valid.
    pub fn take_records(&mut self) -> Vec<NeighborRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Samples an AP's neighbour census for an epoch.
pub fn sample_census<R: Rng + ?Sized>(
    world: &World,
    ap: &ApSite,
    epoch: NeighborEpoch,
    rng: &mut R,
) -> SampledCensus {
    let mut per_channel: std::collections::BTreeMap<(Band, u16), (u32, u32)> = Default::default();
    for band in [Band::Ghz2_4, Band::Ghz5] {
        let mean = epoch.mean_networks(band) * ap.density;
        // Poisson-ish count via exponential inter-arrival thinning: for
        // simulation purposes a rounded exponential-mixture is fine and
        // keeps the long tail.
        let count = sample_count(mean, rng);
        let hotspot_p = epoch.hotspot_fraction(band);
        for _ in 0..count {
            let channel = world.placement.sample(band, rng);
            let entry = per_channel.entry((band, channel.number)).or_default();
            entry.0 += 1;
            if rng.gen::<f64>() < hotspot_p {
                entry.1 += 1;
            }
        }
    }
    let records: Vec<NeighborRecord> = per_channel
        .into_iter()
        .map(|((band, number), (networks, hotspots))| NeighborRecord {
            channel: Channel::new(band, number)
                .expect("invariant: placement only emits valid plan channels"),
            networks,
            hotspots,
        })
        .collect();
    let mut counts: std::collections::BTreeMap<(Band, u16), u32> = Default::default();
    let mut band_totals = [0u32; 2];
    for r in &records {
        *counts
            .entry((r.channel.band, r.channel.number))
            .or_default() += r.networks;
        band_totals[band_index(r.channel.band)] += r.networks;
    }
    SampledCensus {
        records,
        legacy_fraction: 0.08,
        counts,
        band_totals,
    }
}

/// Draws a non-negative integer with the given mean and a heavy-ish tail.
fn sample_count<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    // Mixture: exponential around the mean (coefficient of variation 1),
    // which matches the broad spread of real neighbour counts.
    let x = Exponential::with_mean(mean).sample(rng);
    x.round() as u32
}

/// The load on the AP's *serving* channel of `band` (what the MR16
/// energy-detect counter integrates).
pub fn serving_load<R: Rng + ?Sized>(
    ap: &ApSite,
    census: &SampledCensus,
    band: Band,
    epoch: NeighborEpoch,
    diurnal_factor: f64,
    rng: &mut R,
) -> ChannelLoad {
    let channel = match band {
        Band::Ghz2_4 => ap.channel_2_4,
        Band::Ghz5 => ap.channel_5,
    };
    channel_load_inner(ap, census, channel, epoch, diurnal_factor, true, rng)
}

/// The load on an arbitrary channel (what the MR18 scanner sees).
pub fn channel_load<R: Rng + ?Sized>(
    ap: &ApSite,
    census: &SampledCensus,
    channel: Channel,
    epoch: NeighborEpoch,
    diurnal_factor: f64,
    rng: &mut R,
) -> ChannelLoad {
    let own = channel == ap.channel_2_4 || channel == ap.channel_5;
    channel_load_inner(ap, census, channel, epoch, diurnal_factor, own, rng)
}

/// Maximum networks close enough to ever trigger energy detect, however
/// many the scanning radio can decode.
const ED_POOL_CAP: u64 = 8;
/// Minimum visible (energy-detect triggering) fraction of the ED pool.
const ED_VISIBLE_MIN: f64 = 0.10;
/// Spread of the visible fraction across channel samples.
const ED_VISIBLE_SPREAD: f64 = 0.55;
/// Heavy-tail scale of one strong network's busy contribution.
const FOREIGN_BUSY_XMIN: f64 = 0.006;
/// Pareto tail index: < 1 makes the channel's foreign load dominated by
/// its single busiest neighbour, not the neighbour *count* — the key to
/// the paper's missing count-utilization correlation.
const FOREIGN_BUSY_ALPHA: f64 = 0.95;

fn channel_load_inner<R: Rng + ?Sized>(
    ap: &ApSite,
    census: &SampledCensus,
    channel: Channel,
    epoch: NeighborEpoch,
    diurnal_factor: f64,
    include_own: bool,
    rng: &mut R,
) -> ChannelLoad {
    let co_channel = census.count_on(channel);
    // Energy-detect visibility: the census decodes beacons down to the
    // receive sensitivity (≈ -95 dBm) but the carrier-sense energy
    // detector only triggers ~30 dB higher, so most *heard* networks
    // contribute no busy time. This, plus the heavy-tailed activity of
    // the few strong ones, is what destroys the count-vs-utilization
    // correlation in Figures 7/8.
    let visible_p = ED_VISIBLE_MIN + ED_VISIBLE_SPREAD * rng.gen::<f64>();
    // The decode radius scales with the site's RF horizon (a skyscraper AP
    // hears hundreds of networks), but the energy-detect radius is fixed:
    // only networks within a small physical neighbourhood can trigger
    // carrier sense. The candidate pool for "strong" is therefore capped,
    // which — together with the heavy-tailed activity below — removes the
    // count-utilization correlation (Figures 7/8).
    let ed_pool = u64::from(co_channel).min(ED_POOL_CAP);
    // Energy the census never attributes: clients of networks whose AP is
    // out of decode range, and adjacent-channel bleed. Count-independent,
    // and nearly absent at 5 GHz where the band is mostly empty.
    let unattributed_mean = match channel.band {
        Band::Ghz2_4 => 0.05,
        Band::Ghz5 => 0.008,
    };
    let unattributed = Exponential::with_mean(unattributed_mean).sample(rng) * diurnal_factor;
    let strong = (0..ed_pool)
        .filter(|_| rng.gen::<f64>() < visible_p)
        .count() as u32;
    // Foreign data traffic: Pareto per strong network — most are idle,
    // one busy neighbour dominates the channel.
    let pareto = airstat_stats::dist::Pareto::new(FOREIGN_BUSY_XMIN, FOREIGN_BUSY_ALPHA);
    let foreign_busy: f64 = (0..strong)
        .map(|_| (pareto.sample(rng) - FOREIGN_BUSY_XMIN).min(0.8))
        .sum::<f64>()
        * diurnal_factor
        + unattributed;
    // Our own client load rides the serving channel only, split across
    // the two radios by the site's client mix.
    let band_share = match channel.band {
        Band::Ghz2_4 => 1.0 - ap.share_5ghz,
        Band::Ghz5 => ap.share_5ghz,
    };
    let own_load = if include_own {
        ap.data_load_bps * band_share * diurnal_factor
    } else {
        0.0
    };
    // Non-WiFi duty from the AP's actual interferer population (§5.3):
    // each emitter contributes its duty cycle on this channel (hoppers
    // spread across the band, static emitters hit co-located channels),
    // modulated by time of day since most of these devices follow people.
    let non_wifi = match channel.band {
        Band::Ghz2_4 => {
            let ambient =
                airstat_rf::interference::aggregate_duty(&ap.interferers, channel.center_mhz());
            (ambient * diurnal_factor).min(0.25) + Exponential::with_mean(0.003).sample(rng)
        }
        Band::Ghz5 => Exponential::with_mean(0.002).sample(rng),
    };
    // Foreign busy is energy from *other* networks: fold it into the data
    // term by expressing it as extra offered load on our capacity model.
    let mean_rate = match channel.band {
        Band::Ghz2_4 => 24.0,
        Band::Ghz5 => 54.0,
    };
    let capacity = airstat_rf::phy::effective_throughput_bps(mean_rate);
    let foreign_load_bps = foreign_busy * capacity;
    // Corrupt preambles: more hidden terminals in denser places.
    let corrupt = (0.06 + 0.05 * (co_channel as f64 / 30.0)).min(0.35);
    let epoch_legacy = match epoch {
        // Legacy beacons were slightly more common six months earlier.
        NeighborEpoch::Jul2014 => census.legacy_fraction * 1.25,
        NeighborEpoch::Jan2015 => census.legacy_fraction,
    };
    ChannelLoad {
        beaconing_bssids: strong + u32::from(include_own),
        legacy_beacon_fraction: epoch_legacy,
        data_load_bps: own_load + foreign_load_bps,
        mean_data_rate_mbps: mean_rate,
        non_wifi_duty: non_wifi,
        corrupt_preamble_fraction: corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_stats::Ecdf;

    fn tiny_run() -> SimulationOutput {
        FleetSimulation::new(FleetConfig::smoke()).run()
    }

    #[test]
    fn smoke_run_populates_all_windows() {
        let out = tiny_run();
        use crate::config::{WINDOW_JAN_2014, WINDOW_JAN_2015, WINDOW_JUL_2014};
        use airstat_store::FleetQuery;
        let b = out.query();
        assert!(b.client_count(WINDOW_JAN_2014) > 0);
        assert!(b.client_count(WINDOW_JAN_2015) > 0);
        assert!(b.client_count(WINDOW_JAN_2015) > b.client_count(WINDOW_JAN_2014));
        assert!(!b.usage_by_app(WINDOW_JAN_2015).is_empty());
        assert!(!b
            .latest_delivery_ratios(WINDOW_JAN_2015, Band::Ghz2_4)
            .is_empty());
        assert!(!b
            .latest_delivery_ratios(WINDOW_JUL_2014, Band::Ghz2_4)
            .is_empty());
        assert!(!b
            .serving_utilizations(WINDOW_JAN_2015, Band::Ghz2_4)
            .is_empty());
        assert!(!b
            .scan_observations(WINDOW_JAN_2015, Band::Ghz2_4)
            .is_empty());
        let (_, mean24, _) = b.nearby_summary(WINDOW_JAN_2015, Band::Ghz2_4);
        assert!(mean24 > 10.0, "mean nearby {mean24}");
        assert!(out.polls_attempted > 0);
        // Roaming happened, and MAC aggregation kept client counts exact:
        // a roamer shows up at two APs yet counts once in the client panel.
        assert!(out.roamed_clients > 0, "some clients must roam");
        assert!(
            (out.roamed_clients as usize) < b.client_count(WINDOW_JAN_2015),
            "roamers are a subset of clients"
        );
    }

    #[test]
    fn smoke_run_reports_panel_stats() {
        let out = tiny_run();
        let labels: Vec<_> = out.panels.iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            vec![
                "usage-2014",
                "usage-2015",
                "radio-jul14",
                "radio-jan15",
                "scan-jan15"
            ]
        );
        for p in &out.panels {
            assert!(p.reports > 0, "{}: no reports", p.label);
            assert!(p.bytes > 0, "{}: no wire bytes", p.label);
        }
        assert_eq!(
            out.reports_ingested(),
            out.store.reports_ingested(),
            "panel tallies must agree with the store"
        );
        assert_eq!(
            out.bytes_encoded,
            out.panels.iter().map(|p| p.bytes).sum::<u64>()
        );
        assert!(out.threads >= 1);
        let summary = out.throughput_summary();
        assert!(summary.contains("usage-2015"));
        assert!(summary.contains("total"));
    }

    #[test]
    fn census_counts_match_records() {
        let world = World::generate(&SeedTree::new(11), 50, 0);
        let mut rng = SeedTree::new(12).rng();
        for ap in &world.aps {
            let mut census = sample_census(&world, ap, NeighborEpoch::Jan2015, &mut rng);
            for band in [Band::Ghz2_4, Band::Ghz5] {
                let scanned: u32 = census
                    .records
                    .iter()
                    .filter(|r| r.channel.band == band)
                    .map(|r| r.networks)
                    .sum();
                assert_eq!(census.count_on_band(band), scanned);
                for channel in Channel::all_in(band) {
                    let on_channel: u32 = census
                        .records
                        .iter()
                        .filter(|r| r.channel == channel)
                        .map(|r| r.networks)
                        .sum();
                    assert_eq!(census.count_on(channel), on_channel);
                }
            }
            // Counts survive moving the records out.
            let total_before = census.count_on_band(Band::Ghz2_4);
            let records = census.take_records();
            assert!(census.records.is_empty());
            assert_eq!(census.count_on_band(Band::Ghz2_4), total_before);
            drop(records);
        }
    }

    #[test]
    fn diurnal_table_matches_function() {
        let table = diurnal_table();
        for hour in 0..24u64 {
            assert_eq!(table[hour as usize], diurnal(hour));
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny_run();
        let b = tiny_run();
        use crate::config::WINDOW_JAN_2015;
        use airstat_store::FleetQuery;
        let (qa, qb) = (a.query(), b.query());
        assert_eq!(
            qa.usage_by_app(WINDOW_JAN_2015),
            qb.usage_by_app(WINDOW_JAN_2015)
        );
        assert_eq!(
            qa.latest_delivery_ratios(WINDOW_JAN_2015, Band::Ghz2_4),
            qb.latest_delivery_ratios(WINDOW_JAN_2015, Band::Ghz2_4)
        );
    }

    #[test]
    fn diurnal_shape() {
        assert!(diurnal(3) < diurnal(12));
        assert!(diurnal(22) < diurnal(12));
        assert_eq!(diurnal(12), 1.0);
        for h in 0..24 {
            assert!(diurnal(h) > 0.0 && diurnal(h) <= 1.0);
        }
    }

    #[test]
    fn census_means_track_epoch() {
        let world = World::generate(&SeedTree::new(1), 400, 0);
        let mut rng = SeedTree::new(2).rng();
        let mut total24 = 0u32;
        let mut total5 = 0u32;
        for ap in &world.aps {
            let c = sample_census(&world, ap, NeighborEpoch::Jan2015, &mut rng);
            total24 += c.count_on_band(Band::Ghz2_4);
            total5 += c.count_on_band(Band::Ghz5);
        }
        let mean24 = f64::from(total24) / world.aps.len() as f64;
        let mean5 = f64::from(total5) / world.aps.len() as f64;
        assert!((mean24 - 55.47).abs() < 12.0, "mean 2.4 {mean24}");
        assert!((mean5 - 3.68).abs() < 1.5, "mean 5 {mean5}");
    }

    #[test]
    fn serving_utilization_distribution_matches_fig6() {
        // Generate a standalone panel and check the Figure 6 shape:
        // 2.4 GHz median ≈ 25%, p90 ≈ 50%; 5 GHz median ≈ 5%, p90 ≈ 30%.
        let world = World::generate(&SeedTree::new(3), 600, 0);
        let mut rng = SeedTree::new(4).rng();
        let mut utils24 = Vec::new();
        let mut utils5 = Vec::new();
        for ap in &world.aps {
            let census = sample_census(&world, ap, NeighborEpoch::Jan2015, &mut rng);
            let mut acc24 = 0.0;
            let mut acc5 = 0.0;
            for hour in 0..24 {
                acc24 += serving_load(
                    ap,
                    &census,
                    Band::Ghz2_4,
                    NeighborEpoch::Jan2015,
                    diurnal(hour),
                    &mut rng,
                )
                .utilization();
                acc5 += serving_load(
                    ap,
                    &census,
                    Band::Ghz5,
                    NeighborEpoch::Jan2015,
                    diurnal(hour),
                    &mut rng,
                )
                .utilization();
            }
            utils24.push(acc24 / 24.0);
            utils5.push(acc5 / 24.0);
        }
        let e24 = Ecdf::new(utils24);
        let e5 = Ecdf::new(utils5);
        let med24 = e24.median().unwrap();
        let p90_24 = e24.quantile(0.9).unwrap();
        let med5 = e5.median().unwrap();
        let p90_5 = e5.quantile(0.9).unwrap();
        assert!((0.15..=0.35).contains(&med24), "2.4 median {med24}");
        assert!((0.32..=0.68).contains(&p90_24), "2.4 p90 {p90_24}");
        assert!((0.02..=0.12).contains(&med5), "5 median {med5}");
        assert!((0.08..=0.40).contains(&p90_5), "5 p90 {p90_5}");
        assert!(med24 > med5 * 2.0);
    }

    #[test]
    fn july_2014_quieter_than_jan_2015() {
        // Paired comparison: the same AP under the same random draws, only
        // the epoch differs — isolates the §4 growth signal from the
        // heavy-tailed sampling noise.
        let world = World::generate(&SeedTree::new(5), 300, 0);
        let seed = SeedTree::new(6);
        let mean = |epoch: NeighborEpoch| {
            let mut acc = 0.0;
            for ap in &world.aps {
                let mut rng = seed.indexed(ap.device_id).rng();
                let census = sample_census(&world, ap, epoch, &mut rng);
                acc += serving_load(ap, &census, Band::Ghz2_4, epoch, 1.0, &mut rng).utilization();
            }
            acc / world.aps.len() as f64
        };
        let jul = mean(NeighborEpoch::Jul2014);
        let jan = mean(NeighborEpoch::Jan2015);
        assert!(jan > jul, "interference grew: {jul} -> {jan}");
    }

    #[test]
    fn off_channel_loads_are_lighter() {
        // The §5.2 sampling-bias mechanism: the serving channel carries
        // the AP's own load, other channels do not.
        let world = World::generate(&SeedTree::new(7), 50, 0);
        let ap = &world.aps[0];
        let mut rng = SeedTree::new(8).rng();
        let census = sample_census(&world, ap, NeighborEpoch::Jan2015, &mut rng);
        let mut own = 0.0;
        let mut other = 0.0;
        let other_channel =
            Channel::new(Band::Ghz2_4, if ap.channel_2_4.number == 6 { 1 } else { 6 }).unwrap();
        for _ in 0..50 {
            own += channel_load(
                ap,
                &census,
                ap.channel_2_4,
                NeighborEpoch::Jan2015,
                1.0,
                &mut rng,
            )
            .utilization();
            other += channel_load(
                ap,
                &census,
                other_channel,
                NeighborEpoch::Jan2015,
                1.0,
                &mut rng,
            )
            .utilization();
        }
        assert!(own > other, "serving channel busier: {own} vs {other}");
    }

    #[test]
    fn decodable_fraction_mostly_high_at_2_4() {
        // Figure 10: the majority of busy time contains decodable headers.
        let world = World::generate(&SeedTree::new(9), 200, 0);
        let mut rng = SeedTree::new(10).rng();
        let mut decodables = Vec::new();
        for ap in &world.aps {
            let census = sample_census(&world, ap, NeighborEpoch::Jan2015, &mut rng);
            let load = serving_load(
                ap,
                &census,
                Band::Ghz2_4,
                NeighborEpoch::Jan2015,
                1.0,
                &mut rng,
            );
            if load.utilization() > 0.01 {
                decodables.push(load.decodable_fraction());
            }
        }
        let e = Ecdf::new(decodables);
        assert!(
            e.median().unwrap() > 0.5,
            "median decodable {}",
            e.median().unwrap()
        );
    }
}
