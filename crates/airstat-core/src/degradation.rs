//! The end-to-end degradation report for fault campaigns.
//!
//! [`DegradationReport`] condenses a campaign's
//! [`DegradationTally`] and the
//! backend's dedup counter into the three quantities the collection layer
//! is judged by — **data completeness**, the **report latency
//! distribution** (virtual seconds), and **loss/duplicate counts** per
//! cause — rendered next to `throughput_summary()` by the CLI and the
//! `fault_campaign` example. The cniCloud / WLAN-Analytics lesson applies:
//! collection loss, not analysis, dominates fidelity, so this report is
//! the first thing to read when a campaign's tables look off.

use std::fmt;

use airstat_sim::faults::DegradationTally;
use airstat_sim::SimulationOutput;

/// A rendered summary of how gracefully one campaign degraded.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The fault scenario label ("none" for a healthy run).
    pub scenario: String,
    /// The campaign-wide tally the engine accumulated.
    pub tally: DegradationTally,
    /// Duplicate reports the backend's sequence dedup rejected.
    pub duplicates_dropped: u64,
}

impl DegradationReport {
    /// Builds the report from a finished simulation.
    pub fn from_simulation(output: &SimulationOutput, scenario: &str) -> Self {
        DegradationReport {
            scenario: scenario.to_string(),
            tally: output.degradation.clone(),
            duplicates_dropped: output.store.duplicates_dropped(),
        }
    }

    /// Data completeness in `[0, 1]`: unique accepted reports over
    /// submitted reports.
    pub fn completeness(&self) -> f64 {
        self.tally.completeness()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = &self.tally;
        writeln!(f, "degradation report (scenario: {}):", self.scenario)?;
        writeln!(
            f,
            "  completeness   {:>7.3}%  ({} of {} reports accepted)",
            self.completeness() * 100.0,
            t.accepted,
            t.submitted,
        )?;
        writeln!(
            f,
            "  lost reports   {:>7} overflow  {:>6} crash  {:>6} unpolled  {:>6} evicted",
            t.dropped_overflow, t.lost_to_crash, t.left_queued, t.lost_to_eviction,
        )?;
        writeln!(
            f,
            "  evicted APs    high {}  normal {}  low {}  (only LOW is ever evicted)",
            t.evicted_high, t.evicted_normal, t.evicted_low,
        )?;
        writeln!(
            f,
            "  duplicates     {:>7} dropped by seq dedup  ({} redelivered on wire)",
            self.duplicates_dropped, t.redelivered,
        )?;
        writeln!(
            f,
            "  polls          {:>7} total  {:>6} lost  {:>6} disconnected",
            t.polls, t.polls_lost, t.disconnected_polls,
        )?;
        writeln!(
            f,
            "  failovers      {:>7}  (secondary served {} polls)",
            t.failovers, t.secondary_served,
        )?;
        writeln!(
            f,
            "  crash reboots  {:>7}  budget-exhausted agents {}",
            t.crash_reboots, t.budget_exhausted_agents,
        )?;
        let q = |p: f64| {
            t.latency
                .quantile(p)
                .map_or_else(|| "-".to_string(), |s| s.to_string())
        };
        write!(
            f,
            "  latency (virt) p50 {} s  p90 {} s  p99 {} s  max {} s",
            q(0.5),
            q(0.9),
            q(0.99),
            t.latency
                .max_s()
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_telemetry::poll::LatencyHistogram;

    fn sample_report() -> DegradationReport {
        let mut latency = LatencyHistogram::new();
        latency.record_n(60, 80);
        latency.record_n(480, 15);
        latency.record_n(1920, 5);
        DegradationReport {
            scenario: "dc-outage".into(),
            tally: DegradationTally {
                submitted: 1_000,
                accepted: 940,
                dropped_overflow: 50,
                lost_to_crash: 10,
                polls: 2_000,
                polls_lost: 120,
                disconnected_polls: 40,
                failovers: 12,
                secondary_served: 80,
                redelivered: 90,
                crash_reboots: 3,
                lost_to_eviction: 7,
                evicted_low: 4,
                latency,
                ..DegradationTally::default()
            },
            duplicates_dropped: 85,
        }
    }

    #[test]
    fn completeness_from_tally() {
        let report = sample_report();
        assert!((report.completeness() - 0.94).abs() < 1e-12);
    }

    #[test]
    fn renders_every_axis() {
        let text = sample_report().to_string();
        assert!(text.contains("scenario: dc-outage"));
        assert!(text.contains("94.000%"));
        assert!(text.contains("50 overflow"));
        assert!(text.contains("7 evicted"));
        assert!(text.contains("high 0  normal 0  low 4"));
        assert!(text.contains("85 dropped by seq dedup"));
        assert!(text.contains("failovers"));
        assert!(text.contains("p50 60 s"));
        assert!(text.contains("max 1920 s"));
    }

    #[test]
    fn empty_latency_renders_dashes() {
        let report = DegradationReport {
            scenario: "zero".into(),
            tally: DegradationTally::default(),
            duplicates_dropped: 0,
        };
        let text = report.to_string();
        assert!(text.contains("p50 - s"));
        assert!(text.contains("100.000%"));
    }
}
