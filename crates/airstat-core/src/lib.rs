//! # airstat-core — the paper's analysis, as a library
//!
//! Everything the paper's evaluation publishes — Tables 2–7 and Figures
//! 1–11 — is regenerated here as a typed query over any
//! [`airstat_store::FleetQuery`] source: the sharded store's cached
//! query engine (the production path, via `SimulationOutput::query()`)
//! or the legacy [`airstat_telemetry::Backend`]. Each
//! table/figure is a struct with a `compute(...)` constructor and a
//! `Display` impl that prints rows in the paper's own format, so the
//! examples and benches can diff our reproduction against the published
//! numbers line by line.
//!
//! * [`tables`] — Table 2 (industry mix), Table 3 (usage by OS), Table 4
//!   (client capabilities), Table 5 (top 40 applications), Table 6
//!   (categories), Table 7 (nearby-network growth);
//! * [`figures`] — Figure 1 (RSSI), Figure 2 (channel census), Figure 3
//!   (delivery CDFs), Figures 4/5 (link time series), Figure 6 (MR16
//!   utilization), Figures 7/8 (utilization-vs-APs scatter + correlation),
//!   Figure 9 (day/night), Figure 10 (decodable share), Figure 11
//!   (spectrum waterfalls);
//! * [`render`] — plain-text table and CDF renderers shared by the
//!   examples;
//! * [`report`] — [`report::PaperReport`]: one call that runs the whole
//!   campaign and prints the full reproduction;
//! * [`anomaly`] — §6.2's operational lesson as code: robust spike
//!   detection over daily usage series with platform attribution;
//! * [`export`] — the anonymized dataset release of §8
//!   (`dl.meraki.net/sigcomm-2015`), regenerated;
//! * [`planner`] — §8's second recommendation: coordinated,
//!   utilization-driven channel planning, with the count-based baseline;
//! * [`diagnostics`] — §6.3's wired-vs-wireless problem triage;
//! * [`degradation`] — the fault-campaign degradation report:
//!   completeness, loss/duplicate accounting, and report latency
//!   quantiles for a simulated collection-layer fault scenario.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anomaly;
pub mod degradation;
pub mod diagnostics;
pub mod export;
pub mod figures;
pub mod planner;
pub mod render;
pub mod report;
pub mod tables;

pub use degradation::DegradationReport;
pub use report::PaperReport;
