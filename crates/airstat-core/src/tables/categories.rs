//! Table 6: usage by application category.

use airstat_classify::apps::AppCategory;
use airstat_stats::summary::{
    bytes_in, fmt_bytes, fmt_count, fmt_percent_opt, fmt_quantity, percent_increase, percent_of,
    ByteUnit,
};
use airstat_store::FleetQuery;
use airstat_telemetry::backend::{UsageTotals, WindowId};
use std::collections::BTreeMap;
use std::fmt;

use crate::render::TextTable;

/// One category row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryRow {
    /// The category.
    pub category: AppCategory,
    /// Current-window totals.
    pub totals: UsageTotals,
    /// Distinct clients using any app in the category.
    pub clients: u64,
    /// Year-over-year byte growth in percent.
    pub bytes_increase: Option<f64>,
}

impl CategoryRow {
    /// Download share in percent.
    pub fn download_percent(&self) -> f64 {
        let total = self.totals.total();
        if total == 0 {
            0.0
        } else {
            self.totals.down_bytes as f64 / total as f64 * 100.0
        }
    }

    /// Mean bytes per participating client.
    pub fn bytes_per_client(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.totals.total() as f64 / self.clients as f64
        }
    }

    /// Download-to-upload byte ratio; `None` if uploads are zero.
    pub fn down_up_ratio(&self) -> Option<f64> {
        (self.totals.up_bytes > 0)
            .then(|| self.totals.down_bytes as f64 / self.totals.up_bytes as f64)
    }
}

/// Table 6's reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoriesTable {
    /// Rows sorted by total bytes, descending (the paper's order).
    pub rows: Vec<CategoryRow>,
}

/// Category aggregation of one window: `(totals, client rows)`.
///
/// Client counts are summed over the category's applications, so a client
/// using two apps of one category counts twice — the same convention the
/// paper's backend used (it aggregates distinct `(client, app)` pairs).
fn aggregate<Q: FleetQuery>(
    backend: &Q,
    window: WindowId,
) -> BTreeMap<AppCategory, (UsageTotals, u64)> {
    let mut agg: BTreeMap<AppCategory, (UsageTotals, u64)> = BTreeMap::new();
    for (app, totals, clients) in backend.usage_by_app(window) {
        let slot = agg.entry(app.category()).or_default();
        slot.0.up_bytes += totals.up_bytes;
        slot.0.down_bytes += totals.down_bytes;
        slot.1 += clients;
    }
    agg
}

impl CategoriesTable {
    /// Computes the table with growth against `previous`.
    pub fn compute<Q: FleetQuery>(backend: &Q, current: WindowId, previous: WindowId) -> Self {
        let now = aggregate(backend, current);
        let before = aggregate(backend, previous);
        let mut rows: Vec<CategoryRow> = now
            .into_iter()
            .map(|(category, (totals, clients))| {
                let old = before.get(&category);
                CategoryRow {
                    category,
                    totals,
                    clients,
                    bytes_increase: old.and_then(|(t, _)| {
                        percent_increase(t.total() as f64, totals.total() as f64)
                    }),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.totals.total()));
        CategoriesTable { rows }
    }

    /// Total bytes across all categories.
    pub fn grand_total(&self) -> u64 {
        self.rows.iter().map(|r| r.totals.total()).sum()
    }

    /// One category's row.
    pub fn row(&self, category: AppCategory) -> Option<&CategoryRow> {
        self.rows.iter().find(|r| r.category == category)
    }

    /// Byte share of a category in percent.
    pub fn share_percent(&self, category: AppCategory) -> Option<f64> {
        let row = self.row(category)?;
        percent_of(row.totals.total() as f64, self.grand_total() as f64)
    }

    /// Overall downstream:upstream ratio (the paper: ≈ 4.6×).
    pub fn overall_down_up_ratio(&self) -> Option<f64> {
        let up: u64 = self.rows.iter().map(|r| r.totals.up_bytes).sum();
        let down: u64 = self.rows.iter().map(|r| r.totals.down_bytes).sum();
        (up > 0).then(|| down as f64 / up as f64)
    }
}

impl fmt::Display for CategoriesTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.grand_total() as f64;
        let mut t = TextTable::new([
            "Category",
            "Bytes (% total/% down)",
            "% incr",
            "# clients",
            "MB / client",
        ]);
        for row in &self.rows {
            let share = percent_of(row.totals.total() as f64, total).unwrap_or(0.0);
            t.row([
                row.category.name().to_string(),
                format!(
                    "{} ({:.1}%/{:.0}%)",
                    fmt_bytes(row.totals.total()),
                    share,
                    row.download_percent()
                ),
                fmt_percent_opt(row.bytes_increase),
                fmt_count(row.clients),
                fmt_quantity(bytes_in(row.bytes_per_client() as u64, ByteUnit::Mb)),
            ]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::apps::Application;
    use airstat_classify::mac::MacAddress;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{Report, ReportPayload, UsageRecord};

    const NOW: WindowId = WindowId(1501);
    const BEFORE: WindowId = WindowId(1401);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        let mut put = |window, mac_id: u8, app, up: u64, down: u64| {
            seq += 1;
            b.ingest(
                window,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::Usage(vec![UsageRecord {
                        mac: MacAddress::new([0, 0, 0, 0, 0, mac_id]),
                        app,
                        up_bytes: up,
                        down_bytes: down,
                    }]),
                },
            );
        };
        // Video & music: YouTube + Netflix from two clients.
        put(NOW, 1, Application::Youtube, 10, 190);
        put(NOW, 2, Application::Netflix, 10, 290);
        // Online backup: one heavy uploader.
        put(NOW, 3, Application::Backblaze, 200, 10);
        put(BEFORE, 1, Application::Youtube, 10, 90);
        b
    }

    #[test]
    fn rollup_by_category() {
        let t = CategoriesTable::compute(&backend(), NOW, BEFORE);
        let video = t.row(AppCategory::VideoMusic).unwrap();
        assert_eq!(video.totals.total(), 500);
        assert_eq!(video.clients, 2);
        let backup = t.row(AppCategory::OnlineBackup).unwrap();
        assert_eq!(backup.totals.total(), 210);
        // Upload-dominated: down/up < 1.
        assert!(backup.down_up_ratio().unwrap() < 0.1);
        // Video grew 100 -> 500.
        assert!((video.bytes_increase.unwrap() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_shares() {
        let t = CategoriesTable::compute(&backend(), NOW, BEFORE);
        assert_eq!(t.rows[0].category, AppCategory::VideoMusic);
        let share = t.share_percent(AppCategory::VideoMusic).unwrap();
        assert!((share - 500.0 / 710.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn overall_ratio() {
        let t = CategoriesTable::compute(&backend(), NOW, BEFORE);
        // down = 490, up = 220.
        let r = t.overall_down_up_ratio().unwrap();
        assert!((r - 490.0 / 220.0).abs() < 1e-9);
    }

    #[test]
    fn renders_category_names() {
        let t = CategoriesTable::compute(&backend(), NOW, BEFORE);
        let s = t.to_string();
        assert!(s.contains("Video & music"));
        assert!(s.contains("Online backup"));
    }
}
