//! The paper's tables, one module each.

pub mod capabilities;
pub mod categories;
pub mod industry;
pub mod nearby;
pub mod os_usage;
pub mod top_apps;

pub use capabilities::CapabilitiesTable;
pub use categories::CategoriesTable;
pub use industry::IndustryTable;
pub use nearby::NearbyTable;
pub use os_usage::OsUsageTable;
pub use top_apps::TopAppsTable;
