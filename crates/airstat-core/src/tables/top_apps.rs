//! Table 5: top applications by bytes transferred.

use airstat_classify::apps::Application;
use airstat_stats::summary::{
    bytes_in, fmt_bytes, fmt_count, fmt_percent_opt, fmt_quantity, percent_increase, percent_of,
    ByteUnit,
};
use airstat_store::FleetQuery;
use airstat_telemetry::backend::{UsageTotals, WindowId};
use std::fmt;

use crate::render::TextTable;

/// One application row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppRow {
    /// The application (as classified by the edge ruleset).
    pub app: Application,
    /// Current-window totals.
    pub totals: UsageTotals,
    /// Distinct clients using the app.
    pub clients: u64,
    /// Year-over-year byte growth in percent.
    pub bytes_increase: Option<f64>,
    /// Year-over-year client growth in percent.
    pub clients_increase: Option<f64>,
}

impl AppRow {
    /// Mean bytes per participating client.
    pub fn bytes_per_client(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.totals.total() as f64 / self.clients as f64
        }
    }

    /// Download share in percent.
    pub fn download_percent(&self) -> f64 {
        let total = self.totals.total();
        if total == 0 {
            0.0
        } else {
            self.totals.down_bytes as f64 / total as f64 * 100.0
        }
    }
}

/// Table 5's reproduction: the top `limit` applications by total bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct TopAppsTable {
    /// Rows sorted by total bytes, descending.
    pub rows: Vec<AppRow>,
    /// Total bytes across *all* applications (denominator for shares).
    pub grand_total: u64,
}

impl TopAppsTable {
    /// The paper's cut: top 40.
    pub const PAPER_LIMIT: usize = 40;

    /// Computes the table from `current`, with growth against `previous`.
    pub fn compute<Q: FleetQuery>(
        backend: &Q,
        current: WindowId,
        previous: WindowId,
        limit: usize,
    ) -> Self {
        let now = backend.usage_by_app(current);
        let before = backend.usage_by_app(previous);
        let grand_total: u64 = now.iter().map(|r| r.1.total()).sum();
        let mut rows: Vec<AppRow> = now
            .iter()
            .map(|&(app, totals, clients)| {
                let old = before.iter().find(|r| r.0 == app);
                AppRow {
                    app,
                    totals,
                    clients,
                    bytes_increase: old.and_then(|&(_, t, _)| {
                        percent_increase(t.total() as f64, totals.total() as f64)
                    }),
                    clients_increase: old
                        .and_then(|&(_, _, c)| percent_increase(c as f64, clients as f64)),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.totals.total()));
        rows.truncate(limit);
        TopAppsTable { rows, grand_total }
    }

    /// Looks up one app's row.
    pub fn row(&self, app: Application) -> Option<&AppRow> {
        self.rows.iter().find(|r| r.app == app)
    }

    /// Rank (1-based) of an app, if in the table.
    pub fn rank(&self, app: Application) -> Option<usize> {
        self.rows.iter().position(|r| r.app == app).map(|i| i + 1)
    }

    /// Byte share of an app in percent of the grand total.
    pub fn share_percent(&self, app: Application) -> Option<f64> {
        let row = self.row(app)?;
        percent_of(row.totals.total() as f64, self.grand_total as f64)
    }
}

impl fmt::Display for TopAppsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new([
            "Application",
            "Category",
            "Bytes (% total/% down)",
            "% incr",
            "# clients",
            "% incr",
            "MB / client",
        ]);
        for row in &self.rows {
            let share =
                percent_of(row.totals.total() as f64, self.grand_total as f64).unwrap_or(0.0);
            t.row([
                row.app.name().to_string(),
                row.app.category().name().to_string(),
                format!(
                    "{} ({:.1}%/{:.0}%)",
                    fmt_bytes(row.totals.total()),
                    share,
                    row.download_percent()
                ),
                fmt_percent_opt(row.bytes_increase),
                fmt_count(row.clients),
                fmt_percent_opt(row.clients_increase),
                fmt_quantity(bytes_in(row.bytes_per_client() as u64, ByteUnit::Mb)),
            ]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::mac::MacAddress;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{Report, ReportPayload, UsageRecord};

    const NOW: WindowId = WindowId(1501);
    const BEFORE: WindowId = WindowId(1401);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        let mut put = |window, mac_id: u8, app, bytes: u64| {
            seq += 1;
            b.ingest(
                window,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::Usage(vec![UsageRecord {
                        mac: MacAddress::new([0, 0, 0, 0, 0, mac_id]),
                        app,
                        up_bytes: bytes / 10,
                        down_bytes: bytes - bytes / 10,
                    }]),
                },
            );
        };
        put(BEFORE, 1, Application::Youtube, 100);
        put(NOW, 1, Application::Youtube, 176);
        put(NOW, 2, Application::Youtube, 24);
        put(NOW, 1, Application::Netflix, 300);
        put(NOW, 3, Application::Dropcam, 50);
        b
    }

    #[test]
    fn sorted_by_bytes_and_limited() {
        let t = TopAppsTable::compute(&backend(), NOW, BEFORE, 2);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].app, Application::Netflix);
        assert_eq!(t.rows[1].app, Application::Youtube);
        assert_eq!(t.rank(Application::Netflix), Some(1));
        assert_eq!(t.rank(Application::Dropcam), None, "cut by limit");
        // Grand total still counts everything.
        assert_eq!(t.grand_total, 550);
    }

    #[test]
    fn growth_against_previous_window() {
        let t = TopAppsTable::compute(&backend(), NOW, BEFORE, 10);
        let yt = t.row(Application::Youtube).unwrap();
        // 100 -> 200 bytes: +100%.
        assert!((yt.bytes_increase.unwrap() - 100.0).abs() < 1e-9);
        // 1 -> 2 clients.
        assert!((yt.clients_increase.unwrap() - 100.0).abs() < 1e-9);
        // Netflix is new: no growth cell.
        assert_eq!(t.row(Application::Netflix).unwrap().bytes_increase, None);
    }

    #[test]
    fn shares_and_per_client() {
        let t = TopAppsTable::compute(&backend(), NOW, BEFORE, 10);
        let share = t.share_percent(Application::Netflix).unwrap();
        assert!((share - 300.0 / 550.0 * 100.0).abs() < 1e-9);
        let yt = t.row(Application::Youtube).unwrap();
        assert!((yt.bytes_per_client() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn renders_names_and_categories() {
        let t = TopAppsTable::compute(&backend(), NOW, BEFORE, 10);
        let s = t.to_string();
        assert!(s.contains("Netflix"));
        assert!(s.contains("Video & music"));
        assert!(s.contains("Dropcam"));
        assert!(s.contains("VoIP & video conferencing"));
    }
}
