//! Table 2: network deployment types for the usage panel.

use airstat_sim::industry::{Industry, IndustryMix};
use airstat_stats::summary::fmt_count;
use airstat_stats::SeedTree;
use std::fmt;

use crate::render::TextTable;

/// Table 2's reproduction: networks per industry vertical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndustryTable {
    /// `(vertical, networks)` in Table 2 order.
    pub rows: Vec<(Industry, u32)>,
}

impl IndustryTable {
    /// Samples a usage panel of `networks` networks and counts verticals.
    pub fn compute(networks: u32, seed: &SeedTree) -> Self {
        let mix = IndustryMix::paper();
        let mut rng = seed.child("table2").rng();
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..networks {
            *counts.entry(mix.sample(&mut rng)).or_insert(0u32) += 1;
        }
        IndustryTable {
            rows: Industry::ALL
                .iter()
                .map(|&i| (i, counts.get(&i).copied().unwrap_or(0)))
                .collect(),
        }
    }

    /// Total networks across all verticals.
    pub fn total(&self) -> u32 {
        self.rows.iter().map(|r| r.1).sum()
    }

    /// True when no single vertical holds a majority — the paper's point
    /// that the panel "is not dominated by one particular industry".
    pub fn no_dominant_vertical(&self) -> bool {
        let total = self.total();
        total > 0 && self.rows.iter().all(|&(_, c)| c * 2 < total)
    }
}

impl fmt::Display for IndustryTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(["Industry", "# networks"]);
        for &(industry, count) in &self.rows {
            t.row([industry.name().to_string(), fmt_count(u64::from(count))]);
        }
        t.row(["Total".to_string(), fmt_count(u64::from(self.total()))]);
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_tracks_table2() {
        let t = IndustryTable::compute(20_667, &SeedTree::new(1));
        assert_eq!(t.total(), 20_667);
        let get = |i: Industry| t.rows.iter().find(|r| r.0 == i).unwrap().1;
        // Education ≈ 4,075 (19.7%), Retail ≈ 2,355.
        assert!((f64::from(get(Industry::Education)) - 4_075.0).abs() < 250.0);
        assert!((f64::from(get(Industry::Retail)) - 2_355.0).abs() < 200.0);
        assert!(t.no_dominant_vertical());
    }

    #[test]
    fn deterministic() {
        let a = IndustryTable::compute(500, &SeedTree::new(2));
        let b = IndustryTable::compute(500, &SeedTree::new(2));
        assert_eq!(a, b);
    }

    #[test]
    fn renders_all_verticals() {
        let t = IndustryTable::compute(100, &SeedTree::new(3));
        let s = t.to_string();
        assert!(s.contains("Education"));
        assert!(s.contains("VAR/System Integrator"));
        assert!(s.contains("Total"));
    }
}
