//! Table 7: growth in nearby networks over six months.

use airstat_rf::band::Band;
use airstat_stats::summary::fmt_count;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::TextTable;

/// One band × epoch cell of Table 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearbyCell {
    /// Total nearby non-fleet networks summed over the panel.
    pub total_networks: u64,
    /// Mean networks per reporting AP.
    pub per_ap: f64,
    /// Total personal hotspots among them.
    pub hotspots: u64,
    /// Number of APs that reported a census.
    pub reporting_aps: usize,
}

/// Table 7's reproduction: both bands, both epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearbyTable {
    /// 2.4 GHz now (January 2015).
    pub now_2_4: NearbyCell,
    /// 2.4 GHz six months ago (July 2014).
    pub before_2_4: NearbyCell,
    /// 5 GHz now.
    pub now_5: NearbyCell,
    /// 5 GHz six months ago.
    pub before_5: NearbyCell,
}

fn cell<Q: FleetQuery>(backend: &Q, window: WindowId, band: Band) -> NearbyCell {
    let (total_networks, per_ap, hotspots) = backend.nearby_summary(window, band);
    NearbyCell {
        total_networks,
        per_ap,
        hotspots,
        reporting_aps: backend.census_device_count(window),
    }
}

impl NearbyTable {
    /// Computes all four cells.
    pub fn compute<Q: FleetQuery>(backend: &Q, before: WindowId, now: WindowId) -> Self {
        NearbyTable {
            now_2_4: cell(backend, now, Band::Ghz2_4),
            before_2_4: cell(backend, before, Band::Ghz2_4),
            now_5: cell(backend, now, Band::Ghz5),
            before_5: cell(backend, before, Band::Ghz5),
        }
    }

    /// Growth factor of per-AP 2.4 GHz networks (paper: 28.6 → 55.5 ≈ 1.94×).
    pub fn growth_factor_2_4(&self) -> Option<f64> {
        (self.before_2_4.per_ap > 0.0).then(|| self.now_2_4.per_ap / self.before_2_4.per_ap)
    }

    /// Hotspot share of 2.4 GHz networks now (paper: ~20%).
    pub fn hotspot_fraction_2_4_now(&self) -> Option<f64> {
        (self.now_2_4.total_networks > 0)
            .then(|| self.now_2_4.hotspots as f64 / self.now_2_4.total_networks as f64)
    }
}

impl fmt::Display for NearbyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(["", "Networks", "Networks per AP", "Hotspots"]);
        let mut push = |label: &str, c: &NearbyCell| {
            t.row([
                label.to_string(),
                fmt_count(c.total_networks),
                format!("{:.2}", c.per_ap),
                fmt_count(c.hotspots),
            ]);
        };
        push("2.4 GHz (now)", &self.now_2_4);
        push("2.4 GHz (six months ago)", &self.before_2_4);
        push("5 GHz (now)", &self.now_5);
        push("5 GHz (six months ago)", &self.before_5);
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{NeighborRecord, Report, ReportPayload};

    const NOW: WindowId = WindowId(1501);
    const BEFORE: WindowId = WindowId(1407);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let ch1 = Channel::new(Band::Ghz2_4, 1).unwrap();
        let ch36 = Channel::new(Band::Ghz5, 36).unwrap();
        for (window, device, n24, hs, n5) in [
            (BEFORE, 1u64, 20u32, 2u32, 2u32),
            (BEFORE, 2, 30, 3, 3),
            (NOW, 1, 50, 10, 4),
            (NOW, 2, 60, 12, 3),
        ] {
            b.ingest(
                window,
                &Report {
                    device,
                    seq: u64::from(window.0),
                    timestamp_s: 0,
                    payload: ReportPayload::Neighbors(vec![
                        NeighborRecord {
                            channel: ch1,
                            networks: n24,
                            hotspots: hs,
                        },
                        NeighborRecord {
                            channel: ch36,
                            networks: n5,
                            hotspots: 0,
                        },
                    ]),
                },
            );
        }
        b
    }

    #[test]
    fn cells_and_growth() {
        let t = NearbyTable::compute(&backend(), BEFORE, NOW);
        assert_eq!(t.before_2_4.total_networks, 50);
        assert_eq!(t.now_2_4.total_networks, 110);
        assert!((t.before_2_4.per_ap - 25.0).abs() < 1e-9);
        assert!((t.now_2_4.per_ap - 55.0).abs() < 1e-9);
        assert!((t.growth_factor_2_4().unwrap() - 2.2).abs() < 1e-9);
        assert_eq!(t.now_5.total_networks, 7);
        let hs = t.hotspot_fraction_2_4_now().unwrap();
        assert!((hs - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_backend_is_zeroes() {
        let t = NearbyTable::compute(&Backend::new(), BEFORE, NOW);
        assert_eq!(t.now_2_4.total_networks, 0);
        assert_eq!(t.growth_factor_2_4(), None);
        assert_eq!(t.hotspot_fraction_2_4_now(), None);
    }

    #[test]
    fn renders_paper_rows() {
        let t = NearbyTable::compute(&backend(), BEFORE, NOW);
        let s = t.to_string();
        assert!(s.contains("2.4 GHz (now)"));
        assert!(s.contains("5 GHz (six months ago)"));
        assert!(s.contains("Networks per AP"));
    }
}
