//! Table 4: client capabilities advertised at association, year over year.

use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::TextTable;

/// Capability penetration fractions for one measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CapabilityShares {
    /// Fraction advertising 802.11g (effectively everyone).
    pub g: f64,
    /// Fraction advertising 802.11n.
    pub n: f64,
    /// Fraction with 5 GHz support.
    pub dual_band: f64,
    /// Fraction supporting 40 MHz channels.
    pub forty_mhz: f64,
    /// Fraction advertising 802.11ac.
    pub ac: f64,
    /// Fraction with exactly two spatial streams.
    pub two_streams: f64,
    /// Fraction with exactly three spatial streams.
    pub three_streams: f64,
    /// Fraction with exactly four spatial streams.
    pub four_streams: f64,
}

impl CapabilityShares {
    /// Computes shares over all clients in a window.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId) -> Self {
        let mut total = 0u64;
        let mut shares = CapabilityShares::default();
        for (_, identity) in backend.clients(window) {
            total += 1;
            let caps = identity.caps;
            if caps.supports_g() {
                shares.g += 1.0;
            }
            if caps.supports_n() {
                shares.n += 1.0;
            }
            if caps.dual_band() {
                shares.dual_band += 1.0;
            }
            if caps.forty_mhz() {
                shares.forty_mhz += 1.0;
            }
            if caps.supports_ac() {
                shares.ac += 1.0;
            }
            match caps.streams() {
                2 => shares.two_streams += 1.0,
                3 => shares.three_streams += 1.0,
                4 => shares.four_streams += 1.0,
                _ => {}
            }
        }
        if total > 0 {
            let n = total as f64;
            shares.g /= n;
            shares.n /= n;
            shares.dual_band /= n;
            shares.forty_mhz /= n;
            shares.ac /= n;
            shares.two_streams /= n;
            shares.three_streams /= n;
            shares.four_streams /= n;
        }
        shares
    }
}

/// Table 4's reproduction: two windows side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapabilitiesTable {
    /// The earlier window's shares (January 2014).
    pub before: CapabilityShares,
    /// The later window's shares (January 2015).
    pub after: CapabilityShares,
}

impl CapabilitiesTable {
    /// Computes both columns.
    pub fn compute<Q: FleetQuery>(backend: &Q, before: WindowId, after: WindowId) -> Self {
        CapabilitiesTable {
            before: CapabilityShares::compute(backend, before),
            after: CapabilityShares::compute(backend, after),
        }
    }

    /// The row list in Table 4 order: `(label, before, after)`.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        vec![
            ("802.11g", self.before.g, self.after.g),
            ("802.11n", self.before.n, self.after.n),
            ("5 GHz", self.before.dual_band, self.after.dual_band),
            (
                "40 MHz channels",
                self.before.forty_mhz,
                self.after.forty_mhz,
            ),
            ("802.11ac", self.before.ac, self.after.ac),
            (
                "Two streams",
                self.before.two_streams,
                self.after.two_streams,
            ),
            (
                "Three streams",
                self.before.three_streams,
                self.after.three_streams,
            ),
            (
                "Four streams",
                self.before.four_streams,
                self.after.four_streams,
            ),
        ]
    }
}

impl fmt::Display for CapabilitiesTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(["", "Jan. 2014", "Jan. 2015"]);
        for (label, before, after) in self.rows() {
            t.row([
                label.to_string(),
                format!("{:.1}%", before * 100.0),
                format!("{:.1}%", after * 100.0),
            ]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::device::OsFamily;
    use airstat_classify::mac::MacAddress;
    use airstat_rf::band::Band;
    use airstat_rf::phy::{Capabilities, Generation};
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ClientInfoRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend_with(caps: Vec<Capabilities>) -> Backend {
        let mut b = Backend::new();
        let records: Vec<ClientInfoRecord> = caps
            .into_iter()
            .enumerate()
            .map(|(i, caps)| ClientInfoRecord {
                mac: MacAddress::new([0, 0, 0, 0, 0, i as u8]),
                os: OsFamily::Windows,
                caps,
                band: Band::Ghz2_4,
                rssi_dbm: -60.0,
            })
            .collect();
        b.ingest(
            W,
            &Report {
                device: 1,
                seq: 0,
                timestamp_s: 0,
                payload: ReportPayload::ClientInfo(records),
            },
        );
        b
    }

    #[test]
    fn shares_counted_exactly() {
        let b = backend_with(vec![
            Capabilities::new(Generation::Ac, true, true, 2),
            Capabilities::new(Generation::N, false, false, 1),
            Capabilities::new(Generation::N, true, true, 3),
            Capabilities::new(Generation::G, false, false, 1),
        ]);
        let shares = CapabilityShares::compute(&b, W);
        assert!((shares.g - 1.0).abs() < 1e-12);
        assert!((shares.n - 0.75).abs() < 1e-12);
        assert!((shares.ac - 0.25).abs() < 1e-12);
        assert!((shares.dual_band - 0.5).abs() < 1e-12);
        assert!((shares.forty_mhz - 0.5).abs() < 1e-12);
        assert!((shares.two_streams - 0.25).abs() < 1e-12);
        assert!((shares.three_streams - 0.25).abs() < 1e-12);
        assert_eq!(shares.four_streams, 0.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let b = Backend::new();
        let shares = CapabilityShares::compute(&b, W);
        assert_eq!(shares, CapabilityShares::default());
    }

    #[test]
    fn table_rows_in_paper_order() {
        let b = backend_with(vec![Capabilities::new(Generation::N, true, true, 2)]);
        let t = CapabilitiesTable::compute(&b, WindowId(1401), W);
        let rows = t.rows();
        assert_eq!(rows[0].0, "802.11g");
        assert_eq!(rows[4].0, "802.11ac");
        assert_eq!(rows.len(), 8);
        let s = t.to_string();
        assert!(s.contains("40 MHz channels"));
        assert!(s.contains("Jan. 2015"));
    }
}
