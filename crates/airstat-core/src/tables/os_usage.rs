//! Table 3: usage by operating system, with year-over-year growth.

use airstat_classify::device::OsFamily;
use airstat_stats::summary::{
    bytes_in, fmt_count, fmt_percent_opt, fmt_quantity, percent_increase, percent_of, ByteUnit,
};
use airstat_store::FleetQuery;
use airstat_telemetry::backend::{UsageTotals, WindowId};
use std::fmt;

use crate::render::TextTable;

/// One OS row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsRow {
    /// The operating system.
    pub os: OsFamily,
    /// 2015-window totals.
    pub totals: UsageTotals,
    /// Distinct clients in the 2015 window.
    pub clients: u64,
    /// Year-over-year byte growth (percent), if 2014 data exists.
    pub bytes_increase: Option<f64>,
    /// Year-over-year client growth (percent).
    pub clients_increase: Option<f64>,
    /// Year-over-year MB/client growth (percent).
    pub per_client_increase: Option<f64>,
}

impl OsRow {
    /// Mean bytes per client.
    pub fn bytes_per_client(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.totals.total() as f64 / self.clients as f64
        }
    }

    /// Download share of this OS's traffic, in percent.
    pub fn download_percent(&self) -> f64 {
        let total = self.totals.total();
        if total == 0 {
            0.0
        } else {
            self.totals.down_bytes as f64 / total as f64 * 100.0
        }
    }
}

/// Table 3's reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct OsUsageTable {
    /// Rows sorted by 2015 total bytes, descending (the paper's order).
    pub rows: Vec<OsRow>,
    /// The all-OS totals row.
    pub all: OsRow,
}

impl OsUsageTable {
    /// Computes the table from `current` (2015) with growth against
    /// `previous` (2014).
    pub fn compute<Q: FleetQuery>(backend: &Q, current: WindowId, previous: WindowId) -> Self {
        let now = backend.usage_by_os(current);
        let before = backend.usage_by_os(previous);
        let prior = |os: OsFamily| before.iter().find(|r| r.0 == os);
        let mut rows: Vec<OsRow> = now
            .iter()
            .map(|&(os, totals, clients)| {
                let old = prior(os);
                let per_client_now = if clients > 0 {
                    totals.total() as f64 / clients as f64
                } else {
                    0.0
                };
                let per_client_old = old.map(|&(_, t, c)| {
                    if c > 0 {
                        t.total() as f64 / c as f64
                    } else {
                        0.0
                    }
                });
                OsRow {
                    os,
                    totals,
                    clients,
                    bytes_increase: old.and_then(|&(_, t, _)| {
                        percent_increase(t.total() as f64, totals.total() as f64)
                    }),
                    clients_increase: old
                        .and_then(|&(_, _, c)| percent_increase(c as f64, clients as f64)),
                    per_client_increase: per_client_old
                        .and_then(|pc| percent_increase(pc, per_client_now)),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.totals.total()));

        let sum = |rows: &[(OsFamily, UsageTotals, u64)]| {
            rows.iter()
                .fold((UsageTotals::default(), 0u64), |mut acc, &(_, t, c)| {
                    acc.0.up_bytes += t.up_bytes;
                    acc.0.down_bytes += t.down_bytes;
                    acc.1 += c;
                    acc
                })
        };
        let (now_tot, now_clients) = sum(&now);
        let (old_tot, old_clients) = sum(&before);
        let per_client_now = if now_clients > 0 {
            now_tot.total() as f64 / now_clients as f64
        } else {
            0.0
        };
        let per_client_old = if old_clients > 0 {
            old_tot.total() as f64 / old_clients as f64
        } else {
            0.0
        };
        let all = OsRow {
            os: OsFamily::Unknown, // placeholder, not displayed as a name
            totals: now_tot,
            clients: now_clients,
            bytes_increase: percent_increase(old_tot.total() as f64, now_tot.total() as f64),
            clients_increase: percent_increase(old_clients as f64, now_clients as f64),
            per_client_increase: percent_increase(per_client_old, per_client_now),
        };
        OsUsageTable { rows, all }
    }

    /// The row for one OS, if it appears.
    pub fn row(&self, os: OsFamily) -> Option<&OsRow> {
        self.rows.iter().find(|r| r.os == os)
    }

    /// Share of total bytes for an OS, in percent.
    pub fn share_percent(&self, os: OsFamily) -> Option<f64> {
        let row = self.row(os)?;
        percent_of(row.totals.total() as f64, self.all.totals.total() as f64)
    }
}

impl fmt::Display for OsUsageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new([
            "OS",
            "Bytes (% total/% download)",
            "% increase",
            "# clients",
            "% increase",
            "MB / client",
            "% increase",
        ]);
        let total = self.all.totals.total() as f64;
        let mut push = |label: &str, row: &OsRow| {
            let share = percent_of(row.totals.total() as f64, total).unwrap_or(0.0);
            t.row([
                label.to_string(),
                format!(
                    "{} ({:.0}%/{:.0}%)",
                    airstat_stats::summary::fmt_bytes(row.totals.total()),
                    share,
                    row.download_percent()
                ),
                fmt_percent_opt(row.bytes_increase),
                fmt_count(row.clients),
                fmt_percent_opt(row.clients_increase),
                fmt_quantity(bytes_in(row.bytes_per_client() as u64, ByteUnit::Mb)),
                fmt_percent_opt(row.per_client_increase),
            ]);
        };
        for row in &self.rows {
            push(row.os.name(), row);
        }
        push("All", &self.all);
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::apps::Application;
    use airstat_classify::mac::MacAddress;
    use airstat_rf::band::Band;
    use airstat_rf::phy::{Capabilities, Generation};
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ClientInfoRecord, Report, ReportPayload, UsageRecord};

    const NOW: WindowId = WindowId(1501);
    const BEFORE: WindowId = WindowId(1401);

    fn mac(n: u8) -> MacAddress {
        MacAddress::new([0, 0, 0, 0, 0, n])
    }

    fn seed_backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0u64;
        let mut put = |window, mac_id: u8, os, up, down| {
            seq += 1;
            b.ingest(
                window,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::Usage(vec![UsageRecord {
                        mac: mac(mac_id),
                        app: Application::MiscWeb,
                        up_bytes: up,
                        down_bytes: down,
                    }]),
                },
            );
            seq += 1;
            b.ingest(
                window,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::ClientInfo(vec![ClientInfoRecord {
                        mac: mac(mac_id),
                        os,
                        caps: Capabilities::new(Generation::N, true, false, 1),
                        band: Band::Ghz2_4,
                        rssi_dbm: -60.0,
                    }]),
                },
            );
        };
        // 2014: one Windows client with 100 bytes.
        put(BEFORE, 1, OsFamily::Windows, 20, 80);
        // 2015: two Windows clients with 300 bytes total, one iOS with 50.
        put(NOW, 1, OsFamily::Windows, 40, 160);
        put(NOW, 2, OsFamily::Windows, 20, 80);
        put(NOW, 3, OsFamily::AppleIos, 5, 45);
        b
    }

    #[test]
    fn rows_sorted_and_growth_computed() {
        let t = OsUsageTable::compute(&seed_backend(), NOW, BEFORE);
        assert_eq!(t.rows[0].os, OsFamily::Windows, "largest first");
        let win = t.row(OsFamily::Windows).unwrap();
        assert_eq!(win.totals.total(), 300);
        assert_eq!(win.clients, 2);
        // 100 -> 300 bytes: +200%.
        assert!((win.bytes_increase.unwrap() - 200.0).abs() < 1e-9);
        // 1 -> 2 clients: +100%.
        assert!((win.clients_increase.unwrap() - 100.0).abs() < 1e-9);
        // 100/1 -> 150/2 MB per client: +50%.
        assert!((win.per_client_increase.unwrap() - 50.0).abs() < 1e-9);
        // iOS is new: no growth numbers.
        let ios = t.row(OsFamily::AppleIos).unwrap();
        assert_eq!(ios.bytes_increase, None);
    }

    #[test]
    fn all_row_sums() {
        let t = OsUsageTable::compute(&seed_backend(), NOW, BEFORE);
        assert_eq!(t.all.totals.total(), 350);
        assert_eq!(t.all.clients, 3);
        // Total growth 100 -> 350 = +250%.
        assert!((t.all.bytes_increase.unwrap() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn shares_and_download() {
        let t = OsUsageTable::compute(&seed_backend(), NOW, BEFORE);
        let share = t.share_percent(OsFamily::Windows).unwrap();
        assert!((share - 300.0 / 350.0 * 100.0).abs() < 1e-9);
        let win = t.row(OsFamily::Windows).unwrap();
        assert!((win.download_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn renders_paper_columns() {
        let t = OsUsageTable::compute(&seed_backend(), NOW, BEFORE);
        let s = t.to_string();
        assert!(s.contains("OS"));
        assert!(s.contains("Windows"));
        assert!(s.contains("Apple iOS"));
        assert!(s.contains("All"));
        assert!(s.contains("% download"));
    }
}
