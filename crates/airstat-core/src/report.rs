//! The full paper reproduction in one object.
//!
//! [`PaperReport::from_simulation`] computes every table and figure from a
//! completed fleet run; its `Display` prints the whole reproduction in
//! paper order, and the accessors let benches and tests assert on the
//! qualitative acceptance criteria from DESIGN.md.

use airstat_rf::band::Band;
use airstat_sim::config::{FleetConfig, WINDOW_JAN_2014, WINDOW_JAN_2015, WINDOW_JUL_2014};
use airstat_sim::engine::{DAY_SAMPLE_HOUR, NIGHT_SAMPLE_HOUR};
use airstat_sim::SimulationOutput;
use airstat_stats::SeedTree;
use airstat_store::FleetQuery;
use std::fmt;

use crate::figures::{
    ChannelCensusFigure, DayNightFigure, DecodableFigure, DeliveryFigure, LinkTimeseriesFigure,
    RssiFigure, SpectrumFigure, UtilVsApsFigure, UtilizationFigure,
};
use crate::tables::{
    CapabilitiesTable, CategoriesTable, IndustryTable, NearbyTable, OsUsageTable, TopAppsTable,
};

/// Every table and figure of the paper, computed from one simulation.
#[derive(Debug, Clone)]
pub struct PaperReport {
    /// Table 2: industry mix of the usage panel.
    pub table2: IndustryTable,
    /// Table 3: usage by OS with YoY growth.
    pub table3: OsUsageTable,
    /// Table 4: client capabilities, 2014 vs 2015.
    pub table4: CapabilitiesTable,
    /// Table 5: top 40 applications.
    pub table5: TopAppsTable,
    /// Table 6: usage by category.
    pub table6: CategoriesTable,
    /// Table 7: nearby-network growth over six months.
    pub table7: NearbyTable,
    /// Figure 1: client RSSI distribution.
    pub figure1: RssiFigure,
    /// Figure 2: nearby networks by channel.
    pub figure2: ChannelCensusFigure,
    /// Figure 3: delivery-ratio CDFs.
    pub figure3: DeliveryFigure,
    /// Figure 4: 2.4 GHz sample link series.
    pub figure4: LinkTimeseriesFigure,
    /// Figure 5: 5 GHz sample link series.
    pub figure5: LinkTimeseriesFigure,
    /// Figure 6: MR16 serving-channel utilization.
    pub figure6: UtilizationFigure,
    /// Figure 7: utilization vs APs, 2.4 GHz.
    pub figure7: UtilVsApsFigure,
    /// Figure 8: utilization vs APs, 5 GHz.
    pub figure8: UtilVsApsFigure,
    /// Figure 9a: day/night utilization, 2.4 GHz.
    pub figure9_2_4: DayNightFigure,
    /// Figure 9b: day/night utilization, 5 GHz.
    pub figure9_5: DayNightFigure,
    /// Figure 10: decodable-802.11 share of busy time.
    pub figure10: DecodableFigure,
    /// Figure 11: spectrum waterfalls.
    pub figure11: SpectrumFigure,
}

impl PaperReport {
    /// Computes the whole report from a finished simulation.
    ///
    /// Opens a cached query engine over the run's sealed store (so the
    /// repeated client/usage lookups below hit the store's result cache)
    /// and delegates to [`PaperReport::from_query`].
    pub fn from_simulation(output: &SimulationOutput, config: &FleetConfig) -> Self {
        PaperReport::from_query(&output.query(), config)
    }

    /// Computes the whole report from any [`FleetQuery`] source — the
    /// sharded store's query engine or the legacy backend. Identical
    /// data yields an identical report either way (differential-tested
    /// in `tests/store_equivalence.rs`).
    pub fn from_query<Q: FleetQuery>(backend: &Q, config: &FleetConfig) -> Self {
        let seed = SeedTree::new(config.seed);
        PaperReport {
            table2: IndustryTable::compute(config.usage_networks(), &seed),
            table3: OsUsageTable::compute(backend, WINDOW_JAN_2015, WINDOW_JAN_2014),
            table4: CapabilitiesTable::compute(backend, WINDOW_JAN_2014, WINDOW_JAN_2015),
            table5: TopAppsTable::compute(
                backend,
                WINDOW_JAN_2015,
                WINDOW_JAN_2014,
                TopAppsTable::PAPER_LIMIT,
            ),
            table6: CategoriesTable::compute(backend, WINDOW_JAN_2015, WINDOW_JAN_2014),
            table7: NearbyTable::compute(backend, WINDOW_JUL_2014, WINDOW_JAN_2015),
            figure1: RssiFigure::compute_snapshot(
                backend,
                WINDOW_JAN_2015,
                // One evening's connected clients: 309k of the week's
                // 5.58M unique devices (§3.1) ≈ 5.5%.
                (backend.client_count(WINDOW_JAN_2015) as f64 * 0.055).ceil() as usize,
                &seed,
            ),
            figure2: ChannelCensusFigure::compute(backend, WINDOW_JAN_2015),
            figure3: DeliveryFigure::compute(backend, WINDOW_JUL_2014, WINDOW_JAN_2015),
            figure4: LinkTimeseriesFigure::compute(backend, WINDOW_JAN_2015, Band::Ghz2_4, 2),
            figure5: LinkTimeseriesFigure::compute(backend, WINDOW_JAN_2015, Band::Ghz5, 2),
            figure6: UtilizationFigure::compute(backend, WINDOW_JAN_2015),
            figure7: UtilVsApsFigure::compute(backend, WINDOW_JAN_2015, Band::Ghz2_4),
            figure8: UtilVsApsFigure::compute(backend, WINDOW_JAN_2015, Band::Ghz5),
            figure9_2_4: DayNightFigure::compute(
                backend,
                WINDOW_JAN_2015,
                Band::Ghz2_4,
                DAY_SAMPLE_HOUR,
                NIGHT_SAMPLE_HOUR,
            ),
            figure9_5: DayNightFigure::compute(
                backend,
                WINDOW_JAN_2015,
                Band::Ghz5,
                DAY_SAMPLE_HOUR,
                NIGHT_SAMPLE_HOUR,
            ),
            figure10: DecodableFigure::compute(backend, WINDOW_JAN_2015),
            figure11: SpectrumFigure::compute(&seed.child("figure11"), 120),
        }
    }
}

impl fmt::Display for PaperReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let section = |f: &mut fmt::Formatter<'_>, title: &str| writeln!(f, "\n=== {title} ===");
        section(f, "Table 2: Network deployment types")?;
        write!(f, "{}", self.table2)?;
        section(f, "Table 3: Usage by operating system")?;
        write!(f, "{}", self.table3)?;
        section(f, "Table 4: Client capabilities")?;
        write!(f, "{}", self.table4)?;
        section(f, "Table 5: Top applications by usage")?;
        write!(f, "{}", self.table5)?;
        section(f, "Table 6: Usage by application category")?;
        write!(f, "{}", self.table6)?;
        section(f, "Table 7: Nearby networks over six months")?;
        write!(f, "{}", self.table7)?;
        section(f, "Figure 1: Client signal strength (RSSI)")?;
        write!(f, "{}", self.figure1)?;
        section(f, "Figure 2: Nearby networks by channel")?;
        write!(f, "{}", self.figure2)?;
        section(f, "Figure 3: Link delivery ratios")?;
        write!(f, "{}", self.figure3)?;
        section(f, "Figure 4: 2.4 GHz link delivery over a week")?;
        write!(f, "{}", self.figure4)?;
        section(f, "Figure 5: 5 GHz link delivery over a week")?;
        write!(f, "{}", self.figure5)?;
        section(f, "Figure 6: Channel utilization (MR16 serving radio)")?;
        write!(f, "{}", self.figure6)?;
        section(f, "Figure 7: Utilization vs nearby APs, 2.4 GHz")?;
        write!(f, "{}", self.figure7)?;
        section(f, "Figure 8: Utilization vs nearby APs, 5 GHz")?;
        write!(f, "{}", self.figure8)?;
        section(f, "Figure 9: Day vs night utilization (MR18 scanner)")?;
        write!(f, "{}", self.figure9_2_4)?;
        write!(f, "{}", self.figure9_5)?;
        section(f, "Figure 10: Decodable 802.11 share of busy time")?;
        write!(f, "{}", self.figure10)?;
        section(f, "Figure 11: Spectrum analysis (USRP)")?;
        write!(f, "{}", self.figure11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_sim::FleetSimulation;

    #[test]
    fn full_report_from_smoke_run() {
        let config = FleetConfig::smoke();
        let output = FleetSimulation::new(config.clone()).run();
        let report = PaperReport::from_simulation(&output, &config);
        // Every artifact produced something.
        assert!(report.table2.total() > 0);
        assert!(!report.table3.rows.is_empty());
        assert!(!report.table5.rows.is_empty());
        assert!(!report.table6.rows.is_empty());
        assert!(report.table7.now_2_4.total_networks > 0);
        assert!(!report.figure1.rssi_2_4.is_empty());
        assert!(!report.figure3.now_2_4.is_empty());
        assert!(!report.figure6.util_2_4.is_empty());
        assert!(!report.figure7.points.is_empty());
        // The rendered report mentions every section.
        let s = report.to_string();
        for needle in [
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
        ] {
            assert!(s.contains(needle), "missing section {needle}");
        }
    }
}
