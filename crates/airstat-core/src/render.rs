//! Plain-text rendering: tables and ASCII CDF/scatter plots.
//!
//! Every table and figure in this crate renders through these helpers so
//! the whole report shares one visual language (and the benches can
//! regression-diff rendered output byte-for-byte).

use airstat_stats::Ecdf;
use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Shorter rows are padded with empty cells.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric && i > 0 {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            write_row(&mut out, &self.header);
            let rule: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
            out.push_str(&"-".repeat(rule));
            out.push('\n');
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Renders one or more CDFs as an ASCII chart.
///
/// `series` pairs a label with an ECDF; the chart is `width x height`
/// characters with the x-axis spanning `[x_lo, x_hi]`.
pub fn render_cdfs(
    series: &[(&str, &Ecdf)],
    x_lo: f64,
    x_hi: f64,
    width: usize,
    height: usize,
) -> String {
    assert!(
        x_hi > x_lo && width >= 10 && height >= 4,
        "degenerate chart"
    );
    const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ecdf)) in series.iter().enumerate() {
        if ecdf.is_empty() {
            continue;
        }
        let mark = MARKS[si % MARKS.len()];
        for (col, cell) in (0..width).zip(0..width) {
            let x = x_lo + (x_hi - x_lo) * col as f64 / (width - 1) as f64;
            let f = ecdf.fraction_at_or_below(x);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            let row = row.min(height - 1);
            grid[row][cell] = mark;
        }
    }
    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let _ = write!(out, "{frac:4.2} |");
        out.extend(line.iter());
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    let _ = writeln!(out, "     +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "      {:<.3}{}{:>.3}",
        x_lo,
        " ".repeat(width.saturating_sub(12)),
        x_hi
    );
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "      {} {}", MARKS[si % MARKS.len()], label);
    }
    out
}

/// Renders a horizontal bar chart of labelled counts (Figure 2 style).
pub fn render_bars<L: std::fmt::Display>(bars: &[(L, u64)], width: usize) -> String {
    let max = bars.iter().map(|b| b.1).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (label, count) in bars {
        let len = (count * width as u64 / max) as usize;
        let _ = writeln!(out, "{label:>8} |{} {count}", "#".repeat(len));
    }
    out
}

/// Renders a sparse y-vs-x scatter as an ASCII plot.
pub fn render_scatter(
    points: &[(f64, f64)],
    width: usize,
    height: usize,
    x_hi: f64,
    y_hi: f64,
) -> String {
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        if !(x.is_finite() && y.is_finite()) {
            continue;
        }
        let col = ((x / x_hi) * (width - 1) as f64).round() as isize;
        let row = ((1.0 - (y / y_hi).min(1.0)) * (height - 1) as f64).round() as isize;
        if (0..width as isize).contains(&col) && (0..height as isize).contains(&row) {
            grid[row as usize][col as usize] = '.';
        }
    }
    let mut out = String::new();
    for line in &grid {
        let mut l: String = line.iter().collect();
        while l.ends_with(' ') {
            l.pop();
        }
        out.push('|');
        out.push_str(&l);
        out.push('\n');
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["OS", "TB", "% increase"]);
        t.row(["Windows", "589", "43%"]);
        t.row(["Apple iOS", "545", "92%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("OS"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("Windows"));
        // Numeric columns right-aligned: both TB values end at same col.
        let pos_589 = lines[2].find("589").unwrap();
        let pos_545 = lines[3].find("545").unwrap();
        assert_eq!(pos_589, pos_545);
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.render();
        assert!(s.contains('a'));
    }

    #[test]
    fn cdf_chart_dimensions() {
        let e = Ecdf::new((0..100).map(f64::from));
        let s = render_cdfs(&[("test", &e)], 0.0, 100.0, 40, 10);
        let data_lines = s.lines().filter(|l| l.contains('|')).count();
        assert_eq!(data_lines, 10);
        assert!(s.contains("* test"));
    }

    #[test]
    fn cdf_chart_multiple_series_markers() {
        let a = Ecdf::new([1.0, 2.0, 3.0]);
        let b = Ecdf::new([4.0, 5.0, 6.0]);
        let s = render_cdfs(&[("a", &a), ("b", &b)], 0.0, 10.0, 30, 8);
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    #[should_panic(expected = "degenerate chart")]
    fn cdf_chart_rejects_bad_range() {
        let e = Ecdf::new([1.0]);
        let _ = render_cdfs(&[("x", &e)], 5.0, 5.0, 40, 10);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = render_bars(&[("ch1", 100u64), ("ch6", 50), ("ch11", 0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 20);
        assert_eq!(lines[1].matches('#').count(), 10);
        assert_eq!(lines[2].matches('#').count(), 0);
    }

    #[test]
    fn scatter_plots_points() {
        let s = render_scatter(&[(0.5, 0.5), (1.0, 1.0)], 20, 10, 1.0, 1.0);
        assert!(s.matches('.').count() >= 2);
    }
}
