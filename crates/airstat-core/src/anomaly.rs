//! Usage-anomaly detection: finding §6.2's update surges.
//!
//! "Software updates from Apple and Microsoft would drive large downloads
//! across large numbers of clients, sometimes causing sudden increases
//! totaling tens or hundreds of gigabytes." Operators could not
//! anticipate them; a backend that watches per-day usage series can at
//! least *detect* them. The detector here is deliberately robust-simple:
//! deviations are scored against the median and MAD of the series after
//! removing a weekday-shape baseline, so the ordinary weekend cliff never
//! fires it.

/// One detected usage spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Index of the spiking sample (day).
    pub index: usize,
    /// Observed value.
    pub value: f64,
    /// Expected value from the baseline.
    pub expected: f64,
    /// Robust z-score of the deviation.
    pub score: f64,
}

impl Spike {
    /// Excess bytes above expectation.
    pub fn excess(&self) -> f64 {
        self.value - self.expected
    }
}

/// Median of a slice (empty → None).
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("invariant: these floats are finite by construction, so partial_cmp is total")
    });
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    })
}

/// Median absolute deviation, scaled to estimate σ (×1.4826).
fn mad_sigma(values: &[f64], med: f64) -> f64 {
    let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    median(&deviations).map_or(0.0, |m| m * 1.4826)
}

/// Detects spikes in a daily series against a weekday-shape baseline.
///
/// `shape` gives each sample's expected *relative* level (e.g.
/// [`airstat_sim::surge::WEEKDAY_ACTIVITY`]); the series is normalized by
/// it before robust scoring, so shape-following variation is invisible to
/// the detector. Samples more than `threshold` robust σ above the
/// normalized median are reported, largest score first.
///
/// # Panics
/// Panics when `series` and `shape` lengths differ or a shape entry is
/// not positive.
pub fn detect_spikes(series: &[f64], shape: &[f64], threshold: f64) -> Vec<Spike> {
    assert_eq!(series.len(), shape.len(), "series and shape must align");
    assert!(shape.iter().all(|&s| s > 0.0), "shape must be positive");
    if series.len() < 3 {
        return Vec::new();
    }
    let normalized: Vec<f64> = series.iter().zip(shape).map(|(v, s)| v / s).collect();
    let med = median(&normalized).expect("invariant: series checked non-empty above");
    let sigma = mad_sigma(&normalized, med);
    // When more than half the samples are identical the MAD collapses to
    // zero; floor the scale at 5% of the median so only deviations that
    // are material in *bytes* can score, not numerical wiggle.
    let sigma = sigma.max(med.abs() * 0.05).max(f64::MIN_POSITIVE);
    let mut spikes: Vec<Spike> = normalized
        .iter()
        .enumerate()
        .filter_map(|(index, &value)| {
            let score = (value - med) / sigma;
            (score > threshold).then(|| Spike {
                index,
                value: series[index],
                expected: med * shape[index],
                score,
            })
        })
        .collect();
    spikes.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("invariant: these floats are finite by construction, so partial_cmp is total")
    });
    spikes
}

/// Attributes a spike to the platform whose series contributed the most
/// excess on that day.
///
/// `per_group` maps a label to that group's daily series. Returns the
/// label with the largest same-day excess over its own baseline, plus the
/// excess bytes.
pub fn attribute_spike<L: Copy>(
    spike: &Spike,
    per_group: &[(L, Vec<f64>)],
    shape: &[f64],
) -> Option<(L, f64)> {
    per_group
        .iter()
        .filter_map(|(label, series)| {
            if series.len() != shape.len() || spike.index >= series.len() {
                return None;
            }
            let normalized: Vec<f64> = series.iter().zip(shape).map(|(v, s)| v / s).collect();
            let med = median(&normalized)?;
            let excess = series[spike.index] - med * shape[spike.index];
            Some((*label, excess))
        })
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1).expect(
                "invariant: these floats are finite by construction, so partial_cmp is total",
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAT: [f64; 7] = [1.0; 7];

    #[test]
    fn quiet_series_no_spikes() {
        let series = [100.0, 102.0, 99.0, 101.0, 98.0, 100.0, 103.0];
        assert!(detect_spikes(&series, &FLAT, 6.0).is_empty());
    }

    #[test]
    fn obvious_spike_detected_and_quantified() {
        let series = [100.0, 100.0, 350.0, 110.0, 100.0, 100.0, 100.0];
        let spikes = detect_spikes(&series, &FLAT, 6.0);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].index, 2);
        assert!((spikes[0].excess() - 250.0).abs() < 15.0);
        assert!(spikes[0].score > 6.0);
    }

    #[test]
    fn weekend_cliff_does_not_fire() {
        // A realistic business week: weekdays ~100, weekend ~32.
        let shape = [1.0, 1.02, 1.0, 0.98, 0.92, 0.35, 0.30];
        let series = [100.0, 103.0, 99.0, 97.0, 93.0, 34.0, 31.0];
        assert!(
            detect_spikes(&series, &shape, 6.0).is_empty(),
            "the weekday shape must absorb the weekend cliff"
        );
        // But a genuine surge on Wednesday still fires.
        let surged = [100.0, 103.0, 320.0, 97.0, 93.0, 34.0, 31.0];
        let spikes = detect_spikes(&surged, &shape, 6.0);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].index, 2);
    }

    #[test]
    fn multiple_spikes_ranked() {
        let series = [100.0, 400.0, 100.0, 100.0, 250.0, 100.0, 100.0];
        let spikes = detect_spikes(&series, &FLAT, 6.0);
        assert_eq!(spikes.len(), 2);
        assert_eq!(spikes[0].index, 1, "largest first");
        assert_eq!(spikes[1].index, 4);
    }

    #[test]
    fn flat_series_is_safe() {
        let series = [100.0; 7];
        assert!(detect_spikes(&series, &FLAT, 6.0).is_empty());
    }

    #[test]
    fn attribution_finds_the_right_platform() {
        let shape = FLAT;
        let total = [200.0, 200.0, 520.0, 200.0, 200.0, 200.0, 200.0];
        let spikes = detect_spikes(&total, &shape, 6.0);
        let per_os = vec![
            ("ios", vec![100.0, 100.0, 420.0, 100.0, 100.0, 100.0, 100.0]),
            (
                "windows",
                vec![100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0],
            ),
        ];
        let (who, excess) = attribute_spike(&spikes[0], &per_os, &shape).unwrap();
        assert_eq!(who, "ios");
        assert!((excess - 320.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "series and shape must align")]
    fn shape_mismatch_rejected() {
        let _ = detect_spikes(&[1.0, 2.0], &[1.0], 3.0);
    }

    #[test]
    fn median_helpers() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0]), Some(2.0));
        assert_eq!(median(&[1.0, 9.0, 3.0]), Some(3.0));
    }
}
