//! Network-problem triage: §6.3's "non-wireless problems".
//!
//! "We observed several common problems on networks which resulted in poor
//! performance but were not specific to wireless": overloaded
//! RADIUS/Active Directory, misconfigured VLANs, aging cables, MTU
//! blackholes, upstream bottlenecks, DNS failures, and campus-scale mDNS
//! storms. Users report all of these as "the WiFi is bad"; the operational
//! value of fleet telemetry is telling the radio problems from the wired
//! ones.
//!
//! [`triage`] implements that separation: symptom events collected at the
//! AP are classified into a [`RootCause`], and [`TriageReport`] summarizes
//! a site so an operator sees at a glance whether to blame spectrum or
//! infrastructure.

use std::collections::BTreeMap;
use std::fmt;

/// A symptom the AP (or its clients) observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symptom {
    /// 802.1X/RADIUS authentication timed out.
    AuthTimeout,
    /// DHCP offers never arrived on a VLAN.
    DhcpNoOffer,
    /// Client traffic black-holed after association (VLAN reachability).
    VlanBlackhole,
    /// Ethernet uplink flapped or renegotiated (bad cable).
    UplinkFlap,
    /// Large frames silently dropped (MTU/PMTU discovery broken).
    MtuBlackhole,
    /// WAN saturated: high latency with high upstream utilization.
    UpstreamCongestion,
    /// DNS queries failing or slow.
    DnsFailure,
    /// Broadcast/multicast storm (campus-scale mDNS, §6.3's last bullet).
    MulticastStorm,
    /// Low data rates with high channel utilization.
    AirtimeCongestion,
    /// Low RSSI reported by many clients.
    WeakCoverage,
    /// High retry/loss rates with strong signal (interference).
    Interference,
}

impl Symptom {
    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            Symptom::AuthTimeout => "authentication timeouts",
            Symptom::DhcpNoOffer => "DHCP no-offer",
            Symptom::VlanBlackhole => "VLAN blackhole",
            Symptom::UplinkFlap => "uplink flaps",
            Symptom::MtuBlackhole => "MTU blackhole",
            Symptom::UpstreamCongestion => "upstream congestion",
            Symptom::DnsFailure => "DNS failures",
            Symptom::MulticastStorm => "multicast storm",
            Symptom::AirtimeCongestion => "airtime congestion",
            Symptom::WeakCoverage => "weak coverage",
            Symptom::Interference => "interference",
        }
    }
}

/// Root-cause classes, split the way §6.3 splits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootCause {
    /// Authentication infrastructure (RADIUS/AD overload).
    AuthInfrastructure,
    /// Switching/VLAN configuration.
    VlanConfig,
    /// Physical cabling / building wiring.
    Cabling,
    /// MTU configuration or discovery.
    Mtu,
    /// WAN capacity.
    UpstreamBandwidth,
    /// Name resolution.
    Dns,
    /// Broadcast-domain design (mDNS at campus scale).
    BroadcastDomain,
    /// Genuinely wireless: spectrum, coverage, interference.
    Wireless,
}

impl RootCause {
    /// Whether this cause is wireless (vs the §6.3 non-wireless set).
    pub fn is_wireless(self) -> bool {
        self == RootCause::Wireless
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            RootCause::AuthInfrastructure => "RADIUS/AD overload",
            RootCause::VlanConfig => "VLAN misconfiguration",
            RootCause::Cabling => "cabling/building wiring",
            RootCause::Mtu => "MTU configuration",
            RootCause::UpstreamBandwidth => "upstream bottleneck",
            RootCause::Dns => "DNS resolution",
            RootCause::BroadcastDomain => "broadcast-domain scale",
            RootCause::Wireless => "wireless (RF)",
        }
    }
}

/// Maps a symptom to its root-cause class.
pub fn triage(symptom: Symptom) -> RootCause {
    match symptom {
        Symptom::AuthTimeout => RootCause::AuthInfrastructure,
        Symptom::DhcpNoOffer | Symptom::VlanBlackhole => RootCause::VlanConfig,
        Symptom::UplinkFlap => RootCause::Cabling,
        Symptom::MtuBlackhole => RootCause::Mtu,
        Symptom::UpstreamCongestion => RootCause::UpstreamBandwidth,
        Symptom::DnsFailure => RootCause::Dns,
        Symptom::MulticastStorm => RootCause::BroadcastDomain,
        Symptom::AirtimeCongestion | Symptom::WeakCoverage | Symptom::Interference => {
            RootCause::Wireless
        }
    }
}

/// A site's triage summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriageReport {
    counts: BTreeMap<RootCause, u64>,
}

impl TriageReport {
    /// Builds the report from a symptom stream.
    pub fn from_symptoms<I: IntoIterator<Item = Symptom>>(symptoms: I) -> Self {
        let mut counts = BTreeMap::new();
        for s in symptoms {
            *counts.entry(triage(s)).or_default() += 1;
        }
        TriageReport { counts }
    }

    /// Events attributed to a cause.
    pub fn count(&self, cause: RootCause) -> u64 {
        self.counts.get(&cause).copied().unwrap_or(0)
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of events that are genuinely wireless.
    ///
    /// The §6.3 insight: this is often *small* — "the WiFi is bad" is
    /// frequently a wired problem wearing a wireless costume.
    pub fn wireless_fraction(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.count(RootCause::Wireless) as f64 / total as f64)
    }

    /// Causes ranked by event count, descending.
    pub fn ranked(&self) -> Vec<(RootCause, u64)> {
        let mut out: Vec<_> = self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        out.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        out
    }
}

impl fmt::Display for TriageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "triage of {} problem events:", self.total())?;
        for (cause, count) in self.ranked() {
            let marker = if cause.is_wireless() { " (RF)" } else { "" };
            writeln!(f, "  {:>5}  {}{}", count, cause.name(), marker)?;
        }
        if let Some(w) = self.wireless_fraction() {
            writeln!(
                f,
                "wireless share: {:.0}% — the rest is §6.3's wired problems",
                w * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_symptom_has_a_cause_and_name() {
        for s in [
            Symptom::AuthTimeout,
            Symptom::DhcpNoOffer,
            Symptom::VlanBlackhole,
            Symptom::UplinkFlap,
            Symptom::MtuBlackhole,
            Symptom::UpstreamCongestion,
            Symptom::DnsFailure,
            Symptom::MulticastStorm,
            Symptom::AirtimeCongestion,
            Symptom::WeakCoverage,
            Symptom::Interference,
        ] {
            assert!(!s.name().is_empty());
            assert!(!triage(s).name().is_empty());
        }
    }

    #[test]
    fn wireless_vs_wired_split() {
        // Only the RF symptoms map to the wireless cause.
        assert!(triage(Symptom::AirtimeCongestion).is_wireless());
        assert!(triage(Symptom::WeakCoverage).is_wireless());
        assert!(triage(Symptom::Interference).is_wireless());
        for s in [
            Symptom::AuthTimeout,
            Symptom::DhcpNoOffer,
            Symptom::VlanBlackhole,
            Symptom::UplinkFlap,
            Symptom::MtuBlackhole,
            Symptom::UpstreamCongestion,
            Symptom::DnsFailure,
            Symptom::MulticastStorm,
        ] {
            assert!(!triage(s).is_wireless(), "{s:?} is a §6.3 wired problem");
        }
    }

    #[test]
    fn report_counts_and_ranks() {
        let report = TriageReport::from_symptoms([
            Symptom::DnsFailure,
            Symptom::DnsFailure,
            Symptom::DnsFailure,
            Symptom::AuthTimeout,
            Symptom::Interference,
        ]);
        assert_eq!(report.total(), 5);
        assert_eq!(report.count(RootCause::Dns), 3);
        assert_eq!(report.ranked()[0].0, RootCause::Dns);
        assert!((report.wireless_fraction().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn vlan_symptoms_merge() {
        let report = TriageReport::from_symptoms([Symptom::DhcpNoOffer, Symptom::VlanBlackhole]);
        assert_eq!(report.count(RootCause::VlanConfig), 2);
    }

    #[test]
    fn empty_report() {
        let report = TriageReport::from_symptoms([]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.wireless_fraction(), None);
        assert!(report.ranked().is_empty());
    }

    #[test]
    fn renders() {
        let report = TriageReport::from_symptoms([
            Symptom::MulticastStorm,
            Symptom::MulticastStorm,
            Symptom::WeakCoverage,
        ]);
        let s = report.to_string();
        assert!(s.contains("broadcast-domain scale"));
        assert!(s.contains("wireless share: 33%"));
    }
}
