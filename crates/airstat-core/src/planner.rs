//! Channel planning: §8's second practical recommendation, as a system.
//!
//! "channel planning using a utilization measure to identify the best
//! wireless channel" — versus the naive strategy of picking the channel
//! with the fewest visible networks, which Figures 7/8 show is a poor
//! proxy. This module implements both strategies over MR18-style
//! measurements plus the fleet-coordination constraint the paper's
//! system actually has: APs of the same customer network should spread
//! across the non-overlapping set instead of stacking on one channel.

use airstat_rf::band::{Band, Channel, NON_OVERLAPPING_2_4};
use airstat_sim::world::World;
use std::collections::BTreeMap;

/// One channel's measured state at one AP.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelMeasurement {
    /// Foreign networks heard on the channel.
    pub networks: u32,
    /// Measured busy fraction in `[0, 1]`.
    pub utilization: f64,
}

/// How the planner ranks candidate channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerStrategy {
    /// Fewest visible networks (the pre-paper heuristic).
    FewestNetworks,
    /// Lowest measured utilization (the paper's recommendation).
    LowestUtilization,
}

/// A fleet channel plan for the 2.4 GHz band.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    /// Channel per AP device id.
    pub assignments: BTreeMap<u64, Channel>,
    /// Strategy that produced it.
    pub strategy: PlannerStrategy,
}

/// Extra utilization an AP suffers per co-network AP on the same channel
/// (its siblings carry correlated traffic right next to it).
pub const SIBLING_PENALTY: f64 = 0.08;

/// Plans 2.4 GHz channels for every AP in the world.
///
/// Greedy over networks: each AP picks the candidate from {1, 6, 11} with
/// the lowest cost, where cost is the strategy's metric plus
/// [`SIBLING_PENALTY`] for every already-assigned co-network AP on that
/// channel. `measure` supplies the per-AP, per-channel scan data.
pub fn plan(
    world: &World,
    measure: &dyn Fn(u64, Channel) -> ChannelMeasurement,
    strategy: PlannerStrategy,
) -> ChannelPlan {
    let candidates: Vec<Channel> = NON_OVERLAPPING_2_4
        .iter()
        .map(|&n| {
            Channel::new(Band::Ghz2_4, n)
                .expect("invariant: NON_OVERLAPPING_2_4 holds valid 2.4 GHz channel numbers")
        })
        .collect();
    let mut assignments: BTreeMap<u64, Channel> = BTreeMap::new();
    for network in &world.networks {
        for &device in &network.aps {
            let best = candidates
                .iter()
                .map(|&ch| {
                    let m = measure(device, ch);
                    let siblings = network
                        .aps
                        .iter()
                        .filter(|&&peer| assignments.get(&peer) == Some(&ch))
                        .count() as f64;
                    let metric = match strategy {
                        PlannerStrategy::FewestNetworks => f64::from(m.networks),
                        PlannerStrategy::LowestUtilization => m.utilization * 100.0,
                    };
                    (ch, metric + siblings * SIBLING_PENALTY * 100.0)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("invariant: these floats are finite by construction, so partial_cmp is total"))
                .map(|(ch, _)| ch)
                .expect("invariant: the candidate channel list is never empty");
            assignments.insert(device, best);
        }
    }
    ChannelPlan {
        assignments,
        strategy,
    }
}

/// Evaluates a plan: the fleet-mean *true* utilization each AP would see
/// on its assigned channel, including sibling co-channel penalties.
///
/// `truth` supplies the ground-truth busy fraction (which the
/// count-based planner never looked at).
pub fn evaluate(world: &World, plan: &ChannelPlan, truth: &dyn Fn(u64, Channel) -> f64) -> f64 {
    let mut total = 0.0;
    let mut count = 0u32;
    for network in &world.networks {
        for &device in &network.aps {
            let Some(&ch) = plan.assignments.get(&device) else {
                continue;
            };
            let siblings = network
                .aps
                .iter()
                .filter(|&&peer| peer != device && plan.assignments.get(&peer) == Some(&ch))
                .count() as f64;
            total += (truth(device, ch) + siblings * SIBLING_PENALTY).min(1.0);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / f64::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_sim::engine::{channel_load, diurnal, sample_census};
    use airstat_sim::world::NeighborEpoch;
    use airstat_stats::SeedTree;
    use std::collections::HashMap;

    fn ch(n: u16) -> Channel {
        Channel::new(Band::Ghz2_4, n).unwrap()
    }

    type MeasurementTable = HashMap<(u64, u16), ChannelMeasurement>;

    /// Builds measurement + truth tables from the simulator.
    fn tables(world: &World) -> (MeasurementTable, HashMap<(u64, u16), f64>) {
        let mut measurements = HashMap::new();
        let mut truth = HashMap::new();
        let mut rng = SeedTree::new(0x71A).rng();
        for ap in &world.aps {
            let census = sample_census(world, ap, NeighborEpoch::Jan2015, &mut rng);
            for n in NON_OVERLAPPING_2_4 {
                let channel = ch(n);
                // Average several scan windows like the backend does.
                let mut util = 0.0;
                for hour in [9u64, 11, 14, 16, 10] {
                    util += channel_load(
                        ap,
                        &census,
                        channel,
                        NeighborEpoch::Jan2015,
                        diurnal(hour),
                        &mut rng,
                    )
                    .utilization();
                }
                util /= 5.0;
                measurements.insert(
                    (ap.device_id, n),
                    ChannelMeasurement {
                        networks: census.count_on(channel),
                        utilization: util,
                    },
                );
                truth.insert((ap.device_id, n), util);
            }
        }
        (measurements, truth)
    }

    #[test]
    fn utilization_strategy_beats_count_strategy() {
        let world = World::generate(&SeedTree::new(0x71B), 120, 0);
        let (measurements, truth) = tables(&world);
        let measure = |d: u64, c: Channel| {
            measurements
                .get(&(d, c.number))
                .copied()
                .unwrap_or_default()
        };
        let truth_fn = |d: u64, c: Channel| truth.get(&(d, c.number)).copied().unwrap_or(0.0);
        let by_count = plan(&world, &measure, PlannerStrategy::FewestNetworks);
        let by_util = plan(&world, &measure, PlannerStrategy::LowestUtilization);
        let cost_count = evaluate(&world, &by_count, &truth_fn);
        let cost_util = evaluate(&world, &by_util, &truth_fn);
        assert!(
            cost_util < cost_count,
            "paper's conclusion: measure utilization ({cost_util:.3}) beats counting networks ({cost_count:.3})"
        );
    }

    #[test]
    fn every_ap_gets_a_primary_channel() {
        let world = World::generate(&SeedTree::new(0x71C), 40, 0);
        let p = plan(
            &world,
            &|_, _| ChannelMeasurement::default(),
            PlannerStrategy::LowestUtilization,
        );
        assert_eq!(p.assignments.len(), world.aps.len());
        for channel in p.assignments.values() {
            assert!(NON_OVERLAPPING_2_4.contains(&channel.number));
        }
    }

    #[test]
    fn siblings_spread_across_channels() {
        // With identical measurements everywhere, the sibling penalty must
        // spread a 3-AP network across all three primaries.
        let world = World::generate(&SeedTree::new(0x71D), 60, 0);
        let p = plan(
            &world,
            &|_, _| ChannelMeasurement::default(),
            PlannerStrategy::LowestUtilization,
        );
        for network in world.networks.iter().filter(|n| n.aps.len() == 3) {
            let channels: std::collections::HashSet<u16> = network
                .aps
                .iter()
                .map(|d| p.assignments[d].number)
                .collect();
            assert_eq!(channels.len(), 3, "3 siblings on 3 distinct channels");
        }
    }

    #[test]
    fn planner_prefers_the_quiet_channel() {
        let world = World::generate(&SeedTree::new(0x71E), 2, 0);
        // Channel 6 quiet, 1 and 11 busy, counts say the opposite.
        let measure = |_: u64, c: Channel| match c.number {
            6 => ChannelMeasurement {
                networks: 30,
                utilization: 0.05,
            },
            _ => ChannelMeasurement {
                networks: 2,
                utilization: 0.60,
            },
        };
        let util_plan = plan(&world, &measure, PlannerStrategy::LowestUtilization);
        let count_plan = plan(&world, &measure, PlannerStrategy::FewestNetworks);
        // First AP of each network (no sibling pressure yet).
        let first = world.networks[0].aps[0];
        assert_eq!(util_plan.assignments[&first].number, 6);
        assert_ne!(count_plan.assignments[&first].number, 6);
    }

    #[test]
    fn evaluate_counts_sibling_penalty() {
        let world = World::generate(&SeedTree::new(0x71F), 30, 0);
        // Force everyone onto channel 1.
        let mut assignments = BTreeMap::new();
        for ap in &world.aps {
            assignments.insert(ap.device_id, ch(1));
        }
        let stacked = ChannelPlan {
            assignments,
            strategy: PlannerStrategy::FewestNetworks,
        };
        let spread = plan(
            &world,
            &|_, _| ChannelMeasurement::default(),
            PlannerStrategy::LowestUtilization,
        );
        let truth_fn = |_: u64, _: Channel| 0.10;
        assert!(
            evaluate(&world, &stacked, &truth_fn) > evaluate(&world, &spread, &truth_fn),
            "stacking a network on one channel must cost more"
        );
    }
}
