//! Dataset export: the paper's `dl.meraki.net/sigcomm-2015` release.
//!
//! §8: "A copy of the wireless link measurements, nearby networks, and
//! channel utilization data used in this paper is available at ...". That
//! artifact is gone from the internet; this module regenerates its three
//! files from a simulated backend, anonymized the way a public release
//! must be:
//!
//! * device identifiers are pseudonymized with a release salt
//!   (stable within the release, unlinkable outside it);
//! * only the measurement windows' aggregates appear, never client MACs;
//! * CSVs carry a header naming units, so the release is self-describing.

use airstat_rf::band::Band;
use airstat_stats::rng::splitmix64;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt::Write as _;

/// A releasable dataset: the three CSVs of the paper's artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRelease {
    /// `links.csv` — per-link delivery observations.
    pub links_csv: String,
    /// `nearby.csv` — per-device, per-channel network counts.
    pub nearby_csv: String,
    /// `utilization.csv` — per-device channel-scan aggregates.
    pub utilization_csv: String,
}

/// Pseudonymizes a device id under the release salt.
fn pseudo_device(salt: u64, device: u64) -> u64 {
    splitmix64(device ^ salt)
}

fn band_label(band: Band) -> &'static str {
    match band {
        Band::Ghz2_4 => "2.4GHz",
        Band::Ghz5 => "5GHz",
    }
}

/// Builds the release from one or more measurement windows.
///
/// `windows` pairs a window with the label it carries in the CSVs
/// (e.g. `(WINDOW_JAN_2015, "2015-01")`).
pub fn build_release<Q: FleetQuery>(
    backend: &Q,
    windows: &[(WindowId, &str)],
    salt: u64,
) -> DatasetRelease {
    let mut links_csv =
        String::from("window,band,rx_device,tx_device,observation_ts_s,delivery_ratio\n");
    let mut nearby_csv = String::from("window,band,device,channel,networks,hotspots\n");
    let mut utilization_csv =
        String::from("window,band,device,channel,ts_s,utilization_ppm,decodable_ppm,networks\n");

    for &(window, label) in windows {
        for band in [Band::Ghz2_4, Band::Ghz5] {
            // links.csv
            for key in backend.link_keys(window, band) {
                let rx = pseudo_device(salt, key.rx_device);
                let tx = pseudo_device(salt, key.tx_device);
                for obs in backend.link_series(window, key) {
                    let _ = writeln!(
                        links_csv,
                        "{label},{},{rx:016x},{tx:016x},{},{:.4}",
                        band_label(band),
                        obs.timestamp_s,
                        obs.ratio
                    );
                }
            }
            // utilization.csv
            for obs in backend.scan_observations(window, band) {
                // Scan observations do not carry the reporting device in
                // the public query; the per-channel rows are enough for
                // the paper's figures and keep the release lean.
                let _ = writeln!(
                    utilization_csv,
                    "{label},{},-,{},{},{},{},{}",
                    band_label(band),
                    obs.record.channel.number,
                    obs.timestamp_s,
                    obs.record.utilization_ppm,
                    obs.record.decodable_ppm,
                    obs.record.networks
                );
            }
            // nearby.csv (per-channel totals; device-level rows would leak
            // site fingerprints, so the release aggregates like the paper).
            for (channel, count) in backend.nearby_per_channel(window, band) {
                let _ = writeln!(
                    nearby_csv,
                    "{label},{},-,{channel},{count},-",
                    band_label(band)
                );
            }
        }
    }
    DatasetRelease {
        links_csv,
        nearby_csv,
        utilization_csv,
    }
}

impl DatasetRelease {
    /// Row counts per file (excluding headers): `(links, nearby, util)`.
    pub fn row_counts(&self) -> (usize, usize, usize) {
        let rows = |s: &str| s.lines().count().saturating_sub(1);
        (
            rows(&self.links_csv),
            rows(&self.nearby_csv),
            rows(&self.utilization_csv),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{
        ChannelScanRecord, LinkRecord, NeighborRecord, Report, ReportPayload,
    };

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        b.ingest(
            W,
            &Report {
                device: 42,
                seq: 0,
                timestamp_s: 300,
                payload: ReportPayload::Links(vec![LinkRecord {
                    peer_device: 43,
                    band: Band::Ghz2_4,
                    probes_expected: 20,
                    probes_received: 15,
                }]),
            },
        );
        b.ingest(
            W,
            &Report {
                device: 42,
                seq: 1,
                timestamp_s: 600,
                payload: ReportPayload::Neighbors(vec![NeighborRecord {
                    channel: Channel::new(Band::Ghz2_4, 6).unwrap(),
                    networks: 12,
                    hotspots: 2,
                }]),
            },
        );
        b.ingest(
            W,
            &Report {
                device: 42,
                seq: 2,
                timestamp_s: 900,
                payload: ReportPayload::ChannelScan(vec![ChannelScanRecord {
                    channel: Channel::new(Band::Ghz5, 36).unwrap(),
                    utilization_ppm: 52_000,
                    decodable_ppm: 910_000,
                    networks: 3,
                }]),
            },
        );
        b
    }

    #[test]
    fn release_contains_all_three_files() {
        let release = build_release(&backend(), &[(W, "2015-01")], 7);
        let (links, nearby, util) = release.row_counts();
        assert_eq!(links, 1);
        assert_eq!(nearby, 11 + 24, "one row per plan channel");
        assert_eq!(util, 1);
        assert!(release.links_csv.contains("2015-01,2.4GHz"));
        assert!(release.links_csv.contains("0.7500"));
        assert!(release.utilization_csv.contains("52000,910000,3"));
    }

    #[test]
    fn device_ids_are_pseudonymized_and_stable() {
        let a = build_release(&backend(), &[(W, "2015-01")], 7);
        let b = build_release(&backend(), &[(W, "2015-01")], 7);
        assert_eq!(a, b, "same salt, same release");
        assert!(
            !a.links_csv.contains(",42,") && !a.links_csv.contains(",43,"),
            "raw device ids must not appear"
        );
        let other_salt = build_release(&backend(), &[(W, "2015-01")], 8);
        assert_ne!(a.links_csv, other_salt.links_csv, "salts unlink releases");
    }

    #[test]
    fn headers_are_self_describing() {
        let release = build_release(&backend(), &[(W, "2015-01")], 7);
        assert!(release.links_csv.starts_with("window,band,rx_device"));
        assert!(release.nearby_csv.starts_with("window,band,device,channel"));
        assert!(release
            .utilization_csv
            .starts_with("window,band,device,channel,ts_s"));
    }

    #[test]
    fn empty_backend_yields_headers_only() {
        let release = build_release(&Backend::new(), &[(W, "2015-01")], 7);
        let (links, _, util) = release.row_counts();
        assert_eq!(links, 0);
        assert_eq!(util, 0);
    }
}
