//! Figure 1: distribution of client received signal strength.
//!
//! The paper's snapshot: ~309,000 connected clients one January 2015
//! evening, ~80% associated at 2.4 GHz despite ~65% being 5 GHz-capable,
//! median signal ~28 dB above the noise floor on both bands.

use airstat_rf::band::Band;
use airstat_rf::propagation::NOISE_FLOOR_DBM;
use airstat_stats::{Ecdf, Reservoir, SeedTree};
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_cdfs;

/// Figure 1's reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct RssiFigure {
    /// RSSI samples (dBm) of clients associated at 2.4 GHz.
    pub rssi_2_4: Ecdf,
    /// RSSI samples (dBm) of clients associated at 5 GHz.
    pub rssi_5: Ecdf,
}

impl RssiFigure {
    /// Takes the snapshot from every client identity in the window.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId) -> Self {
        let mut r24 = Vec::new();
        let mut r5 = Vec::new();
        for (_, identity) in backend.clients(window) {
            match identity.band {
                Band::Ghz2_4 => r24.push(identity.rssi_dbm),
                Band::Ghz5 => r5.push(identity.rssi_dbm),
            }
        }
        RssiFigure {
            rssi_2_4: Ecdf::new(r24),
            rssi_5: Ecdf::new(r5),
        }
    }

    /// The paper's methodology: a bounded point-in-time sample of
    /// *currently connected* clients (~309,000 of the week's 5.58M, §3.1),
    /// taken with a uniform reservoir so snapshot cost never scales with
    /// fleet size.
    pub fn compute_snapshot<Q: FleetQuery>(
        backend: &Q,
        window: WindowId,
        sample_size: usize,
        seed: &SeedTree,
    ) -> Self {
        let mut rng = seed.child("rssi-snapshot").rng();
        let mut reservoir = Reservoir::new(sample_size.max(1));
        for (_, identity) in backend.clients(window) {
            reservoir.offer((identity.band, identity.rssi_dbm), &mut rng);
        }
        let mut r24 = Vec::new();
        let mut r5 = Vec::new();
        for &(band, rssi) in reservoir.items() {
            match band {
                Band::Ghz2_4 => r24.push(rssi),
                Band::Ghz5 => r5.push(rssi),
            }
        }
        RssiFigure {
            rssi_2_4: Ecdf::new(r24),
            rssi_5: Ecdf::new(r5),
        }
    }

    /// Fraction of clients associated at 2.4 GHz (paper: ~0.80).
    pub fn fraction_on_2_4(&self) -> f64 {
        let total = self.rssi_2_4.len() + self.rssi_5.len();
        if total == 0 {
            0.0
        } else {
            self.rssi_2_4.len() as f64 / total as f64
        }
    }

    /// Median SNR above the noise floor on a band (paper: ~28 dB).
    pub fn median_snr_db(&self, band: Band) -> Option<f64> {
        let ecdf = match band {
            Band::Ghz2_4 => &self.rssi_2_4,
            Band::Ghz5 => &self.rssi_5,
        };
        ecdf.median().map(|m| m - NOISE_FLOOR_DBM)
    }
}

impl fmt::Display for RssiFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "clients: {} at 2.4 GHz, {} at 5 GHz ({:.0}% on 2.4 GHz)",
            self.rssi_2_4.len(),
            self.rssi_5.len(),
            self.fraction_on_2_4() * 100.0
        )?;
        writeln!(
            f,
            "median SNR: {:.1} dB (2.4 GHz), {:.1} dB (5 GHz)",
            self.median_snr_db(Band::Ghz2_4).unwrap_or(f64::NAN),
            self.median_snr_db(Band::Ghz5).unwrap_or(f64::NAN)
        )?;
        f.write_str(&render_cdfs(
            &[("2.4 GHz", &self.rssi_2_4), ("5 GHz", &self.rssi_5)],
            -95.0,
            -30.0,
            60,
            12,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::device::OsFamily;
    use airstat_classify::mac::MacAddress;
    use airstat_rf::phy::{Capabilities, Generation};
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ClientInfoRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let records: Vec<ClientInfoRecord> = (0..10u8)
            .map(|i| ClientInfoRecord {
                mac: MacAddress::new([0, 0, 0, 0, 0, i]),
                os: OsFamily::Windows,
                caps: Capabilities::new(Generation::N, true, false, 1),
                band: if i < 8 { Band::Ghz2_4 } else { Band::Ghz5 },
                rssi_dbm: -60.0 - f64::from(i),
            })
            .collect();
        b.ingest(
            W,
            &Report {
                device: 1,
                seq: 0,
                timestamp_s: 0,
                payload: ReportPayload::ClientInfo(records),
            },
        );
        b
    }

    #[test]
    fn band_split_and_counts() {
        let fig = RssiFigure::compute(&backend(), W);
        assert_eq!(fig.rssi_2_4.len(), 8);
        assert_eq!(fig.rssi_5.len(), 2);
        assert!((fig.fraction_on_2_4() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn snr_is_rssi_above_floor() {
        let fig = RssiFigure::compute(&backend(), W);
        let snr = fig.median_snr_db(Band::Ghz2_4).unwrap();
        // Median 2.4 GHz RSSI = -63.5 dBm → 30.5 dB above -94.
        assert!((snr - 30.5).abs() < 1e-9);
    }

    #[test]
    fn empty_is_graceful() {
        let fig = RssiFigure::compute(&Backend::new(), W);
        assert_eq!(fig.fraction_on_2_4(), 0.0);
        assert_eq!(fig.median_snr_db(Band::Ghz5), None);
    }

    #[test]
    fn snapshot_is_a_bounded_unbiased_sample() {
        let b = backend();
        let seed = airstat_stats::SeedTree::new(4);
        let snap = RssiFigure::compute_snapshot(&b, W, 4, &seed);
        assert_eq!(snap.rssi_2_4.len() + snap.rssi_5.len(), 4);
        // Deterministic for a seed.
        let again = RssiFigure::compute_snapshot(&b, W, 4, &seed);
        assert_eq!(snap, again);
        // A sample as large as the panel reproduces compute() exactly
        // (up to ordering, which Ecdf normalizes).
        let full = RssiFigure::compute_snapshot(&b, W, 1000, &seed);
        let exact = RssiFigure::compute(&b, W);
        assert_eq!(full.rssi_2_4.len(), exact.rssi_2_4.len());
        assert_eq!(full, exact);
    }

    #[test]
    fn renders() {
        let s = RssiFigure::compute(&backend(), W).to_string();
        assert!(s.contains("2.4 GHz"));
        assert!(s.contains("median SNR"));
    }
}
