//! Figure 3: distribution of link delivery ratios, now vs six months ago.

use airstat_rf::band::Band;
use airstat_stats::Ecdf;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_cdfs;

/// Figure 3's reproduction: four delivery-ratio CDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryFigure {
    /// 2.4 GHz links, current window.
    pub now_2_4: Ecdf,
    /// 2.4 GHz links, six months earlier.
    pub before_2_4: Ecdf,
    /// 5 GHz links, current window.
    pub now_5: Ecdf,
    /// 5 GHz links, six months earlier.
    pub before_5: Ecdf,
}

impl DeliveryFigure {
    /// Computes the CDFs from each link's mean delivery ratio per window.
    pub fn compute<Q: FleetQuery>(backend: &Q, before: WindowId, now: WindowId) -> Self {
        DeliveryFigure {
            now_2_4: Ecdf::new(backend.mean_delivery_ratios(now, Band::Ghz2_4)),
            before_2_4: Ecdf::new(backend.mean_delivery_ratios(before, Band::Ghz2_4)),
            now_5: Ecdf::new(backend.mean_delivery_ratios(now, Band::Ghz5)),
            before_5: Ecdf::new(backend.mean_delivery_ratios(before, Band::Ghz5)),
        }
    }

    /// Fraction of links with intermediate delivery (ratio in `(lo, hi)`).
    pub fn intermediate_fraction(ecdf: &Ecdf, lo: f64, hi: f64) -> f64 {
        if ecdf.is_empty() {
            return 0.0;
        }
        ecdf.fraction_at_or_below(hi) - ecdf.fraction_at_or_below(lo)
    }

    /// Fraction of 5 GHz links delivering everything (paper: over half).
    pub fn perfect_fraction_5_now(&self) -> f64 {
        self.now_5.mass_at(1.0, 0.025)
    }

    /// Whether 2.4 GHz delivery degraded over six months (median dropped).
    pub fn degraded_2_4(&self) -> Option<bool> {
        Some(self.now_2_4.median()? < self.before_2_4.median()?)
    }
}

impl fmt::Display for DeliveryFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "links: {} (2.4 GHz) / {} (5 GHz) now; {} / {} six months ago",
            self.now_2_4.len(),
            self.now_5.len(),
            self.before_2_4.len(),
            self.before_5.len()
        )?;
        writeln!(
            f,
            "2.4 GHz intermediate (0.1-0.9): {:.0}% now; 5 GHz at ratio 1.0: {:.0}%",
            Self::intermediate_fraction(&self.now_2_4, 0.1, 0.9) * 100.0,
            self.perfect_fraction_5_now() * 100.0
        )?;
        f.write_str(&render_cdfs(
            &[
                ("2.4 GHz now", &self.now_2_4),
                ("2.4 GHz -6mo", &self.before_2_4),
                ("5 GHz now", &self.now_5),
                ("5 GHz -6mo", &self.before_5),
            ],
            0.0,
            1.0,
            60,
            12,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{LinkRecord, Report, ReportPayload};

    const NOW: WindowId = WindowId(1501);
    const BEFORE: WindowId = WindowId(1407);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        let mut put = |window, rx: u64, tx: u64, band, received: u32| {
            seq += 1;
            b.ingest(
                window,
                &Report {
                    device: rx,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::Links(vec![LinkRecord {
                        peer_device: tx,
                        band,
                        probes_expected: 20,
                        probes_received: received,
                    }]),
                },
            );
        };
        // Six months ago: strong 2.4 links.
        put(BEFORE, 1, 2, Band::Ghz2_4, 19);
        put(BEFORE, 1, 3, Band::Ghz2_4, 18);
        // Now: degraded.
        put(NOW, 1, 2, Band::Ghz2_4, 12);
        put(NOW, 1, 3, Band::Ghz2_4, 10);
        // 5 GHz now: one perfect, one intermediate.
        put(NOW, 1, 2, Band::Ghz5, 20);
        put(NOW, 1, 3, Band::Ghz5, 13);
        b
    }

    #[test]
    fn link_counts_and_degradation() {
        let fig = DeliveryFigure::compute(&backend(), BEFORE, NOW);
        assert_eq!(fig.now_2_4.len(), 2);
        assert_eq!(fig.before_2_4.len(), 2);
        assert_eq!(fig.now_5.len(), 2);
        assert_eq!(fig.degraded_2_4(), Some(true));
    }

    #[test]
    fn perfect_and_intermediate_fractions() {
        let fig = DeliveryFigure::compute(&backend(), BEFORE, NOW);
        assert!((fig.perfect_fraction_5_now() - 0.5).abs() < 1e-12);
        let inter = DeliveryFigure::intermediate_fraction(&fig.now_2_4, 0.1, 0.9);
        assert!((inter - 1.0).abs() < 1e-12, "both 2.4 links intermediate");
    }

    #[test]
    fn empty_backend_safe() {
        let fig = DeliveryFigure::compute(&Backend::new(), BEFORE, NOW);
        assert_eq!(fig.degraded_2_4(), None);
        assert_eq!(fig.perfect_fraction_5_now(), 0.0);
    }

    #[test]
    fn renders() {
        let s = DeliveryFigure::compute(&backend(), BEFORE, NOW).to_string();
        assert!(s.contains("2.4 GHz now"));
        assert!(s.contains("intermediate"));
    }
}
