//! Figure 2: nearby networks by channel number.

use airstat_rf::band::Band;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_bars;

/// Figure 2's reproduction: network counts per channel, both bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelCensusFigure {
    /// `(channel, count)` for 2.4 GHz channels 1–11.
    pub counts_2_4: Vec<(u16, u64)>,
    /// `(channel, count)` for the 5 GHz plan.
    pub counts_5: Vec<(u16, u64)>,
}

impl ChannelCensusFigure {
    /// Computes per-channel totals from all censuses in the window.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId) -> Self {
        ChannelCensusFigure {
            counts_2_4: backend.nearby_per_channel(window, Band::Ghz2_4),
            counts_5: backend.nearby_per_channel(window, Band::Ghz5),
        }
    }

    /// Count on one 2.4 GHz channel.
    pub fn on_2_4(&self, channel: u16) -> u64 {
        self.counts_2_4
            .iter()
            .find(|&&(c, _)| c == channel)
            .map_or(0, |&(_, n)| n)
    }

    /// Ratio of channel-1 networks to channel-6 networks (paper: ≈ 1.37).
    pub fn ch1_over_ch6(&self) -> Option<f64> {
        let c6 = self.on_2_4(6);
        (c6 > 0).then(|| self.on_2_4(1) as f64 / c6 as f64)
    }

    /// Fraction of 2.4 GHz networks on the non-overlapping set {1, 6, 11}.
    pub fn primary_fraction_2_4(&self) -> f64 {
        let total: u64 = self.counts_2_4.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        (self.on_2_4(1) + self.on_2_4(6) + self.on_2_4(11)) as f64 / total as f64
    }

    /// Fraction of 5 GHz networks on DFS channels (paper: tiny).
    pub fn dfs_fraction_5(&self) -> f64 {
        use airstat_rf::band::Channel;
        let total: u64 = self.counts_5.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let dfs: u64 = self
            .counts_5
            .iter()
            .filter(|&&(c, _)| Channel::new(Band::Ghz5, c).is_some_and(|ch| ch.requires_dfs()))
            .map(|&(_, n)| n)
            .sum();
        dfs as f64 / total as f64
    }
}

impl fmt::Display for ChannelCensusFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "2.4 GHz:")?;
        let bars24: Vec<(String, u64)> = self
            .counts_2_4
            .iter()
            .map(|&(c, n)| (format!("ch{c}"), n))
            .collect();
        f.write_str(&render_bars(&bars24, 50))?;
        writeln!(f, "5 GHz:")?;
        let bars5: Vec<(String, u64)> = self
            .counts_5
            .iter()
            .map(|&(c, n)| (format!("ch{c}"), n))
            .collect();
        f.write_str(&render_bars(&bars5, 50))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{NeighborRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let rec = |n: u16, band: Band, count: u32| NeighborRecord {
            channel: Channel::new(band, n).unwrap(),
            networks: count,
            hotspots: 0,
        };
        b.ingest(
            W,
            &Report {
                device: 1,
                seq: 0,
                timestamp_s: 0,
                payload: ReportPayload::Neighbors(vec![
                    rec(1, Band::Ghz2_4, 137),
                    rec(6, Band::Ghz2_4, 100),
                    rec(11, Band::Ghz2_4, 100),
                    rec(3, Band::Ghz2_4, 5),
                    rec(36, Band::Ghz5, 10),
                    rec(52, Band::Ghz5, 1), // DFS
                ]),
            },
        );
        b
    }

    #[test]
    fn per_channel_structure() {
        let fig = ChannelCensusFigure::compute(&backend(), W);
        assert_eq!(fig.on_2_4(1), 137);
        assert!((fig.ch1_over_ch6().unwrap() - 1.37).abs() < 1e-9);
        let primary = fig.primary_fraction_2_4();
        assert!((primary - 337.0 / 342.0).abs() < 1e-9);
        let dfs = fig.dfs_fraction_5();
        assert!((dfs - 1.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn covers_full_plan() {
        let fig = ChannelCensusFigure::compute(&backend(), W);
        assert_eq!(fig.counts_2_4.len(), 11);
        assert_eq!(fig.counts_5.len(), 24);
    }

    #[test]
    fn renders_bars() {
        let s = ChannelCensusFigure::compute(&backend(), W).to_string();
        assert!(s.contains("ch1"));
        assert!(s.contains("ch36"));
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_backend() {
        let fig = ChannelCensusFigure::compute(&Backend::new(), W);
        assert_eq!(fig.ch1_over_ch6(), None);
        assert_eq!(fig.primary_fraction_2_4(), 0.0);
    }
}
