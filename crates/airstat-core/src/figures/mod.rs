//! The paper's figures, one module each.

pub mod channel_census;
pub mod day_night;
pub mod decodable;
pub mod delivery;
pub mod link_timeseries;
pub mod rssi;
pub mod spectrum_scan;
pub mod util_vs_aps;
pub mod utilization;

pub use channel_census::ChannelCensusFigure;
pub use day_night::DayNightFigure;
pub use decodable::DecodableFigure;
pub use delivery::DeliveryFigure;
pub use link_timeseries::LinkTimeseriesFigure;
pub use rssi::RssiFigure;
pub use spectrum_scan::SpectrumFigure;
pub use util_vs_aps::UtilVsApsFigure;
pub use utilization::UtilizationFigure;
