//! Figure 11: USRP-style spectrum analysis near one access point.
//!
//! Paper: 32 MHz scans with a 4096-point FFT at 2.437 GHz (22% utilization,
//! 20 MHz 802.11 frames + 1 MHz frequency-hopping Bluetooth + unidentified
//! narrowband sources) and 5.220 GHz (2% utilization, 20/40 MHz 802.11 with
//! visible frequency-selective fading). We synthesize both captures and
//! summarize occupancy plus an ASCII waterfall.

use airstat_rf::spectrum::{SpectrumScan, Waterfall, BIN_NOISE_FLOOR_DBM};
use airstat_stats::SeedTree;
use std::fmt;
use std::fmt::Write as _;

/// Threshold above which a bin counts as occupied (dB above the floor).
pub const OCCUPANCY_THRESHOLD_DBM: f64 = BIN_NOISE_FLOOR_DBM + 15.0;

/// Figure 11's reproduction: one capture per band.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumFigure {
    /// The 2.437 GHz capture.
    pub scan_2_4: Waterfall,
    /// The 5.220 GHz capture.
    pub scan_5: Waterfall,
}

impl SpectrumFigure {
    /// Captures both bands with `frames` FFT snapshots each.
    pub fn compute(seed: &SeedTree, frames: usize) -> Self {
        let mut rng24 = seed.child("usrp-2.4").rng();
        let mut rng5 = seed.child("usrp-5").rng();
        SpectrumFigure {
            scan_2_4: SpectrumScan::paper_2_4ghz().capture(frames, &mut rng24),
            scan_5: SpectrumScan::paper_5ghz().capture(frames, &mut rng5),
        }
    }

    /// Cell-occupancy fraction of the 2.4 GHz capture (paper: ~22% channel
    /// utilization at the scanned site).
    pub fn occupancy_2_4(&self) -> f64 {
        self.scan_2_4.occupancy_above(OCCUPANCY_THRESHOLD_DBM)
    }

    /// Cell-occupancy fraction of the 5 GHz capture (paper: ~2%).
    pub fn occupancy_5(&self) -> f64 {
        self.scan_5.occupancy_above(OCCUPANCY_THRESHOLD_DBM)
    }

    /// Renders an ASCII waterfall: `rows` frames × `cols` downsampled bins.
    pub fn render_waterfall(w: &Waterfall, rows: usize, cols: usize) -> String {
        const SHADES: &[char] = &[' ', '.', ':', '+', '*', '#'];
        let mut out = String::new();
        let frames = w.num_frames();
        let bins = w.num_bins();
        if frames == 0 || bins == 0 {
            return out;
        }
        for r in 0..rows.min(frames) {
            let frame = &w.frames[r * frames / rows.min(frames)];
            out.push('|');
            for c in 0..cols {
                let lo = c * bins / cols;
                let hi = ((c + 1) * bins / cols).max(lo + 1);
                // airstat::allow(float-fold-order): max is order-insensitive over finite bin powers
                let peak = frame[lo..hi].iter().cloned().fold(f64::MIN, f64::max);
                let rel = (peak - BIN_NOISE_FLOOR_DBM) / 50.0;
                let idx =
                    ((rel * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx]);
            }
            out.push('|');
            out.push('\n');
        }
        let _ = writeln!(
            out,
            " {:.0} MHz {:^width$} {:.0} MHz",
            w.center_mhz - w.span_mhz / 2.0,
            "frequency",
            w.center_mhz + w.span_mhz / 2.0,
            width = cols.saturating_sub(16)
        );
        out
    }
}

impl fmt::Display for SpectrumFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "2.437 GHz scan: occupancy {:.1}% (paper: ~22%, WiFi + Bluetooth hoppers + narrowband)",
            self.occupancy_2_4() * 100.0
        )?;
        f.write_str(&Self::render_waterfall(&self.scan_2_4, 16, 64))?;
        writeln!(
            f,
            "5.220 GHz scan: occupancy {:.1}% (paper: ~2%, 20/40 MHz WiFi with selective fading)",
            self.occupancy_5() * 100.0
        )?;
        f.write_str(&Self::render_waterfall(&self.scan_5, 16, 64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> SpectrumFigure {
        SpectrumFigure::compute(&SeedTree::new(99), 200)
    }

    #[test]
    fn occupancy_ordering_matches_paper() {
        let f = fig();
        let o24 = f.occupancy_2_4();
        let o5 = f.occupancy_5();
        assert!(o24 > 0.03 && o24 < 0.5, "2.4 GHz occupancy {o24}");
        assert!(o5 < o24 / 3.0, "5 GHz should be far quieter: {o5} vs {o24}");
    }

    #[test]
    fn waterfall_dimensions() {
        let f = fig();
        let s = SpectrumFigure::render_waterfall(&f.scan_2_4, 8, 40);
        let data_rows = s.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(data_rows, 8);
        for line in s.lines().filter(|l| l.starts_with('|')) {
            assert_eq!(line.chars().count(), 42);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SpectrumFigure::compute(&SeedTree::new(5), 20);
        let b = SpectrumFigure::compute(&SeedTree::new(5), 20);
        assert_eq!(a, b);
    }

    #[test]
    fn renders_labels() {
        let s = fig().to_string();
        assert!(s.contains("2.437 GHz"));
        assert!(s.contains("5.220 GHz"));
        assert!(s.contains("occupancy"));
    }
}
