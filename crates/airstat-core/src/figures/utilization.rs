//! Figure 6: channel utilization measured by the MR16 serving radios.
//!
//! Paper: the 2.4 GHz median AP sees the energy-detect trigger ~25% of the
//! time, the 90th percentile ~50%; 5 GHz: 5% median, 30% p90. Crucially
//! these numbers describe the AP's *own serving channel* — Figure 9's
//! scanner view is lower because most channels are idle (§5.2).

use airstat_rf::band::Band;
use airstat_stats::Ecdf;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_cdfs;

/// Figure 6's reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationFigure {
    /// Per-AP utilization on the 2.4 GHz serving channel.
    pub util_2_4: Ecdf,
    /// Per-AP utilization on the 5 GHz serving channel.
    pub util_5: Ecdf,
}

impl UtilizationFigure {
    /// Computes the per-AP utilization distributions.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId) -> Self {
        UtilizationFigure {
            util_2_4: Ecdf::new(backend.serving_utilizations(window, Band::Ghz2_4)),
            util_5: Ecdf::new(backend.serving_utilizations(window, Band::Ghz5)),
        }
    }

    /// `(median, p90)` for a band, as fractions.
    pub fn summary(&self, band: Band) -> Option<(f64, f64)> {
        let e = match band {
            Band::Ghz2_4 => &self.util_2_4,
            Band::Ghz5 => &self.util_5,
        };
        Some((e.median()?, e.quantile(0.9)?))
    }
}

impl fmt::Display for UtilizationFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((median, p90)) = self.summary(Band::Ghz2_4) {
            writeln!(
                f,
                "2.4 GHz: median {:.0}%, p90 {:.0}% ({} APs)",
                median * 100.0,
                p90 * 100.0,
                self.util_2_4.len()
            )?;
        }
        if let Some((median, p90)) = self.summary(Band::Ghz5) {
            writeln!(
                f,
                "5 GHz:   median {:.0}%, p90 {:.0}% ({} APs)",
                median * 100.0,
                p90 * 100.0,
                self.util_5.len()
            )?;
        }
        f.write_str(&render_cdfs(
            &[("2.4 GHz", &self.util_2_4), ("5 GHz", &self.util_5)],
            0.0,
            1.0,
            60,
            12,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{AirtimeRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        for (device, busy24, busy5) in [(1u64, 200u64, 50u64), (2, 500, 100), (3, 300, 20)] {
            b.ingest(
                W,
                &Report {
                    device,
                    seq: 0,
                    timestamp_s: 0,
                    payload: ReportPayload::Airtime(vec![
                        AirtimeRecord {
                            channel: Channel::new(Band::Ghz2_4, 6).unwrap(),
                            elapsed_us: 1000,
                            busy_us: busy24,
                            wifi_us: busy24 / 2,
                        },
                        AirtimeRecord {
                            channel: Channel::new(Band::Ghz5, 36).unwrap(),
                            elapsed_us: 1000,
                            busy_us: busy5,
                            wifi_us: busy5,
                        },
                    ]),
                },
            );
        }
        b
    }

    #[test]
    fn distributions_per_band() {
        let fig = UtilizationFigure::compute(&backend(), W);
        assert_eq!(fig.util_2_4.len(), 3);
        assert_eq!(fig.util_5.len(), 3);
        let (median24, p90) = fig.summary(Band::Ghz2_4).unwrap();
        assert!((median24 - 0.3).abs() < 1e-9);
        assert!(p90 > 0.4);
        let (median5, _) = fig.summary(Band::Ghz5).unwrap();
        assert!(median5 < median24);
    }

    #[test]
    fn empty_window() {
        let fig = UtilizationFigure::compute(&Backend::new(), W);
        assert_eq!(fig.summary(Band::Ghz2_4), None);
    }

    #[test]
    fn renders_summaries() {
        let s = UtilizationFigure::compute(&backend(), W).to_string();
        assert!(s.contains("median"));
        assert!(s.contains("p90"));
    }
}
