//! Figure 10: fraction of busy time containing decodable 802.11 headers.
//!
//! Paper: "the majority of the total channel utilization contained
//! decodable 802.11 headers" — most interference is other WiFi, which the
//! 802.11 MAC can at least coordinate with; the remainder is corrupted
//! preambles and non-802.11 energy (Bluetooth, microwave ovens, ...).

use airstat_rf::band::Band;
use airstat_stats::Ecdf;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_cdfs;

/// Minimum utilization for a sample to be included: the decodable share of
/// a nearly idle channel is numerically meaningless.
pub const MIN_UTILIZATION: f64 = 0.02;

/// Figure 10's reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodableFigure {
    /// Decodable fractions on busy 2.4 GHz channel samples.
    pub decodable_2_4: Ecdf,
    /// Decodable fractions on busy 5 GHz channel samples.
    pub decodable_5: Ecdf,
}

impl DecodableFigure {
    /// Computes the distributions over all sufficiently busy scan samples.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId) -> Self {
        let collect = |band| {
            Ecdf::new(
                backend
                    .scan_observations(window, band)
                    .iter()
                    .filter(|o| f64::from(o.record.utilization_ppm) / 1e6 >= MIN_UTILIZATION)
                    .map(|o| f64::from(o.record.decodable_ppm) / 1e6),
            )
        };
        DecodableFigure {
            decodable_2_4: collect(Band::Ghz2_4),
            decodable_5: collect(Band::Ghz5),
        }
    }

    /// Whether the majority of busy time is decodable on a band.
    pub fn majority_decodable(&self, band: Band) -> Option<bool> {
        let e = match band {
            Band::Ghz2_4 => &self.decodable_2_4,
            Band::Ghz5 => &self.decodable_5,
        };
        e.median().map(|m| m > 0.5)
    }
}

impl fmt::Display for DecodableFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "median decodable share: {} (2.4 GHz, {} samples), {} (5 GHz, {} samples)",
            self.decodable_2_4
                .median()
                .map_or("n/a".into(), |m| format!("{:.0}%", m * 100.0)),
            self.decodable_2_4.len(),
            self.decodable_5
                .median()
                .map_or("n/a".into(), |m| format!("{:.0}%", m * 100.0)),
            self.decodable_5.len(),
        )?;
        f.write_str(&render_cdfs(
            &[
                ("2.4 GHz", &self.decodable_2_4),
                ("5 GHz", &self.decodable_5),
            ],
            0.0,
            1.0,
            60,
            12,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ChannelScanRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        let mut put = |util: f64, decodable: f64| {
            seq += 1;
            b.ingest(
                W,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: 0,
                    payload: ReportPayload::ChannelScan(vec![ChannelScanRecord {
                        channel: Channel::new(Band::Ghz2_4, 6).unwrap(),
                        utilization_ppm: (util * 1e6) as u32,
                        decodable_ppm: (decodable * 1e6) as u32,
                        networks: 3,
                    }]),
                },
            );
        };
        put(0.30, 0.90);
        put(0.20, 0.80);
        put(0.25, 0.70);
        put(0.005, 0.0); // idle: excluded
        b
    }

    #[test]
    fn excludes_idle_samples() {
        let fig = DecodableFigure::compute(&backend(), W);
        assert_eq!(fig.decodable_2_4.len(), 3);
        assert_eq!(fig.majority_decodable(Band::Ghz2_4), Some(true));
    }

    #[test]
    fn median_math() {
        let fig = DecodableFigure::compute(&backend(), W);
        assert!((fig.decodable_2_4.median().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_band() {
        let fig = DecodableFigure::compute(&backend(), W);
        assert_eq!(fig.majority_decodable(Band::Ghz5), None);
    }

    #[test]
    fn renders() {
        let s = DecodableFigure::compute(&backend(), W).to_string();
        assert!(s.contains("median decodable share"));
    }
}
