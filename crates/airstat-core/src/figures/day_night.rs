//! Figure 9: channel utilization by day vs night (MR18 scanner view).
//!
//! Paper: CDFs of utilization measured at 10 a.m. and 10 p.m. Pacific.
//! At 2.4 GHz the median channel sees ~5 percentage points more
//! utilization by day; at 5 GHz day and night are similar because most
//! channels are simply unused (which also skews the whole distribution
//! toward zero relative to Figure 6's serving-channel view).

use airstat_rf::band::Band;
use airstat_stats::Ecdf;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_cdfs;

/// Hour-of-day extraction from a device timestamp.
fn hour_of(timestamp_s: u64) -> u64 {
    (timestamp_s % 86_400) / 3_600
}

/// Figure 9's reproduction for one band.
#[derive(Debug, Clone, PartialEq)]
pub struct DayNightFigure {
    /// The band.
    pub band: Band,
    /// Utilization samples taken at the daytime sampling hour.
    pub day: Ecdf,
    /// Utilization samples taken at the nighttime sampling hour.
    pub night: Ecdf,
}

impl DayNightFigure {
    /// Splits the window's scan observations by sampling hour.
    pub fn compute<Q: FleetQuery>(
        backend: &Q,
        window: WindowId,
        band: Band,
        day_hour: u64,
        night_hour: u64,
    ) -> Self {
        let mut day = Vec::new();
        let mut night = Vec::new();
        for o in backend.scan_observations(window, band) {
            let util = f64::from(o.record.utilization_ppm) / 1e6;
            let h = hour_of(o.timestamp_s);
            if h == day_hour {
                day.push(util);
            } else if h == night_hour {
                night.push(util);
            }
        }
        DayNightFigure {
            band,
            day: Ecdf::new(day),
            night: Ecdf::new(night),
        }
    }

    /// Median day-night utilization gap in percentage points.
    pub fn median_gap_points(&self) -> Option<f64> {
        Some((self.day.median()? - self.night.median()?) * 100.0)
    }

    /// Mean day-night gap in percentage points (the medians of sparse
    /// 5 GHz distributions are often both zero; the mean still moves).
    pub fn mean_gap_points(&self) -> Option<f64> {
        Some((self.day.mean()? - self.night.mean()?) * 100.0)
    }
}

impl fmt::Display for DayNightFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} day / {} night samples, median gap {} pts, mean gap {} pts",
            self.band,
            self.day.len(),
            self.night.len(),
            self.median_gap_points()
                .map_or("n/a".into(), |g| format!("{g:.1}")),
            self.mean_gap_points()
                .map_or("n/a".into(), |g| format!("{g:.1}")),
        )?;
        f.write_str(&render_cdfs(
            &[("day (10:00)", &self.day), ("night (22:00)", &self.night)],
            0.0,
            1.0,
            60,
            12,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ChannelScanRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        let mut put = |hour: u64, util: f64| {
            seq += 1;
            b.ingest(
                W,
                &Report {
                    device: 1,
                    seq,
                    timestamp_s: hour * 3600,
                    payload: ReportPayload::ChannelScan(vec![ChannelScanRecord {
                        channel: Channel::new(Band::Ghz2_4, 6).unwrap(),
                        utilization_ppm: (util * 1e6) as u32,
                        decodable_ppm: 900_000,
                        networks: 5,
                    }]),
                },
            );
        };
        for _ in 0..5 {
            put(10, 0.30);
            put(22, 0.25);
            put(3, 0.10); // off-hour sample, must be ignored
        }
        b
    }

    #[test]
    fn splits_by_hour_and_ignores_others() {
        let fig = DayNightFigure::compute(&backend(), W, Band::Ghz2_4, 10, 22);
        assert_eq!(fig.day.len(), 5);
        assert_eq!(fig.night.len(), 5);
        let gap = fig.median_gap_points().unwrap();
        assert!((gap - 5.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn hour_extraction_wraps_days() {
        assert_eq!(hour_of(10 * 3600), 10);
        assert_eq!(hour_of(86_400 + 22 * 3600), 22);
        assert_eq!(hour_of(3 * 86_400), 0);
    }

    #[test]
    fn empty_gap_is_none() {
        let fig = DayNightFigure::compute(&Backend::new(), W, Band::Ghz5, 10, 22);
        assert_eq!(fig.median_gap_points(), None);
        assert_eq!(fig.mean_gap_points(), None);
    }

    #[test]
    fn renders() {
        let s = DayNightFigure::compute(&backend(), W, Band::Ghz2_4, 10, 22).to_string();
        assert!(s.contains("day (10:00)"));
        assert!(s.contains("median gap"));
    }
}
