//! Figures 7 and 8: utilization vs number of nearby APs (scatter).
//!
//! The paper's negative result: "we do not see a clear correlation between
//! utilization and the number of interferers in either band", hence
//! channel planning should use direct utilization measurements. We
//! reproduce the scatter from the MR18 3-minute aggregates and quantify
//! the (lack of) correlation with Pearson's r and Spearman's ρ.

use airstat_rf::band::Band;
use airstat_stats::correlation::{pearson, spearman};
use airstat_store::FleetQuery;
use airstat_telemetry::backend::WindowId;
use std::fmt;

use crate::render::render_scatter;

/// One band's scatter and correlation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilVsApsFigure {
    /// The band (Figure 7: 2.4 GHz; Figure 8: 5 GHz).
    pub band: Band,
    /// `(networks_heard, utilization)` per 3-minute channel sample.
    pub points: Vec<(f64, f64)>,
    /// Pearson correlation coefficient, if computable.
    pub pearson_r: Option<f64>,
    /// Spearman rank correlation, if computable.
    pub spearman_rho: Option<f64>,
}

impl UtilVsApsFigure {
    /// Builds the scatter from all scan observations in the window.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId, band: Band) -> Self {
        let points: Vec<(f64, f64)> = backend
            .scan_observations(window, band)
            .iter()
            .map(|o| {
                (
                    f64::from(o.record.networks),
                    f64::from(o.record.utilization_ppm) / 1e6,
                )
            })
            .collect();
        UtilVsApsFigure {
            band,
            pearson_r: pearson(&points),
            spearman_rho: spearman(&points),
            points,
        }
    }

    /// The paper's conclusion holds when neither correlation is strong.
    pub fn no_clear_correlation(&self, threshold: f64) -> bool {
        let weak = |r: Option<f64>| r.map_or(true, |v| v.abs() < threshold);
        weak(self.pearson_r) && weak(self.spearman_rho)
    }
}

impl fmt::Display for UtilVsApsFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} samples, Pearson r = {}, Spearman rho = {}",
            self.band,
            self.points.len(),
            self.pearson_r.map_or("n/a".into(), |r| format!("{r:.3}")),
            self.spearman_rho
                .map_or("n/a".into(), |r| format!("{r:.3}")),
        )?;
        // airstat::allow(float-fold-order): max is order-insensitive over finite x coordinates
        let x_hi = self.points.iter().map(|p| p.0).fold(1.0f64, f64::max);
        f.write_str(&render_scatter(&self.points, 60, 14, x_hi, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_rf::band::Channel;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{ChannelScanRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend_with(points: &[(u32, f64)]) -> Backend {
        let mut b = Backend::new();
        for (i, &(networks, util)) in points.iter().enumerate() {
            b.ingest(
                W,
                &Report {
                    device: 1,
                    seq: i as u64,
                    timestamp_s: 0,
                    payload: ReportPayload::ChannelScan(vec![ChannelScanRecord {
                        channel: Channel::new(Band::Ghz2_4, 6).unwrap(),
                        utilization_ppm: (util * 1e6) as u32,
                        decodable_ppm: 900_000,
                        networks,
                    }]),
                },
            );
        }
        b
    }

    #[test]
    fn correlated_data_detected() {
        // Strongly correlated points → figure must say so.
        let points: Vec<(u32, f64)> = (0..50).map(|i| (i, f64::from(i) / 60.0)).collect();
        let fig = UtilVsApsFigure::compute(&backend_with(&points), W, Band::Ghz2_4);
        assert!(fig.pearson_r.unwrap() > 0.95);
        assert!(!fig.no_clear_correlation(0.4));
    }

    #[test]
    fn uncorrelated_data_passes_paper_check() {
        // Deterministic pseudo-independent data.
        let points: Vec<(u32, f64)> = (0..200)
            .map(|i| ((i * 7) % 40, f64::from((i * 13) % 100) / 100.0))
            .collect();
        let fig = UtilVsApsFigure::compute(&backend_with(&points), W, Band::Ghz2_4);
        assert!(fig.no_clear_correlation(0.4), "r = {:?}", fig.pearson_r);
    }

    #[test]
    fn utilization_scaled_from_ppm() {
        let fig = UtilVsApsFigure::compute(&backend_with(&[(10, 0.25)]), W, Band::Ghz2_4);
        assert_eq!(fig.points.len(), 1);
        assert!((fig.points[0].1 - 0.25).abs() < 1e-6);
        assert!((fig.points[0].0 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_na() {
        let fig = UtilVsApsFigure::compute(&Backend::new(), W, Band::Ghz5);
        assert_eq!(fig.pearson_r, None);
        assert!(fig.no_clear_correlation(0.4));
        assert!(fig.to_string().contains("n/a"));
    }
}
