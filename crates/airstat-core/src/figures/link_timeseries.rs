//! Figures 4 and 5: delivery-ratio variation over a week for sample links.
//!
//! The paper plots two randomly chosen links per band. We pick, per band,
//! the links whose mean ratio is most "intermediate" (closest to 0.5 and
//! 0.75) so the plots show the interesting dynamics, then render their
//! week-long series.

use airstat_rf::band::Band;
use airstat_store::FleetQuery;
use airstat_telemetry::backend::{LinkKey, WindowId};
use std::fmt;

/// One link's plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSeries {
    /// Which link.
    pub key: LinkKey,
    /// `(timestamp_s, delivery_ratio)` points across the week.
    pub points: Vec<(u64, f64)>,
}

impl LinkSeries {
    /// Mean ratio across the series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        // airstat::allow(float-fold-order): points is one link's series in sealed time order, identical for every shard/thread count
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// Peak-to-trough swing of the series.
    pub fn swing(&self) -> f64 {
        // airstat::allow(float-fold-order): max is order-insensitive over finite samples
        let max = self.points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        // airstat::allow(float-fold-order): min is order-insensitive over finite samples
        let min = self.points.iter().map(|p| p.1).fold(f64::MAX, f64::min);
        if self.points.is_empty() {
            0.0
        } else {
            max - min
        }
    }
}

/// Figures 4/5: sample link series for one band.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTimeseriesFigure {
    /// The band plotted (Figure 4: 2.4 GHz; Figure 5: 5 GHz).
    pub band: Band,
    /// The selected sample links (two in the paper).
    pub series: Vec<LinkSeries>,
}

impl LinkTimeseriesFigure {
    /// Selects `count` links with mean ratios nearest the given anchors
    /// and extracts their series.
    pub fn compute<Q: FleetQuery>(backend: &Q, window: WindowId, band: Band, count: usize) -> Self {
        let anchors = [0.5, 0.75, 0.3, 0.9];
        let keys = backend.link_keys(window, band);
        let mut scored: Vec<(LinkKey, f64)> = keys
            .into_iter()
            .filter_map(|key| {
                let obs = backend.link_series(window, key);
                if obs.len() < 4 {
                    return None;
                }
                // airstat::allow(float-fold-order): obs comes back from the store in sealed CSR order, identical for every shard/thread count
                let mean = obs.iter().map(|o| o.ratio).sum::<f64>() / obs.len() as f64;
                Some((key, mean))
            })
            .collect();
        let mut series = Vec::new();
        for (i, anchor) in anchors.iter().enumerate() {
            if series.len() >= count || scored.is_empty() {
                break;
            }
            let _ = i;
            // Closest remaining link to this anchor.
            let (pos, _) = scored
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (a.1 .1 - anchor)
                        .abs()
                        .partial_cmp(&(b.1 .1 - anchor).abs())
                        .expect("invariant: these floats are finite by construction, so partial_cmp is total")
                })
                .expect("invariant: scored checked non-empty by the len() guard above");
            let (key, _) = scored.swap_remove(pos);
            let points = backend
                .link_series(window, key)
                .iter()
                .map(|o| (o.timestamp_s, o.ratio))
                .collect();
            series.push(LinkSeries { key, points });
        }
        LinkTimeseriesFigure { band, series }
    }
}

impl fmt::Display for LinkTimeseriesFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.series {
            writeln!(
                f,
                "link {} -> {} ({}): mean {:.2}, swing {:.2}",
                s.key.tx_device,
                s.key.rx_device,
                self.band,
                s.mean(),
                s.swing()
            )?;
            // Sparkline: one character per observation, 9 levels.
            const LEVELS: &[char] = &['_', '.', ':', '-', '=', '+', '*', '%', '#'];
            let line: String = s
                .points
                .iter()
                .map(|&(_, r)| {
                    let idx = (r * (LEVELS.len() - 1) as f64).round() as usize;
                    LEVELS[idx.min(LEVELS.len() - 1)]
                })
                .collect();
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_telemetry::backend::Backend;
    use airstat_telemetry::report::{LinkRecord, Report, ReportPayload};

    const W: WindowId = WindowId(1501);

    fn backend() -> Backend {
        let mut b = Backend::new();
        let mut seq = 0;
        // Link A: hovers near 0.5. Link B: near 1.0. Link C: near 0.75.
        for (tx, base) in [(10u64, 10u32), (11, 20), (12, 15)] {
            for t in 0..10u64 {
                seq += 1;
                b.ingest(
                    W,
                    &Report {
                        device: 1,
                        seq,
                        timestamp_s: t * 3600,
                        payload: ReportPayload::Links(vec![LinkRecord {
                            peer_device: tx,
                            band: Band::Ghz2_4,
                            probes_expected: 20,
                            probes_received: base.min(20),
                        }]),
                    },
                );
            }
        }
        b
    }

    #[test]
    fn selects_intermediate_links_first() {
        let fig = LinkTimeseriesFigure::compute(&backend(), W, Band::Ghz2_4, 2);
        assert_eq!(fig.series.len(), 2);
        // First anchor is 0.5 → link with tx=10 (ratio 0.5).
        assert_eq!(fig.series[0].key.tx_device, 10);
        assert!((fig.series[0].mean() - 0.5).abs() < 1e-9);
        // Second anchor 0.75 → tx=12.
        assert_eq!(fig.series[1].key.tx_device, 12);
    }

    #[test]
    fn series_have_full_week() {
        let fig = LinkTimeseriesFigure::compute(&backend(), W, Band::Ghz2_4, 1);
        assert_eq!(fig.series[0].points.len(), 10);
        assert_eq!(fig.series[0].points[3].0, 3 * 3600);
    }

    #[test]
    fn handles_fewer_links_than_requested() {
        let fig = LinkTimeseriesFigure::compute(&backend(), W, Band::Ghz2_4, 10);
        assert_eq!(fig.series.len(), 3);
        let empty = LinkTimeseriesFigure::compute(&Backend::new(), W, Band::Ghz2_4, 2);
        assert!(empty.series.is_empty());
    }

    #[test]
    fn renders_sparklines() {
        let s = LinkTimeseriesFigure::compute(&backend(), W, Band::Ghz2_4, 2).to_string();
        assert!(s.contains("mean 0.50"));
        assert!(s.lines().count() >= 4);
    }
}
