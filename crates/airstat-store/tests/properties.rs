//! Property tests for the sharded store.
//!
//! The determinism contract, attacked from proptest's corner: for any
//! report batch (including wire-level duplicate retransmissions), the
//! aggregates the paper's tables hang off — `usage_by_os`,
//! `client_count`, `duplicates_dropped` — are invariant under both the
//! ingest-order permutation and the shard count. The reference is always
//! the unsharded store fed in generation order.

use airstat_classify::apps::Application;
use airstat_classify::device::OsFamily;
use airstat_classify::mac::MacAddress;
use airstat_rf::band::{Band, Channel};
use airstat_rf::phy::{Capabilities, Generation};
use airstat_stats::rng::splitmix64;
use airstat_store::{FleetQuery, QueryBackend, QueryEngine, ShardedStore, StoreConfig};
use airstat_telemetry::backend::WindowId;
use airstat_telemetry::report::{
    ChannelScanRecord, ClientInfoRecord, LinkRecord, NeighborRecord, Report, ReportPayload,
    UsageRecord,
};
use proptest::prelude::*;

const W: WindowId = WindowId(1501);
/// A window no generated report ever lands in: zone maps prune every
/// shard, and the pruned result must still equal the full scan's.
const W_EMPTY: WindowId = WindowId(1407);

fn any_mac() -> impl Strategy<Value = MacAddress> {
    // A small MAC space so distinct reports collide on clients, exercising
    // the cross-shard merge rules rather than pure unions.
    (0u8..6).prop_map(|i| MacAddress::new([2, 0, 0, 0, 0, i]))
}

fn any_payload() -> impl Strategy<Value = ReportPayload> {
    prop_oneof![
        prop::collection::vec(
            (any_mac(), 0usize..Application::ALL.len(), any::<u32>()).prop_map(
                |(mac, app, bytes)| UsageRecord {
                    mac,
                    app: Application::ALL[app],
                    up_bytes: u64::from(bytes),
                    down_bytes: u64::from(bytes) * 9,
                }
            ),
            0..6
        )
        .prop_map(ReportPayload::Usage),
        prop::collection::vec(
            (any_mac(), 0usize..OsFamily::ALL.len(), -90.0f64..-30.0).prop_map(
                |(mac, os, rssi_dbm)| ClientInfoRecord {
                    mac,
                    os: OsFamily::ALL[os],
                    caps: Capabilities::new(Generation::N, true, false, 2),
                    band: Band::Ghz2_4,
                    rssi_dbm,
                }
            ),
            0..6
        )
        .prop_map(ReportPayload::ClientInfo),
        prop::collection::vec(
            (any::<u8>(), 1u32..100).prop_map(|(peer, expected)| LinkRecord {
                peer_device: u64::from(peer),
                band: Band::Ghz5,
                probes_expected: expected,
                probes_received: expected / 2,
            }),
            0..6
        )
        .prop_map(ReportPayload::Links),
        prop::collection::vec(
            (any_channel(), 0u32..40, 0u32..10).prop_map(|(channel, networks, hotspots)| {
                NeighborRecord {
                    channel,
                    networks,
                    hotspots: hotspots.min(networks),
                }
            }),
            0..6
        )
        .prop_map(ReportPayload::Neighbors),
        prop::collection::vec(
            (any_channel(), 0u32..1_000_000, 0u32..1_000_000, 0u32..40).prop_map(
                |(channel, utilization_ppm, decodable_ppm, networks)| ChannelScanRecord {
                    channel,
                    utilization_ppm,
                    decodable_ppm: decodable_ppm.min(utilization_ppm),
                    networks,
                }
            ),
            0..6
        )
        .prop_map(ReportPayload::ChannelScan),
    ]
}

fn any_channel() -> impl Strategy<Value = Channel> {
    (any::<bool>(), any::<u16>()).prop_map(|(five_ghz, pick)| {
        let band = if five_ghz { Band::Ghz5 } else { Band::Ghz2_4 };
        let all = Channel::all_in(band);
        all[usize::from(pick) % all.len()]
    })
}

/// Deterministic Fisher–Yates driven by `splitmix64`, so every failing
/// case shrinks reproducibly (the vendored proptest has no shuffle
/// strategy).
fn shuffle(reports: &[Report], salt: u64) -> Vec<Report> {
    let mut out = reports.to_vec();
    let mut state = salt;
    for i in (1..out.len()).rev() {
        state = splitmix64(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let j = (state % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// The aggregate triple under test, from one ingest of `reports`.
fn aggregates(
    reports: &[Report],
    shards: usize,
    threads: usize,
) -> (
    Vec<(OsFamily, airstat_telemetry::backend::UsageTotals, u64)>,
    usize,
    u64,
) {
    let mut store = ShardedStore::with_config(StoreConfig { shards, threads });
    store.ingest_batch(W, reports);
    let duplicates = store.duplicates_dropped();
    let engine = QueryEngine::new(store.seal(), threads);
    (engine.usage_by_os(W), engine.client_count(W), duplicates)
}

proptest! {
    #[test]
    fn aggregates_are_order_and_shard_invariant(
        payloads in prop::collection::vec(any_payload(), 1..20),
        dup_salt in any::<u64>(),
        order_salt in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..4,
    ) {
        // Unique (device, seq) per generated report; a pseudo-random
        // subset is retransmitted verbatim, as the lossy tunnel would.
        let base: Vec<Report> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| Report {
                device: (i % 5) as u64,
                seq: (i / 5) as u64 + 1,
                timestamp_s: 1_000 + i as u64,
                payload,
            })
            .collect();
        let mut reports = base.clone();
        let mut state = dup_salt;
        for report in &base {
            state = splitmix64(state);
            if state % 3 == 0 {
                reports.push(report.clone());
            }
        }

        let reference = aggregates(&reports, 1, 1);
        let permuted = aggregates(&shuffle(&reports, order_salt), shards, threads);
        prop_assert_eq!(&reference, &permuted);
        // And the expected duplicate count is exactly the retransmissions.
        prop_assert_eq!(reference.2, (reports.len() - base.len()) as u64);
    }

    /// The columnar projection a `seal()` builds is a pure function of
    /// the aggregate state: feeding the same batch in any order yields
    /// column-for-column identical `ColumnarShard`s.
    #[test]
    fn columnar_projection_is_ingest_order_invariant(
        payloads in prop::collection::vec(any_payload(), 1..20),
        order_salt in any::<u64>(),
        shards in 1usize..9,
        threads in 1usize..4,
    ) {
        let reports: Vec<Report> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| Report {
                device: (i % 5) as u64,
                seq: (i / 5) as u64 + 1,
                timestamp_s: 1_000 + i as u64,
                payload,
            })
            .collect();

        let mut in_order = ShardedStore::with_config(StoreConfig { shards, threads });
        in_order.ingest_batch(W, &reports);
        let mut permuted = ShardedStore::with_config(StoreConfig { shards, threads });
        permuted.ingest_batch(W, &shuffle(&reports, order_salt));

        let (a, b) = (in_order.seal(), permuted.seal());
        prop_assert_eq!(a.columnar(), b.columnar());
    }

    /// Zone-map pruning is invisible in results: for any fleet and any
    /// filter the vectorized path (which skips shards whose zone maps
    /// cannot match) answers identically to the columnar full scan —
    /// including on a window no report ever touched, where pruning
    /// rejects every shard.
    #[test]
    fn pruned_execution_matches_unpruned_full_scan(
        payloads in prop::collection::vec(any_payload(), 1..20),
        shards in 1usize..9,
        threads in 1usize..4,
    ) {
        let reports: Vec<Report> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| Report {
                device: (i % 5) as u64,
                seq: (i / 5) as u64 + 1,
                timestamp_s: 1_000 + i as u64,
                payload,
            })
            .collect();
        let mut store = ShardedStore::with_config(StoreConfig { shards, threads });
        store.ingest_batch(W, &reports);
        let snapshot = store.seal();
        let pruned =
            QueryEngine::with_backend(snapshot.clone(), threads, QueryBackend::Vectorized);
        let full = QueryEngine::with_backend(snapshot, threads, QueryBackend::Columnar);

        for window in [W, W_EMPTY] {
            prop_assert_eq!(pruned.usage_by_app(window), full.usage_by_app(window));
            prop_assert_eq!(pruned.usage_by_os(window), full.usage_by_os(window));
            prop_assert_eq!(pruned.client_count(window), full.client_count(window));
            prop_assert_eq!(pruned.clients(window), full.clients(window));
            for &app in Application::ALL {
                prop_assert_eq!(
                    pruned.app_client_count(window, app),
                    full.app_client_count(window, app)
                );
            }
            prop_assert_eq!(
                pruned.census_device_count(window),
                full.census_device_count(window)
            );
            for band in [Band::Ghz2_4, Band::Ghz5] {
                let keys = pruned.link_keys(window, band);
                prop_assert_eq!(&keys, &full.link_keys(window, band));
                for key in keys {
                    prop_assert_eq!(
                        pruned.link_series(window, key),
                        full.link_series(window, key)
                    );
                }
                prop_assert_eq!(
                    pruned.latest_delivery_ratios(window, band),
                    full.latest_delivery_ratios(window, band)
                );
                prop_assert_eq!(
                    pruned.mean_delivery_ratios(window, band),
                    full.mean_delivery_ratios(window, band)
                );
                prop_assert_eq!(
                    pruned.serving_utilizations(window, band),
                    full.serving_utilizations(window, band)
                );
                prop_assert_eq!(
                    pruned.nearby_summary(window, band),
                    full.nearby_summary(window, band)
                );
                prop_assert_eq!(
                    pruned.nearby_per_channel(window, band),
                    full.nearby_per_channel(window, band)
                );
                prop_assert_eq!(
                    pruned.scan_observations(window, band),
                    full.scan_observations(window, band)
                );
            }
            prop_assert_eq!(
                pruned.crashes(window).is_some(),
                full.crashes(window).is_some()
            );
        }
        // The pruned engine must actually have pruned something on the
        // empty window sweep (every shard's zone map rejects it).
        prop_assert!(pruned.stats().shards_pruned > 0, "zone maps never fired");
    }

    /// Seal placement is invisible in results: chopping one ingest
    /// stream into chunks and sealing after every 1st, 3rd, 7th, or no
    /// intermediate chunk leaves every backend's answers identical to
    /// the single monolithic seal — whatever delta-segment stacks and
    /// compaction schedules each cadence produced along the way.
    #[test]
    fn results_are_seal_placement_invariant(
        payloads in prop::collection::vec(any_payload(), 1..20),
        shards in 1usize..9,
        threads in 1usize..4,
    ) {
        let reports: Vec<Report> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| Report {
                device: (i % 5) as u64,
                seq: (i / 5) as u64 + 1,
                timestamp_s: 1_000 + i as u64,
                payload,
            })
            .collect();
        let mut monolithic = ShardedStore::with_config(StoreConfig { shards, threads });
        monolithic.ingest_batch(W, &reports);
        let reference = QueryEngine::new(monolithic.seal(), threads);

        for seal_every in [1usize, 3, 7, usize::MAX] {
            let mut store = ShardedStore::with_config(StoreConfig { shards, threads });
            let mut sealed_mid_stream = 0u64;
            for (i, chunk) in reports.chunks(2).enumerate() {
                store.ingest_batch(W, chunk);
                if (i + 1) % seal_every == 0 {
                    let _ = store.seal();
                    sealed_mid_stream += 1;
                }
            }
            let snapshot = store.seal();
            prop_assert!(
                snapshot.seal_stats().seals_total >= sealed_mid_stream,
                "seal counters went backwards"
            );
            for backend in [
                QueryBackend::Planner,
                QueryBackend::Vectorized,
                QueryBackend::Columnar,
                QueryBackend::Legacy,
            ] {
                let engine = QueryEngine::with_backend(snapshot.clone(), threads, backend);
                prop_assert_eq!(engine.usage_by_app(W), reference.usage_by_app(W));
                prop_assert_eq!(engine.usage_by_os(W), reference.usage_by_os(W));
                prop_assert_eq!(engine.client_count(W), reference.client_count(W));
                prop_assert_eq!(engine.clients(W), reference.clients(W));
                prop_assert_eq!(
                    engine.census_device_count(W),
                    reference.census_device_count(W)
                );
                for band in [Band::Ghz2_4, Band::Ghz5] {
                    let keys = engine.link_keys(W, band);
                    prop_assert_eq!(&keys, &reference.link_keys(W, band));
                    for key in keys {
                        prop_assert_eq!(
                            engine.link_series(W, key),
                            reference.link_series(W, key)
                        );
                    }
                    prop_assert_eq!(
                        engine.mean_delivery_ratios(W, band),
                        reference.mean_delivery_ratios(W, band)
                    );
                    prop_assert_eq!(
                        engine.nearby_summary(W, band),
                        reference.nearby_summary(W, band)
                    );
                    prop_assert_eq!(
                        engine.nearby_per_channel(W, band),
                        reference.nearby_per_channel(W, band)
                    );
                    prop_assert_eq!(
                        engine.scan_observations(W, band),
                        reference.scan_observations(W, band)
                    );
                }
            }
        }
    }
}
