//! airstat-store: a sharded, snapshot-isolated aggregation store with a
//! parallel, cached query engine.
//!
//! The legacy [`airstat_telemetry::backend::Backend`] is a single
//! monolithic aggregate: one dedup table, one set of per-window maps,
//! serial ingest, borrowing queries. This crate subsumes it for the
//! production path:
//!
//! * [`store::ShardedStore`] hash-partitions reports by
//!   `(window, device)` across a configurable shard count and ingests
//!   shards in parallel through [`exec::run_ordered`] — byte-identical
//!   results for every shard and thread count.
//! * [`store::Snapshot`] freezes an epoch via cheap copy-on-write
//!   `seal()`, so analytics run against immutable state while the next
//!   epoch fills.
//! * [`query::QueryEngine`] executes typed [`query::QueryPlan`]s per
//!   shard and merges the partials in globally canonical order, with an
//!   epoch-keyed LRU result cache whose counters surface in
//!   [`query::StoreStats`].
//! * [`query::FleetQuery`] abstracts the query surface over both the
//!   legacy backend and the engine, which is what the differential
//!   equivalence tests lean on.
//!
//! # Module map
//!
//! | module | contents |
//! |---|---|
//! | [`exec`] | [`exec::run_ordered`] deterministic ordered fan-out |
//! | [`shard`] | [`shard::StoreShard`] per-shard tables + order-independent dedup |
//! | [`store`] | [`store::ShardedStore`], [`store::Snapshot`], [`store::ReportSink`] |
//! | [`query`] | [`query::QueryPlan`], [`query::QueryEngine`], [`query::ResultCache`] |
//! | [`columnar`] | [`columnar::ColumnarShard`] packed struct-of-arrays read layout |
//! | [`segment`] | on-disk segments, manifest, tail log, [`segment::DurableStore`] |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod columnar;
pub mod exec;
pub mod query;
pub mod segment;
pub mod shard;
pub mod store;

pub use columnar::{ColumnarShard, WindowZoneMap};
pub use query::{
    FleetQuery, QueryBackend, QueryEngine, QueryPlan, QueryValue, ResultCache, StoreStats,
};
pub use segment::{
    DurableStore, PersistenceStats, RecoveryStats, SegmentError, SEGMENT_SCHEMA_VERSION,
};
pub use shard::StoreShard;
pub use store::{
    ReportSink, SealEvery, SealStats, Sealable, SegmentStack, ShardedStore, Snapshot, StoreConfig,
    DEFAULT_SHARDS,
};
