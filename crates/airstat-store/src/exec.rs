//! Deterministic fan-out for independent work units.
//!
//! The fleet engine's panels decompose into work units (one usage batch,
//! one AP's radio week, one AP's scan week) whose randomness descends
//! from per-unit `SeedTree` nodes — so each unit's result depends only on
//! its index, never on execution order. The store reuses the same
//! discipline for per-shard ingest and per-shard query execution: a
//! shard's result depends only on the shard's contents, never on which
//! worker computed it. [`run_ordered`] exploits that: it
//! fans units out across a scoped thread pool but hands results to the
//! caller's sink **in ascending unit order**, buffered through a reorder
//! window. The net effect is that `threads = N` produces byte-identical
//! output to the strictly serial `threads = 1` path, which is kept as a
//! degenerate case (no pool, no channel, no buffering).
//!
//! Built on `std` only (`thread::scope` + `mpsc` + an atomic work
//! counter): the build environment is offline, so no rayon/crossbeam.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `unit(0..n)` and feeds each result to `sink` in ascending index
/// order.
///
/// * `threads <= 1` (or `n <= 1`): plain serial loop, no threads spawned.
/// * otherwise: `min(threads, n)` workers pull indices from a shared
///   atomic counter; finished results stream back over a channel and a
///   reorder buffer releases them to `sink` in index order.
///
/// `sink` always runs on the calling thread, so it may freely mutate
/// caller state (e.g. ingest into a backend).
///
/// # Panics
/// A panicking unit propagates to the caller when its worker thread is
/// joined at scope exit.
pub fn run_ordered<T, U, S>(threads: usize, n: usize, unit: U, mut sink: S)
where
    T: Send,
    U: Fn(usize) -> T + Sync,
    S: FnMut(usize, T),
{
    if threads <= 1 || n <= 1 {
        for index in 0..n {
            sink(index, unit(index));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let unit = &unit;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n || tx.send((index, unit(index))).is_err() {
                    break;
                }
            });
        }
        // The workers own the remaining senders; dropping ours lets the
        // receive loop end once every unit has reported.
        drop(tx);
        let mut pending: BTreeMap<usize, T> = BTreeMap::new();
        let mut expected = 0usize;
        for (index, result) in rx {
            pending.insert(index, result);
            while let Some(result) = pending.remove(&expected) {
                sink(expected, result);
                expected += 1;
            }
        }
        assert!(pending.is_empty(), "all unit results must be released");
        assert_eq!(expected, n, "every unit must complete");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let unit = |i: usize| (i as u64) * 3 + 1;
        for threads in [1usize, 2, 4, 9] {
            let mut seen = Vec::new();
            run_ordered(threads, 37, unit, |i, v| seen.push((i, v)));
            let expected: Vec<_> = (0..37).map(|i| (i, unit(i))).collect();
            assert_eq!(seen, expected, "threads={threads}");
        }
    }

    #[test]
    fn sink_sees_results_in_index_order() {
        // Make early units slow so late results arrive at the channel
        // first; the reorder buffer must still release in order.
        let unit = |i: usize| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
            }
            i
        };
        let mut order = Vec::new();
        run_ordered(4, 16, unit, |i, _| order.push(i));
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sink_can_mutate_caller_state() {
        let mut total = 0u64;
        run_ordered(3, 100, |i| i as u64, |_, v| total += v);
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn zero_units_is_a_no_op() {
        run_ordered(
            4,
            0,
            |_| unreachable!("no units"),
            |_, ()| unreachable!("no results"),
        );
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let mut seen = Vec::new();
        run_ordered(16, 3, |i| i, |_, v| seen.push(v));
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
