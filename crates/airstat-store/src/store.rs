//! The sharded, snapshot-isolated store.
//!
//! [`ShardedStore`] routes every report to one [`StoreShard`] by hashing
//! `(window, device)`, ingests shards in parallel through
//! [`crate::exec::run_ordered`], and hands out immutable epoch-numbered
//! [`Snapshot`]s for the query engine. Snapshots are copy-on-write: a
//! `seal()` is a handful of `Arc` clones, and ingest after a seal lazily
//! clones only the shards it actually touches (`Arc::make_mut`), so
//! queries keep running against frozen state while the next epoch fills.

use std::path::Path;
use std::sync::{Arc, Mutex};

use airstat_stats::rng::splitmix64;
use airstat_telemetry::backend::{Backend, WindowId};
use airstat_telemetry::report::Report;

use crate::columnar::ColumnarShard;
use crate::exec::run_ordered;
use crate::segment::{self, PersistenceStats, RecoveryStats, SegmentError};
use crate::shard::StoreShard;

/// Store shape and ingest parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of shards (at least 1). Results are byte-identical for
    /// every value; this only controls partitioning.
    pub shards: usize,
    /// Worker threads for parallel ingest (at least 1). Byte-identical
    /// for every value.
    pub threads: usize,
}

/// Default shard count: enough partitions that an 8-way host can ingest
/// and query with full parallelism at paper scale.
pub const DEFAULT_SHARDS: usize = 8;

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: DEFAULT_SHARDS,
            threads: 1,
        }
    }
}

/// Batches smaller than this ingest serially: routing a handful of
/// reports across a thread pool costs more than the ingest itself.
const PARALLEL_INGEST_MIN: usize = 1024;

/// A sharded aggregation store (the fleet backend at scale).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<StoreShard>>,
    epoch: u64,
    config: StoreConfig,
    /// Memoized columnar projection for the current epoch, so repeated
    /// `seal()` calls against unchanged state (the common read pattern)
    /// build the read-optimized layout once. Keyed by epoch: any ingest
    /// bumps the epoch and naturally invalidates it.
    columnar: Mutex<Option<(u64, Vec<Arc<ColumnarShard>>)>>,
    /// Cumulative on-disk activity ([`ShardedStore::persist`] /
    /// [`ShardedStore::open`]), carried into snapshots for `StoreStats`.
    persistence: PersistenceStats,
}

impl Clone for ShardedStore {
    fn clone(&self) -> Self {
        ShardedStore {
            shards: self.shards.clone(),
            epoch: self.epoch,
            config: self.config,
            columnar: Mutex::new(self.columnar.lock().expect("invariant: columnar lock is never poisoned (projection code does not panic)").clone()),
            persistence: self.persistence,
        }
    }
}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::with_config(StoreConfig::default())
    }
}

impl ShardedStore {
    /// Creates an empty store with `shards` partitions (serial ingest).
    pub fn new(shards: usize) -> Self {
        ShardedStore::with_config(StoreConfig {
            shards,
            ..StoreConfig::default()
        })
    }

    /// Creates an empty store with the given shape.
    pub fn with_config(config: StoreConfig) -> Self {
        let shards = config.shards.max(1);
        ShardedStore {
            shards: (0..shards)
                .map(|_| Arc::new(StoreShard::default()))
                .collect(),
            epoch: 0,
            config: StoreConfig {
                shards,
                threads: config.threads.max(1),
            },
            columnar: Mutex::new(None),
            persistence: PersistenceStats::default(),
        }
    }

    /// Persists the current state into `dir` as a committed segment set
    /// (one segment file per shard plus a manifest) and resets the tail
    /// log, returning what this call wrote. The write order makes the
    /// manifest rename the single commit point — see
    /// [`crate::segment`] and docs/SEGMENT_FORMAT.md §6.
    pub fn persist(&mut self, dir: &Path) -> Result<PersistenceStats, SegmentError> {
        let stats = segment::write_store(&self.shards, self.epoch, dir)?;
        self.persistence.absorb(stats);
        Ok(stats)
    }

    /// Opens the store persisted in `dir`, replaying any tail-log
    /// records appended after the last persist (docs/SEGMENT_FORMAT.md
    /// §7) so a crashed run recovers to its exact pre-crash query
    /// surface.
    ///
    /// The manifest's shard count is authoritative — `config.shards` is
    /// ignored when a committed store exists (partitioning is baked into
    /// the segment files); `config.threads` still applies. A directory
    /// with no manifest yields a fresh empty store shaped by `config`
    /// (plus any tail-log records, for a run that crashed before its
    /// first persist).
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> Result<(ShardedStore, RecoveryStats), SegmentError> {
        let mut recovery = RecoveryStats::default();
        let mut store = match segment::read_store(dir)? {
            Some(loaded) => {
                recovery.segments_loaded = loaded.shards.len() as u64;
                recovery.bytes_read = loaded.bytes_read;
                recovery.crc_checks = loaded.crc_checks;
                let shards: Vec<Arc<StoreShard>> =
                    loaded.shards.into_iter().map(Arc::new).collect();
                ShardedStore {
                    config: StoreConfig {
                        shards: shards.len(),
                        threads: config.threads.max(1),
                    },
                    shards,
                    epoch: loaded.epoch,
                    columnar: Mutex::new(None),
                    persistence: PersistenceStats::default(),
                }
            }
            None => ShardedStore::with_config(config),
        };
        // Replaying through `ingest_batch` bumps the epoch once per
        // record — exactly as the original ingest did — so the
        // recovered store resumes on the pre-crash epoch trajectory.
        let replay = segment::read_wal(dir, store.epoch)?;
        for (window, reports) in &replay.batches {
            store.ingest_batch(*window, reports);
        }
        recovery.epoch = store.epoch;
        if replay.valid_len > 0 {
            // Tail-log header + one check per replayed record.
            recovery.crc_checks += 1 + replay.batches.len() as u64;
        }
        recovery.wal_records_replayed = replay.batches.len() as u64;
        recovery.wal_reports_recovered = replay.reports;
        recovery.wal_bytes_discarded = replay.bytes_discarded;
        recovery.wal_stale = replay.stale;
        recovery.wal_valid_len = replay.valid_len;
        store.persistence = PersistenceStats {
            segments_written: 0,
            segments_loaded: recovery.segments_loaded,
            bytes_written: 0,
            bytes_read: recovery.bytes_read,
            crc_checks: recovery.crc_checks,
            wal_records_replayed: recovery.wal_records_replayed,
        };
        Ok((store, recovery))
    }

    /// Cumulative persistence counters (zero unless this store was
    /// opened from disk or has been persisted).
    pub fn persistence(&self) -> PersistenceStats {
        self.persistence
    }

    /// The store's shape.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current epoch (bumped by every accepted ingest batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Which shard `(window, device)` routes to.
    pub fn shard_of(&self, window: WindowId, device: u64) -> usize {
        shard_index(window, device, self.shards.len())
    }

    /// Reports accepted across all shards (excluding duplicates).
    pub fn reports_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.reports_ingested()).sum()
    }

    /// Duplicate reports rejected across all shards.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_dropped()).sum()
    }

    /// Ingests a batch of reports into `window`, returning how many were
    /// accepted (non-duplicates).
    ///
    /// Reports are routed to their shards in batch order (per-device
    /// arrival order is preserved) and the shards then ingest
    /// independently — in parallel via [`run_ordered`] when the batch is
    /// large enough and `threads > 1`, serially otherwise. Both paths
    /// produce identical state, so the thread count never changes a
    /// query answer.
    pub fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        if reports.is_empty() {
            return 0;
        }
        self.epoch += 1;
        let n = self.shards.len();
        let mut routed: Vec<Vec<&Report>> = (0..n).map(|_| Vec::new()).collect();
        for report in reports {
            routed[shard_index(window, report.device, n)].push(report);
        }
        let threads = self.config.threads;
        let mut accepted = 0u64;
        if threads > 1 && reports.len() >= PARALLEL_INGEST_MIN {
            // Each worker takes exclusive ownership of one shard slot; the
            // mutexes are uncontended (one lock per shard per batch) and
            // only exist to hand `&mut StoreShard` across the scope.
            let slots: Vec<Mutex<&mut StoreShard>> = self
                .shards
                .iter_mut()
                .map(|shard| Mutex::new(Arc::make_mut(shard)))
                .collect();
            run_ordered(
                threads,
                n,
                |i| {
                    let mut shard = slots[i]
                        .lock()
                        .expect("invariant: shard lock is never poisoned (ingest does not panic)");
                    routed[i]
                        .iter()
                        .filter(|report| shard.ingest(window, report))
                        .count() as u64
                },
                |_, a| accepted += a,
            );
        } else {
            for (shard, batch) in self.shards.iter_mut().zip(&routed) {
                let shard = Arc::make_mut(shard);
                accepted += batch
                    .iter()
                    .filter(|report| shard.ingest(window, report))
                    .count() as u64;
            }
        }
        accepted
    }

    /// Seals the current state into an immutable snapshot.
    ///
    /// The row side is cheap (one `Arc` clone per shard): the shards are
    /// shared, not copied, and later ingest copies-on-write only what it
    /// touches. Sealing additionally builds each shard's read-optimized
    /// [`ColumnarShard`] projection — in parallel across shards via
    /// [`run_ordered`] — together with its per-window
    /// [`crate::columnar::WindowZoneMap`]s (row counts and key/time
    /// ranges the query planner prunes shards with), and memoizes the
    /// result by epoch, so only the first seal after an ingest pays the
    /// projection cost; every later seal of the same epoch reuses the
    /// packed columns by `Arc` clone.
    pub fn seal(&self) -> Snapshot {
        let mut cache = self
            .columnar
            .lock()
            .expect("invariant: columnar lock is never poisoned (projection code does not panic)");
        let columnar = match cache.as_ref() {
            Some((epoch, shards)) if *epoch == self.epoch => shards.clone(),
            _ => {
                let mut built = Vec::with_capacity(self.shards.len());
                run_ordered(
                    self.config.threads,
                    self.shards.len(),
                    |i| ColumnarShard::build(&self.shards[i]),
                    |_, shard| built.push(Arc::new(shard)),
                );
                *cache = Some((self.epoch, built.clone()));
                built
            }
        };
        Snapshot {
            epoch: self.epoch,
            shards: self.shards.clone(),
            columnar,
            persistence: self.persistence,
        }
    }
}

/// Routes `(window, device)` to a shard with a splitmix64 hash, so the
/// partition is stable across runs and independent of HashMap seeds.
fn shard_index(window: WindowId, device: u64, shards: usize) -> usize {
    (splitmix64(device ^ (u64::from(window.0) << 48)) % shards as u64) as usize
}

/// An immutable, epoch-numbered view of the store, carrying both
/// physical layouts: the row-oriented shard tables (the write layout)
/// and their packed columnar projection (the read layout the
/// [`crate::query::QueryBackend::Columnar`] and
/// [`crate::query::QueryBackend::Vectorized`] kernels scan, carrying
/// the zone maps the cost-based planner consults before touching a
/// shard's columns).
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    shards: Vec<Arc<StoreShard>>,
    columnar: Vec<Arc<ColumnarShard>>,
    persistence: PersistenceStats,
}

impl Snapshot {
    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen shards.
    pub fn shards(&self) -> &[Arc<StoreShard>] {
        &self.shards
    }

    /// The frozen shards' columnar projections, in shard order.
    pub fn columnar(&self) -> &[Arc<ColumnarShard>] {
        &self.columnar
    }

    /// Reports accepted across all shards at seal time.
    pub fn reports_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.reports_ingested()).sum()
    }

    /// Duplicates rejected across all shards at seal time.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_dropped()).sum()
    }

    /// The store's cumulative persistence counters at seal time.
    pub fn persistence(&self) -> PersistenceStats {
        self.persistence
    }
}

/// Anything that can absorb drained report batches.
///
/// The engine runs against this trait so the same campaign can fill the
/// legacy [`Backend`] (differential tests) or a [`ShardedStore`]
/// (production path) from identical streams.
pub trait ReportSink {
    /// Ingests a batch into `window`; returns accepted (non-duplicate)
    /// report count.
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64;
}

impl ReportSink for ShardedStore {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        ShardedStore::ingest_batch(self, window, reports)
    }
}

impl ReportSink for Backend {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        Backend::ingest_batch(self, window, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::apps::Application;
    use airstat_classify::mac::{MacAddress, Oui};
    use airstat_telemetry::report::{ReportPayload, UsageRecord};

    const W: WindowId = WindowId(1501);

    fn usage_report(device: u64, seq: u64, bytes: u64) -> Report {
        Report {
            device,
            seq,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([2, 4, 6]), device),
                app: Application::Netflix,
                up_bytes: bytes,
                down_bytes: 0,
            }]),
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let store = ShardedStore::new(7);
        for device in 0..200u64 {
            let shard = store.shard_of(W, device);
            assert!(shard < 7);
            assert_eq!(shard, store.shard_of(W, device), "stable");
        }
        // Different windows may route the same device elsewhere.
        let moved = (0..200u64).any(|d| store.shard_of(W, d) != store.shard_of(WindowId(1401), d));
        assert!(moved, "window participates in the hash");
    }

    #[test]
    fn accepted_and_duplicate_counts_cross_shards() {
        let mut store = ShardedStore::new(4);
        let reports: Vec<Report> = (0..50).map(|d| usage_report(d, 0, 10)).collect();
        assert_eq!(store.ingest_batch(W, &reports), 50);
        assert_eq!(store.ingest_batch(W, &reports), 0, "all duplicates");
        assert_eq!(store.reports_ingested(), 50);
        assert_eq!(store.duplicates_dropped(), 50);
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingest() {
        let mut store = ShardedStore::new(3);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        let frozen = store.seal();
        assert_eq!(frozen.epoch(), 1);
        store.ingest_batch(W, &[usage_report(2, 0, 10), usage_report(1, 1, 5)]);
        assert_eq!(frozen.reports_ingested(), 1, "snapshot unchanged");
        assert_eq!(store.reports_ingested(), 3);
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn seal_builds_and_memoizes_the_columnar_projection() {
        let mut store = ShardedStore::new(3);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        let first = store.seal();
        assert_eq!(first.columnar().len(), 3, "one projection per shard");
        let again = store.seal();
        for (a, b) in first.columnar().iter().zip(again.columnar()) {
            assert!(Arc::ptr_eq(a, b), "same epoch reuses the projection");
        }
        store.ingest_batch(W, &[usage_report(2, 0, 10)]);
        let later = store.seal();
        assert!(
            first
                .columnar()
                .iter()
                .zip(later.columnar())
                .all(|(a, b)| !Arc::ptr_eq(a, b)),
            "ingest invalidates the memoized projection"
        );
        // The projection mirrors the row tables cell for cell.
        for (shard, cols) in later.shards().iter().zip(later.columnar()) {
            let row_cells: Vec<_> = shard
                .window(W)
                .map(|t| t.usage.iter().map(|(&k, &v)| (k, v)).collect())
                .unwrap_or_default();
            let col_cells: Vec<_> = cols
                .window(W)
                .map(|w| w.usage_cells().collect())
                .unwrap_or_default();
            assert_eq!(row_cells, col_cells);
        }
    }

    #[test]
    fn parallel_and_serial_ingest_agree() {
        let reports: Vec<Report> = (0..3000u64)
            .map(|i| usage_report(i % 97, i / 97, i + 1))
            .collect();
        let mut serial = ShardedStore::with_config(StoreConfig {
            shards: 5,
            threads: 1,
        });
        let mut parallel = ShardedStore::with_config(StoreConfig {
            shards: 5,
            threads: 4,
        });
        let a = serial.ingest_batch(W, &reports);
        let b = parallel.ingest_batch(W, &reports);
        assert_eq!(a, b);
        assert_eq!(serial.reports_ingested(), parallel.reports_ingested());
        for (s, p) in serial.seal().shards().iter().zip(parallel.seal().shards()) {
            assert_eq!(s.reports_ingested(), p.reports_ingested());
            assert_eq!(
                s.window(W).map(|t| t.usage.clone()),
                p.window(W).map(|t| t.usage.clone())
            );
        }
    }
}
