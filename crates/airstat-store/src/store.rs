//! The sharded, snapshot-isolated store.
//!
//! [`ShardedStore`] routes every report to one [`StoreShard`] by hashing
//! `(window, device)`, ingests shards in parallel through
//! [`crate::exec::run_ordered`], and hands out immutable epoch-numbered
//! [`Snapshot`]s for the query engine. Snapshots are copy-on-write: a
//! `seal()` is a handful of `Arc` clones, and ingest after a seal lazily
//! clones only the shards it actually touches (`Arc::make_mut`), so
//! queries keep running against frozen state while the next epoch fills.
//!
//! Sealing is **incremental** (LSM-style): each shard's read layout is a
//! [`SegmentStack`] — immutable delta [`ColumnarShard`] segments, oldest
//! to newest — plus the mutable row tables as the tail. Ingest tracks
//! dirtied keys per shard, so a seal projects only the rows touched
//! since the previous seal into a new delta segment and the cost of
//! making new data queryable is proportional to the delta, not the
//! campaign. A deterministic size-tiered compaction pass (driven purely
//! by segment row counts — no wall clock) folds small adjacent deltas
//! back into larger runs so stacks stay shallow.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use airstat_stats::rng::splitmix64;
use airstat_telemetry::backend::{Backend, WindowId};
use airstat_telemetry::report::Report;

use crate::columnar::ColumnarShard;
use crate::exec::run_ordered;
use crate::segment::{self, ManifestEntry, PersistenceStats, RecoveryStats, SegmentError};
use crate::shard::{DirtyShard, StoreShard};

/// Store shape and ingest parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of shards (at least 1). Results are byte-identical for
    /// every value; this only controls partitioning.
    pub shards: usize,
    /// Worker threads for parallel ingest (at least 1). Byte-identical
    /// for every value.
    pub threads: usize,
}

/// Default shard count: enough partitions that an 8-way host can ingest
/// and query with full parallelism at paper scale.
pub const DEFAULT_SHARDS: usize = 8;

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: DEFAULT_SHARDS,
            threads: 1,
        }
    }
}

/// Batches smaller than this ingest serially: routing a handful of
/// reports across a thread pool costs more than the ingest itself.
const PARALLEL_INGEST_MIN: usize = 1024;

/// Size-tiered compaction trigger: the two newest segments merge while
/// the older one holds fewer than this many times the newer one's rows.
/// Evaluated on row counts only — a pure function of store state, so
/// compaction timing is byte-reproducible across runs, threads, and
/// hosts (no wall clock anywhere).
const COMPACTION_RATIO: u64 = 3;

/// On-disk delta chains longer than this trigger a full rewrite at the
/// next persist (on-disk compaction) — bounds reload cost and the
/// redundant bytes shadowed rows accumulate.
const MAX_DELTAS_ON_DISK: usize = 8;

/// One shard's sealed read layout: immutable delta segments ordered
/// **oldest to newest**. Within a stack, the newest segment holding a
/// key holds its authoritative value (each delta row carries the key's
/// full value at seal time), so a newest-wins fold over the stack
/// reconstructs exactly what a monolithic seal would have built.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentStack {
    segments: Vec<Arc<ColumnarShard>>,
}

impl SegmentStack {
    /// The delta segments, oldest to newest.
    pub fn segments(&self) -> &[Arc<ColumnarShard>] {
        &self.segments
    }

    /// Number of live segments in the stack.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the stack holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Cumulative incremental-seal counters, carried into snapshots and
/// surfaced through `StoreStats` (the CLI stderr block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealStats {
    /// Seals that actually built state (epoch-memoized re-seals of an
    /// unchanged store are not counted).
    pub seals_total: u64,
    /// Delta segments currently live across all shard stacks.
    pub segments_live: u64,
    /// Segments consumed by compaction merges so far (two per merge).
    pub segments_compacted: u64,
    /// Rows written into segments by seals and compaction merges — the
    /// actual projection work done. Flat growth per seal is the
    /// incremental win; a monolithic re-seal would grow this by the
    /// whole store every epoch.
    pub rows_resealed: u64,
}

/// Mutable seal-side state, behind one mutex: the current segment
/// stacks, the per-shard dirty sets for both baselines, and counters.
#[derive(Debug, Clone, Default)]
struct SealState {
    /// Epoch the stacks were last brought up to date at.
    sealed_epoch: Option<u64>,
    /// Per-shard segment stacks, current as of `sealed_epoch`.
    stacks: Vec<SegmentStack>,
    /// Per-shard keys dirtied since the last seal.
    dirty: Vec<DirtyShard>,
    /// Per-shard keys sealed since the last persist (the on-disk delta
    /// a future incremental persist writes).
    persist_pending: Vec<DirtyShard>,
    stats: SealStats,
}

impl SealState {
    fn sized(shards: usize) -> SealState {
        SealState {
            sealed_epoch: None,
            stacks: vec![SegmentStack::default(); shards],
            dirty: vec![DirtyShard::default(); shards],
            persist_pending: vec![DirtyShard::default(); shards],
            stats: SealStats::default(),
        }
    }
}

/// A sharded aggregation store (the fleet backend at scale).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<StoreShard>>,
    epoch: u64,
    config: StoreConfig,
    /// Segment stacks, dirty tracking, and seal counters. Epoch-keyed:
    /// `seal()` against an unchanged store reuses the stacks by `Arc`
    /// clone; after an ingest it projects only the dirtied rows.
    seal: Mutex<SealState>,
    /// Cumulative on-disk activity ([`ShardedStore::persist`] /
    /// [`ShardedStore::open`]), carried into snapshots for `StoreStats`.
    persistence: PersistenceStats,
    /// Where the last persist committed and what the manifest lists per
    /// shard — a persist back to the same directory appends delta
    /// segments instead of rewriting the store.
    persist_state: Option<(PathBuf, Vec<Vec<ManifestEntry>>)>,
}

impl Clone for ShardedStore {
    fn clone(&self) -> Self {
        ShardedStore {
            shards: self.shards.clone(),
            epoch: self.epoch,
            config: self.config,
            seal: Mutex::new(
                self.seal
                    .lock()
                    .expect(
                        "invariant: seal lock is never poisoned (projection code does not panic)",
                    )
                    .clone(),
            ),
            persistence: self.persistence,
            persist_state: self.persist_state.clone(),
        }
    }
}

impl Default for ShardedStore {
    fn default() -> Self {
        ShardedStore::with_config(StoreConfig::default())
    }
}

impl ShardedStore {
    /// Creates an empty store with `shards` partitions (serial ingest).
    pub fn new(shards: usize) -> Self {
        ShardedStore::with_config(StoreConfig {
            shards,
            ..StoreConfig::default()
        })
    }

    /// Creates an empty store with the given shape.
    pub fn with_config(config: StoreConfig) -> Self {
        let shards = config.shards.max(1);
        ShardedStore {
            shards: (0..shards)
                .map(|_| Arc::new(StoreShard::default()))
                .collect(),
            epoch: 0,
            config: StoreConfig {
                shards,
                threads: config.threads.max(1),
            },
            seal: Mutex::new(SealState::sized(shards)),
            persistence: PersistenceStats::default(),
            persist_state: None,
        }
    }

    /// Persists the current state into `dir` as a committed segment set
    /// and resets the tail log, returning what this call wrote. The
    /// write order makes the manifest rename the single commit point —
    /// see [`crate::segment`] and docs/SEGMENT_FORMAT.md §6.
    ///
    /// A persist back to the directory of the previous persist (or of
    /// [`ShardedStore::open`]) is **incremental**: each shard appends
    /// one delta segment holding only the rows dirtied since that
    /// persist, and the new manifest commits the grown delta chains.
    /// Persisting anywhere else — or once any shard's chain exceeds the
    /// on-disk compaction bound — rewrites the store as one full
    /// segment per shard.
    pub fn persist(&mut self, dir: &Path) -> Result<PersistenceStats, SegmentError> {
        // Seal first: with the seal-side dirty sets drained into
        // `persist_pending`, the pending sets alone name exactly the
        // rows this persist must write.
        let _ = self.seal();
        let n = self.shards.len();
        let state = self
            .seal
            .get_mut()
            .expect("invariant: seal lock is never poisoned (projection code does not panic)");
        let incremental = matches!(
            &self.persist_state,
            Some((prev, lists)) if prev == dir
                && lists.len() == n
                && lists.iter().all(|list| list.len() < MAX_DELTAS_ON_DISK)
        );
        let (stats, lists) = if incremental {
            let Some((_, prior)) = &self.persist_state else {
                unreachable!("invariant: incremental implies persist_state is Some");
            };
            let deltas: Vec<Option<StoreShard>> = (0..n)
                .map(|i| {
                    let pending = &state.persist_pending[i];
                    (!pending.is_empty()).then(|| self.shards[i].delta_snapshot(pending))
                })
                .collect();
            segment::write_store_delta(&deltas, prior, self.epoch, dir)?
        } else {
            segment::write_store_full(&self.shards, self.epoch, dir)?
        };
        for pending in &mut state.persist_pending {
            pending.clear();
        }
        self.persist_state = Some((dir.to_path_buf(), lists));
        self.persistence.absorb(stats);
        Ok(stats)
    }

    /// Opens the store persisted in `dir`, replaying any tail-log
    /// records appended after the last persist (docs/SEGMENT_FORMAT.md
    /// §7) so a crashed run recovers to its exact pre-crash query
    /// surface.
    ///
    /// The manifest's shard count is authoritative — `config.shards` is
    /// ignored when a committed store exists (partitioning is baked into
    /// the segment files); `config.threads` still applies. A directory
    /// with no manifest yields a fresh empty store shaped by `config`
    /// (plus any tail-log records, for a run that crashed before its
    /// first persist).
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> Result<(ShardedStore, RecoveryStats), SegmentError> {
        let mut recovery = RecoveryStats::default();
        let mut store = match segment::read_store(dir)? {
            Some(loaded) => {
                recovery.segments_loaded = loaded.lists.iter().map(|l| l.len() as u64).sum();
                recovery.bytes_read = loaded.bytes_read;
                recovery.crc_checks = loaded.crc_checks;
                let shards: Vec<Arc<StoreShard>> =
                    loaded.shards.into_iter().map(Arc::new).collect();
                let n = shards.len();
                ShardedStore {
                    config: StoreConfig {
                        shards: n,
                        threads: config.threads.max(1),
                    },
                    shards,
                    epoch: loaded.epoch,
                    seal: Mutex::new(SealState::sized(n)),
                    persistence: PersistenceStats::default(),
                    persist_state: Some((dir.to_path_buf(), loaded.lists)),
                }
            }
            None => ShardedStore::with_config(config),
        };
        // Replaying through `ingest_batch` bumps the epoch once per
        // record — exactly as the original ingest did — so the
        // recovered store resumes on the pre-crash epoch trajectory.
        let replay = segment::read_wal(dir, store.epoch)?;
        for (window, reports) in &replay.batches {
            store.ingest_batch(*window, reports);
        }
        recovery.epoch = store.epoch;
        if replay.valid_len > 0 {
            // Tail-log header + one check per replayed record.
            recovery.crc_checks += 1 + replay.batches.len() as u64;
        }
        recovery.wal_records_replayed = replay.batches.len() as u64;
        recovery.wal_reports_recovered = replay.reports;
        recovery.wal_bytes_discarded = replay.bytes_discarded;
        recovery.wal_stale = replay.stale;
        recovery.wal_valid_len = replay.valid_len;
        store.persistence = PersistenceStats {
            segments_written: 0,
            segments_loaded: recovery.segments_loaded,
            bytes_written: 0,
            bytes_read: recovery.bytes_read,
            crc_checks: recovery.crc_checks,
            wal_records_replayed: recovery.wal_records_replayed,
        };
        Ok((store, recovery))
    }

    /// Cumulative persistence counters (zero unless this store was
    /// opened from disk or has been persisted).
    pub fn persistence(&self) -> PersistenceStats {
        self.persistence
    }

    /// The store's shape.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current epoch (bumped by every accepted ingest batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Which shard `(window, device)` routes to.
    pub fn shard_of(&self, window: WindowId, device: u64) -> usize {
        shard_index(window, device, self.shards.len())
    }

    /// Reports accepted across all shards (excluding duplicates).
    pub fn reports_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.reports_ingested()).sum()
    }

    /// Duplicate reports rejected across all shards.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_dropped()).sum()
    }

    /// Ingests a batch of reports into `window`, returning how many were
    /// accepted (non-duplicates).
    ///
    /// Reports are routed to their shards in batch order (per-device
    /// arrival order is preserved) and the shards then ingest
    /// independently — in parallel via [`run_ordered`] when the batch is
    /// large enough and `threads > 1`, serially otherwise. Both paths
    /// produce identical state, so the thread count never changes a
    /// query answer.
    pub fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        if reports.is_empty() {
            return 0;
        }
        self.epoch = self.epoch.saturating_add(1);
        let n = self.shards.len();
        let mut routed: Vec<Vec<&Report>> = (0..n).map(|_| Vec::new()).collect();
        for report in reports {
            routed[shard_index(window, report.device, n)].push(report);
        }
        let threads = self.config.threads;
        let mut accepted = 0u64;
        let state = self
            .seal
            .get_mut()
            .expect("invariant: seal lock is never poisoned (projection code does not panic)");
        if threads > 1 && reports.len() >= PARALLEL_INGEST_MIN {
            // Each worker takes exclusive ownership of one shard slot
            // (row tables plus that shard's dirty set); the mutexes are
            // uncontended (one lock per shard per batch) and only exist
            // to hand the `&mut` pair across the scope.
            let slots: Vec<Mutex<(&mut StoreShard, &mut DirtyShard)>> = self
                .shards
                .iter_mut()
                .zip(state.dirty.iter_mut())
                .map(|(shard, dirty)| Mutex::new((Arc::make_mut(shard), dirty)))
                .collect();
            run_ordered(
                threads,
                n,
                |i| {
                    let mut slot = slots[i]
                        .lock()
                        .expect("invariant: shard lock is never poisoned (ingest does not panic)");
                    let (shard, dirty) = &mut *slot;
                    routed[i]
                        .iter()
                        .filter(|report| shard.ingest_tracked(window, report, dirty))
                        .count() as u64
                },
                |_, a| accepted += a,
            );
        } else {
            for ((shard, dirty), batch) in self
                .shards
                .iter_mut()
                .zip(state.dirty.iter_mut())
                .zip(&routed)
            {
                let shard = Arc::make_mut(shard);
                accepted += batch
                    .iter()
                    .filter(|report| shard.ingest_tracked(window, report, dirty))
                    .count() as u64;
            }
        }
        accepted
    }

    /// Seals the current state into an immutable snapshot.
    ///
    /// The row side is cheap (one `Arc` clone per shard): the shards are
    /// shared, not copied, and later ingest copies-on-write only what it
    /// touches. Sealing additionally brings each shard's
    /// [`SegmentStack`] up to date — **incrementally**: only the rows
    /// dirtied since the previous seal are projected (in parallel across
    /// shards via [`run_ordered`]) into one new delta [`ColumnarShard`],
    /// complete with per-window [`crate::columnar::WindowZoneMap`]s, so
    /// seal cost tracks the delta, not the campaign. A deterministic
    /// size-tiered compaction pass then folds the newest segments
    /// together while the older of the top two holds fewer than
    /// `COMPACTION_RATIO`× the newer one's rows, keeping stacks
    /// shallow. The result is memoized by epoch: every later seal of the
    /// same epoch reuses the stacks by `Arc` clone.
    pub fn seal(&self) -> Snapshot {
        let mut state = self
            .seal
            .lock()
            .expect("invariant: seal lock is never poisoned (projection code does not panic)");
        if state.sealed_epoch != Some(self.epoch) {
            // Take the stacks and dirty sets out of the guard so the
            // parallel closure borrows only immutable locals.
            let stacks = std::mem::take(&mut state.stacks);
            let dirty = std::mem::take(&mut state.dirty);
            let mut sealed = Vec::with_capacity(self.shards.len());
            run_ordered(
                self.config.threads,
                self.shards.len(),
                |i| seal_shard(&self.shards[i], &stacks[i], &dirty[i]),
                |_, out| sealed.push(out),
            );
            let mut live = 0u64;
            state.stacks = Vec::with_capacity(sealed.len());
            for (i, (stack, compacted, rows)) in sealed.into_iter().enumerate() {
                live += stack.len() as u64;
                state.stacks.push(stack);
                state.stats.segments_compacted += compacted;
                state.stats.rows_resealed += rows;
                state.persist_pending[i].merge_from(&dirty[i]);
            }
            state.dirty = dirty.into_iter().map(|_| DirtyShard::default()).collect();
            state.stats.seals_total += 1;
            state.stats.segments_live = live;
            state.sealed_epoch = Some(self.epoch);
        }
        Snapshot {
            epoch: self.epoch,
            shards: self.shards.clone(),
            columnar: state.stacks.clone(),
            seal: state.stats,
            persistence: self.persistence,
        }
    }
}

/// Brings one shard's segment stack up to date: projects the dirtied
/// rows into a new delta segment, then runs the size-tiered compaction
/// loop. Returns the new stack plus (segments consumed by compaction,
/// rows written into segments by this call).
fn seal_shard(
    shard: &StoreShard,
    stack: &SegmentStack,
    dirty: &DirtyShard,
) -> (SegmentStack, u64, u64) {
    let mut segments = stack.segments.clone();
    let mut compacted = 0u64;
    let mut rows = 0u64;
    if segments.is_empty() {
        // First seal for this shard in this process. The row tables may
        // hold rows the dirty set does not cover — a store reopened from
        // disk loads its segments straight into the tables without
        // marking them dirty — so project everything. For a store built
        // purely by ingest this is the same bytes as the delta build:
        // every live row is dirty relative to the (nonexistent) last
        // seal.
        let full = ColumnarShard::build(shard);
        if full.row_count() > 0 {
            rows += full.row_count();
            segments.push(Arc::new(full));
        }
    } else if !dirty.is_empty() {
        let delta = ColumnarShard::build_delta(shard, dirty);
        // A counters-only dirty set (every write lost a conflict, or
        // only dedup state moved) projects zero rows — push nothing.
        if delta.row_count() > 0 {
            rows += delta.row_count();
            segments.push(Arc::new(delta));
        }
    }
    // Size-tiered compaction: merge the top two segments while the older
    // one is small relative to the newer (row counts only — fully
    // deterministic). Merging the top of the stack is a filtered rebuild
    // from the live row tables: no newer segment exists to shadow these
    // keys, so their current live values are exactly the merged result.
    while segments.len() >= 2 {
        let newer = segments[segments.len() - 1].row_count();
        let older = segments[segments.len() - 2].row_count();
        if older >= newer.saturating_mul(COMPACTION_RATIO) {
            break;
        }
        let top = segments
            .pop()
            .expect("invariant: len >= 2 guarantees a top segment");
        let below = segments
            .pop()
            .expect("invariant: len >= 2 guarantees a second segment");
        let mut keys = below.key_sets();
        keys.merge_from(&top.key_sets());
        let merged = ColumnarShard::build_delta(shard, &keys);
        compacted += 2;
        rows += merged.row_count();
        segments.push(Arc::new(merged));
    }
    (SegmentStack { segments }, compacted, rows)
}

/// Routes `(window, device)` to a shard with a splitmix64 hash, so the
/// partition is stable across runs and independent of HashMap seeds.
fn shard_index(window: WindowId, device: u64, shards: usize) -> usize {
    (splitmix64(device ^ (u64::from(window.0) << 48)) % shards as u64) as usize
}

/// An immutable, epoch-numbered view of the store, carrying both
/// physical layouts: the row-oriented shard tables (the write layout)
/// and their segmented columnar projection (the read layout the
/// [`crate::query::QueryBackend::Columnar`] and
/// [`crate::query::QueryBackend::Vectorized`] kernels scan — a
/// [`SegmentStack`] of delta segments per shard, each segment carrying
/// the zone maps the cost-based planner consults before touching its
/// columns).
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    shards: Vec<Arc<StoreShard>>,
    columnar: Vec<SegmentStack>,
    seal: SealStats,
    persistence: PersistenceStats,
}

impl Snapshot {
    /// The epoch this snapshot froze.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen shards.
    pub fn shards(&self) -> &[Arc<StoreShard>] {
        &self.shards
    }

    /// The frozen shards' columnar segment stacks, in shard order.
    pub fn columnar(&self) -> &[SegmentStack] {
        &self.columnar
    }

    /// Cumulative incremental-seal counters at seal time.
    pub fn seal_stats(&self) -> SealStats {
        self.seal
    }

    /// Reports accepted across all shards at seal time.
    pub fn reports_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.reports_ingested()).sum()
    }

    /// Duplicates rejected across all shards at seal time.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.duplicates_dropped()).sum()
    }

    /// The store's cumulative persistence counters at seal time.
    pub fn persistence(&self) -> PersistenceStats {
        self.persistence
    }
}

/// Anything that can absorb drained report batches.
///
/// The engine runs against this trait so the same campaign can fill the
/// legacy [`Backend`] (differential tests) or a [`ShardedStore`]
/// (production path) from identical streams.
pub trait ReportSink {
    /// Ingests a batch into `window`; returns accepted (non-duplicate)
    /// report count.
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64;
}

impl ReportSink for ShardedStore {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        ShardedStore::ingest_batch(self, window, reports)
    }
}

impl ReportSink for Backend {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        Backend::ingest_batch(self, window, reports)
    }
}

/// Sinks that can seal mid-campaign, so the engine's `--seal-every`
/// cadence works against any store flavor. Sealing is about keeping the
/// incremental projection warm — for sinks with no columnar layout (the
/// legacy [`Backend`]) it is a no-op.
pub trait Sealable {
    /// Brings the sink's read layout up to date with what has been
    /// ingested so far.
    fn reseal(&mut self);
}

impl Sealable for ShardedStore {
    fn reseal(&mut self) {
        let _ = self.seal();
    }
}

impl Sealable for Backend {
    fn reseal(&mut self) {}
}

/// A [`ReportSink`] adapter that seals its inner sink every `every`
/// ingested batches — the mid-campaign cadence behind the CLI's
/// `--seal-every` flag. With incremental sealing each re-seal projects
/// only the rows the batches since the last seal dirtied, so a steady
/// cadence keeps per-seal cost flat as the campaign grows.
#[derive(Debug)]
pub struct SealEvery<S> {
    inner: S,
    every: u64,
    batches: u64,
}

impl<S> SealEvery<S> {
    /// Wraps `inner`, sealing after every `every` batches (`every` is
    /// clamped to at least 1).
    pub fn new(inner: S, every: u64) -> Self {
        SealEvery {
            inner,
            every: every.max(1),
            batches: 0,
        }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ReportSink + Sealable> ReportSink for SealEvery<S> {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        let accepted = self.inner.ingest_batch(window, reports);
        self.batches += 1;
        if self.batches % self.every == 0 {
            self.inner.reseal();
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::apps::Application;
    use airstat_classify::mac::{MacAddress, Oui};
    use airstat_telemetry::report::{ReportPayload, UsageRecord};

    const W: WindowId = WindowId(1501);

    fn usage_report(device: u64, seq: u64, bytes: u64) -> Report {
        Report {
            device,
            seq,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([2, 4, 6]), device),
                app: Application::Netflix,
                up_bytes: bytes,
                down_bytes: 0,
            }]),
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let store = ShardedStore::new(7);
        for device in 0..200u64 {
            let shard = store.shard_of(W, device);
            assert!(shard < 7);
            assert_eq!(shard, store.shard_of(W, device), "stable");
        }
        // Different windows may route the same device elsewhere.
        let moved = (0..200u64).any(|d| store.shard_of(W, d) != store.shard_of(WindowId(1401), d));
        assert!(moved, "window participates in the hash");
    }

    #[test]
    fn accepted_and_duplicate_counts_cross_shards() {
        let mut store = ShardedStore::new(4);
        let reports: Vec<Report> = (0..50).map(|d| usage_report(d, 0, 10)).collect();
        assert_eq!(store.ingest_batch(W, &reports), 50);
        assert_eq!(store.ingest_batch(W, &reports), 0, "all duplicates");
        assert_eq!(store.reports_ingested(), 50);
        assert_eq!(store.duplicates_dropped(), 50);
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingest() {
        let mut store = ShardedStore::new(3);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        let frozen = store.seal();
        assert_eq!(frozen.epoch(), 1);
        store.ingest_batch(W, &[usage_report(2, 0, 10), usage_report(1, 1, 5)]);
        assert_eq!(frozen.reports_ingested(), 1, "snapshot unchanged");
        assert_eq!(store.reports_ingested(), 3);
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn seal_builds_and_memoizes_the_columnar_projection() {
        let mut store = ShardedStore::new(3);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        let first = store.seal();
        assert_eq!(first.columnar().len(), 3, "one stack per shard");
        let again = store.seal();
        for (a, b) in first.columnar().iter().zip(again.columnar()) {
            assert_eq!(a.len(), b.len());
            for (sa, sb) in a.segments().iter().zip(b.segments()) {
                assert!(Arc::ptr_eq(sa, sb), "same epoch reuses the segments");
            }
        }
        store.ingest_batch(W, &[usage_report(2, 0, 10)]);
        let later = store.seal();
        assert_eq!(later.seal_stats().seals_total, 2);
        // Only the shard that took device 2 re-projects; shards with no
        // dirtied rows keep their segments pointer-identical.
        let touched = store.shard_of(W, 2);
        for (i, (a, b)) in first.columnar().iter().zip(later.columnar()).enumerate() {
            if i == touched {
                continue;
            }
            assert_eq!(a.len(), b.len(), "untouched shard keeps its stack");
            for (sa, sb) in a.segments().iter().zip(b.segments()) {
                assert!(Arc::ptr_eq(sa, sb), "untouched shard reuses segments");
            }
        }
        // Folding every stack newest-wins mirrors the row tables cell
        // for cell, regardless of how many delta segments are live.
        for (shard, stack) in later.shards().iter().zip(later.columnar()) {
            let row_cells: Vec<_> = shard
                .window(W)
                .map(|t| t.usage.iter().map(|(&k, &v)| (k, v)).collect())
                .unwrap_or_default();
            let views: Vec<&crate::columnar::ColumnarWindow> = stack
                .segments()
                .iter()
                .filter_map(|seg| seg.window(W))
                .collect();
            let col_cells: Vec<_> = match views.len() {
                0 => Vec::new(),
                1 => views[0].usage_cells().collect(),
                _ => crate::columnar::merge_segments(&views, crate::columnar::FAM_USAGE)
                    .usage_cells()
                    .collect(),
            };
            assert_eq!(row_cells, col_cells);
        }
    }

    #[test]
    fn seal_every_wrapper_seals_on_cadence() {
        let mut sink = SealEvery::new(ShardedStore::new(2), 2);
        for batch in 0..5u64 {
            let reports: Vec<Report> = (0..4).map(|d| usage_report(d, batch, 10)).collect();
            ReportSink::ingest_batch(&mut sink, W, &reports);
        }
        let store = sink.into_inner();
        let snap = store.seal();
        // 5 batches at cadence 2 → seals after batches 2 and 4, plus the
        // final explicit seal here.
        assert_eq!(snap.seal_stats().seals_total, 3);
        assert_eq!(store.reports_ingested(), 20);
    }

    #[test]
    fn parallel_and_serial_ingest_agree() {
        let reports: Vec<Report> = (0..3000u64)
            .map(|i| usage_report(i % 97, i / 97, i + 1))
            .collect();
        let mut serial = ShardedStore::with_config(StoreConfig {
            shards: 5,
            threads: 1,
        });
        let mut parallel = ShardedStore::with_config(StoreConfig {
            shards: 5,
            threads: 4,
        });
        let a = serial.ingest_batch(W, &reports);
        let b = parallel.ingest_batch(W, &reports);
        assert_eq!(a, b);
        assert_eq!(serial.reports_ingested(), parallel.reports_ingested());
        for (s, p) in serial.seal().shards().iter().zip(parallel.seal().shards()) {
            assert_eq!(s.reports_ingested(), p.reports_ingested());
            assert_eq!(
                s.window(W).map(|t| t.usage.clone()),
                p.window(W).map(|t| t.usage.clone())
            );
        }
    }
}
