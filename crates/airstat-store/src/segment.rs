//! Persistent on-disk segments, the manifest, and the tail log.
//!
//! A [`crate::ShardedStore`] persists as one **segment file per shard**
//! plus a **manifest** naming the live segment set and a **tail log**
//! (write-ahead record log) holding the batches ingested since the last
//! persist. The byte-level layout is specified — and pinned by tests —
//! in `docs/SEGMENT_FORMAT.md`; this module is the implementation.
//!
//! Design points, in the order they matter:
//!
//! * **Segments store the row tables, not the columnar projection.**
//!   `seal()` rebuilds every [`crate::columnar::ColumnarShard`] (and its
//!   zone maps) deterministically from the row tables, so persisting the
//!   rows is sufficient for all four query backends to answer
//!   byte-identically after a reload — the differential tests pin this.
//!   The per-`(window, device)` dedup ledger and the accepted/duplicate
//!   counters are persisted too, so tail-log replay and post-reload
//!   ingest dedup exactly as the pre-crash store would have.
//! * **Every block is CRC32-guarded** and the fixed header carries a
//!   zone-map summary that decode re-verifies, so corruption surfaces as
//!   a typed [`SegmentError`], never as a panic or silently wrong bytes.
//! * **Write-then-rename atomicity.** Segment files are epoch-named and
//!   immutable once renamed into place; the manifest rename is the
//!   single commit point of a persist. A crash at any instant leaves
//!   either the old complete store or the new complete store on disk.
//! * **The tail log absorbs torn writes.** Replay stops cleanly at the
//!   first incomplete or CRC-failing record, recovering every batch
//!   that was fully appended before the crash.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::fs;
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use airstat_classify::apps::Application;
use airstat_classify::device::OsFamily;
use airstat_classify::mac::MacAddress;
use airstat_rf::airtime::AirtimeLedger;
use airstat_rf::band::{Band, Channel};
use airstat_rf::phy::{Capabilities, Generation};
use airstat_telemetry::backend::{
    ClientIdentity, LinkKey, LinkObservation, ScanObservation, UsageTotals, WindowId,
};
use airstat_telemetry::crash::{CrashReport, RebootReason};
use airstat_telemetry::report::{ChannelScanRecord, Report};
use airstat_telemetry::wire::{put_varint, Reader, WireError};

use crate::shard::{ClientMeta, SeqSet, StoreShard, WindowTables};
use crate::store::{ReportSink, Sealable, ShardedStore, StoreConfig};

/// Schema version written into every segment, manifest, and tail-log
/// header. Bump on any byte-level layout change; readers reject other
/// versions with [`SegmentError::Version`]. The value is pinned against
/// `docs/SEGMENT_FORMAT.md` by `schema_version_matches_the_spec`.
///
/// Version 2 made the manifest a **delta-chain list**: instead of one
/// segment per shard it names, per shard, an ordered chain of delta
/// segments (oldest to newest) that `read_store` folds back together.
/// Segment bytes themselves are unchanged from version 1 apart from the
/// header's version field; the `epoch` header field now records the
/// epoch the delta was persisted at rather than always the store epoch.
pub const SEGMENT_SCHEMA_VERSION: u32 = 2;

/// Magic prefix of a segment file.
pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"ASEG";
/// Magic prefix of the manifest file.
pub(crate) const MANIFEST_MAGIC: [u8; 4] = *b"AMAN";
/// Magic prefix of the tail log.
pub(crate) const WAL_MAGIC: [u8; 4] = *b"AWAL";

/// Fixed segment header length in bytes (see docs/SEGMENT_FORMAT.md §2).
pub(crate) const SEGMENT_HEADER_LEN: usize = 44;
/// Fixed tail-log header length in bytes.
pub(crate) const WAL_HEADER_LEN: usize = 20;

/// Manifest file name inside a store directory.
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";
/// Tail-log file name inside a store directory.
pub(crate) const WAL_NAME: &str = "wal.log";

// Block tags (docs/SEGMENT_FORMAT.md §3). A segment is the fixed header
// followed by CRC-guarded blocks ending with `BLOCK_END`.
const BLOCK_END: u64 = 0;
const BLOCK_WINDOW: u64 = 1;
const BLOCK_USAGE: u64 = 2;
const BLOCK_CLIENTS: u64 = 3;
const BLOCK_LINKS: u64 = 4;
const BLOCK_AIRTIME: u64 = 5;
const BLOCK_NEIGHBORS: u64 = 6;
const BLOCK_SCANS: u64 = 7;
const BLOCK_CRASHES: u64 = 8;
const BLOCK_DEDUP: u64 = 9;
const BLOCK_COUNTERS: u64 = 10;

/// The census table shape: scan key → reporter metadata + channel rows.
type NeighborTable = BTreeMap<u64, (ClientMeta, Vec<(Band, u16, u32, u32)>)>;
/// Per-device keyed observation tables (scans, crashes).
type KeyedTable<T> = BTreeMap<u64, BTreeMap<(u64, u32), T>>;

/// Errors from persisting or recovering a store.
///
/// Every corruption mode is a typed variant — the recovery path never
/// panics on bad bytes (`airstat-lint`'s `no-unwrap-in-lib` holds for
/// this module like any other).
#[derive(Debug)]
pub enum SegmentError {
    /// An operating-system I/O operation failed.
    Io {
        /// What was being done when it failed.
        context: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file does not start with its expected magic bytes.
    Magic {
        /// Which file kind was being read.
        context: &'static str,
    },
    /// The file was written by a different schema version.
    Version {
        /// Version found in the header.
        found: u32,
        /// The single version this build reads
        /// ([`SEGMENT_SCHEMA_VERSION`]).
        supported: u32,
    },
    /// A CRC32 guard did not match the bytes it covers.
    Crc {
        /// Which structure failed verification.
        context: &'static str,
        /// Checksum stored on disk.
        stored: u32,
        /// Checksum computed over the bytes read.
        computed: u32,
    },
    /// Structurally invalid contents: truncation, impossible counts,
    /// unknown block tags, out-of-range enum discriminants, or a
    /// header summary that contradicts the decoded blocks.
    Corrupt {
        /// What was wrong.
        context: &'static str,
    },
    /// A varint or field-level decode error inside a guarded body.
    Wire(WireError),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { context, source } => write!(f, "{context}: {source}"),
            SegmentError::Magic { context } => {
                write!(f, "{context}: bad magic (not an airstat store file)")
            }
            SegmentError::Version { found, supported } => write!(
                f,
                "unsupported segment schema version {found} (this build reads \
                 version {supported}; see docs/SEGMENT_FORMAT.md)"
            ),
            SegmentError::Crc {
                context,
                stored,
                computed,
            } => write!(
                f,
                "{context}: CRC32 mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SegmentError::Corrupt { context } => write!(f, "corrupt store file: {context}"),
            SegmentError::Wire(e) => write!(f, "corrupt store file: wire decode: {e:?}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WireError> for SegmentError {
    fn from(e: WireError) -> Self {
        SegmentError::Wire(e)
    }
}

/// Shorthand for wrapping `std::io` errors with their operation.
fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> SegmentError {
    move |source| SegmentError::Io { context, source }
}

fn corrupt(context: &'static str) -> SegmentError {
    SegmentError::Corrupt { context }
}

/// Cumulative persistence counters carried by a store (and its sealed
/// snapshots), surfaced through `StoreStats` in the CLI stderr block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistenceStats {
    /// Segment files written by `persist` calls.
    pub segments_written: u64,
    /// Segment files loaded by `open`.
    pub segments_loaded: u64,
    /// Bytes written to segment + manifest files.
    pub bytes_written: u64,
    /// Bytes read back from segment + manifest files.
    pub bytes_read: u64,
    /// CRC32 verifications performed while reading.
    pub crc_checks: u64,
    /// Tail-log records replayed during recovery.
    pub wal_records_replayed: u64,
}

impl PersistenceStats {
    /// Whether any persistence activity has been recorded.
    pub fn any(&self) -> bool {
        *self != PersistenceStats::default()
    }

    /// Adds another tally into this one.
    pub(crate) fn absorb(&mut self, other: PersistenceStats) {
        self.segments_written += other.segments_written;
        self.segments_loaded += other.segments_loaded;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.crc_checks += other.crc_checks;
        self.wal_records_replayed += other.wal_records_replayed;
    }
}

/// What [`ShardedStore::open`] recovered from a store directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Store epoch after recovery (manifest epoch + replayed batches).
    pub epoch: u64,
    /// Segment files decoded from the manifest's live set.
    pub segments_loaded: u64,
    /// Bytes read from segment + manifest files.
    pub bytes_read: u64,
    /// CRC32 verifications performed (all passed).
    pub crc_checks: u64,
    /// Whole tail-log records replayed.
    pub wal_records_replayed: u64,
    /// Reports recovered from the tail log (before dedup).
    pub wal_reports_recovered: u64,
    /// Trailing tail-log bytes discarded as a torn final write.
    pub wal_bytes_discarded: u64,
    /// Whether a stale tail log (from before the last completed
    /// persist) was skipped rather than replayed.
    pub wal_stale: bool,
    /// Tail-log byte length up to and including the last whole record
    /// (the append point after recovery); `0` when no log existed.
    pub wal_valid_len: u64,
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered epoch {}: {} segment(s), {} bytes, {} CRC checks; \
             tail log: {} record(s) / {} report(s) replayed, {} byte(s) discarded{}",
            self.epoch,
            self.segments_loaded,
            self.bytes_read,
            self.crc_checks,
            self.wal_records_replayed,
            self.wal_reports_recovered,
            self.wal_bytes_discarded,
            if self.wal_stale {
                " (stale tail log skipped)"
            } else {
                ""
            },
        )
    }
}

// ---------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------

/// CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected, init and
/// xorout `0xFFFF_FFFF`) — the same parametrization as zlib's `crc32`.
/// Hand-rolled because the workspace vendors no checksum crate.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC32 guarding every block, header, manifest, and tail record.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Cursor: bounded reads over a guarded body
// ---------------------------------------------------------------------

/// A bounds-checked read cursor. Varints go through
/// [`airstat_telemetry::wire::Reader`] — the segment format reuses the
/// wire codec's integer encoding byte for byte.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn varint(&mut self) -> Result<u64, SegmentError> {
        let mut reader = Reader::new(&self.buf[self.pos..]);
        let v = reader.read_varint()?;
        self.pos = self.buf.len() - reader.remaining();
        Ok(v)
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SegmentError> {
        if self.remaining() < n {
            return Err(corrupt(context));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn f64(&mut self) -> Result<f64, SegmentError> {
        let bytes = self.take(8, "truncated f64 column")?;
        Ok(f64::from_le_bytes(
            bytes
                .try_into()
                .expect("invariant: take(8) returned exactly 8 bytes"),
        ))
    }

    fn u32_le(&mut self, context: &'static str) -> Result<u32, SegmentError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes(
            bytes
                .try_into()
                .expect("invariant: take(4) returned exactly 4 bytes"),
        ))
    }

    /// Reads a row count and sanity-checks it against the bytes left:
    /// every row costs at least `min_bytes_per_row`, so a corrupt count
    /// is rejected before any allocation is sized from it.
    fn count(
        &mut self,
        min_bytes_per_row: usize,
        context: &'static str,
    ) -> Result<usize, SegmentError> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| corrupt(context))?;
        if n.saturating_mul(min_bytes_per_row) > self.remaining() {
            return Err(corrupt(context));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Enum discriminant round-trips
// ---------------------------------------------------------------------

/// Discriminant → variant lane table for [`Application`]. Built from
/// `Application::ALL`, so it tracks the taxonomy without assuming the
/// constant is in discriminant order.
fn application_lanes() -> Vec<Option<Application>> {
    let mut lanes: Vec<Option<Application>> = Vec::new();
    for &app in Application::ALL {
        let i = app as usize;
        if i >= lanes.len() {
            lanes.resize(i + 1, None);
        }
        lanes[i] = Some(app);
    }
    lanes
}

/// Discriminant → variant lane table for [`OsFamily`]. `OsFamily::ALL`
/// is in Table 3 *display* order, not discriminant order, so indexing
/// it directly would scramble identities — the lanes resolve that.
fn os_lanes() -> Vec<Option<OsFamily>> {
    let mut lanes: Vec<Option<OsFamily>> = Vec::new();
    for &os in &OsFamily::ALL {
        let i = os as usize;
        if i >= lanes.len() {
            lanes.resize(i + 1, None);
        }
        lanes[i] = Some(os);
    }
    lanes
}

fn band_from(d: u64) -> Result<Band, SegmentError> {
    match d {
        0 => Ok(Band::Ghz2_4),
        1 => Ok(Band::Ghz5),
        _ => Err(corrupt("band discriminant out of range")),
    }
}

fn generation_from(d: u64) -> Result<Generation, SegmentError> {
    match d {
        0 => Ok(Generation::B),
        1 => Ok(Generation::G),
        2 => Ok(Generation::N),
        3 => Ok(Generation::Ac),
        _ => Err(corrupt("generation discriminant out of range")),
    }
}

fn reason_from(code: u64) -> Result<RebootReason, SegmentError> {
    match code {
        0 => Ok(RebootReason::OutOfMemory),
        1 => Ok(RebootReason::Watchdog),
        2 => Ok(RebootReason::Fault),
        3 => Ok(RebootReason::Requested),
        4 => Ok(RebootReason::PowerLoss),
        _ => Err(corrupt("reboot-reason code out of range")),
    }
}

/// Packs normalized [`Capabilities`] into one varint:
/// `generation | dual_band << 2 | forty_mhz << 3 | streams << 4`.
fn pack_caps(caps: Capabilities) -> u64 {
    (caps.generation() as u64)
        | (u64::from(caps.dual_band()) << 2)
        | (u64::from(caps.forty_mhz()) << 3)
        | (u64::from(caps.streams()) << 4)
}

fn unpack_caps(v: u64) -> Result<Capabilities, SegmentError> {
    let generation = generation_from(v & 0b11)?;
    let dual_band = (v >> 2) & 1 == 1;
    let forty_mhz = (v >> 3) & 1 == 1;
    let streams = u8::try_from(v >> 4).map_err(|_| corrupt("capability streams out of range"))?;
    let caps = Capabilities::new(generation, dual_band, forty_mhz, streams);
    // Stored capabilities were normalized by `Capabilities::new` before
    // they ever reached a shard, so re-normalizing must be the identity;
    // anything else is a tampered or corrupt field.
    if pack_caps(caps) != v {
        return Err(corrupt("denormalized capability bits"));
    }
    Ok(caps)
}

fn channel_from(band: u64, number: u64) -> Result<Channel, SegmentError> {
    let band = band_from(band)?;
    let number = u16::try_from(number).map_err(|_| corrupt("channel number out of range"))?;
    Channel::new(band, number).ok_or_else(|| corrupt("invalid channel number for band"))
}

// ---------------------------------------------------------------------
// Block framing
// ---------------------------------------------------------------------

/// Appends one guarded block: `tag varint · length varint · body ·
/// crc32(tag‖length‖body) u32 LE`. The CRC covers the framing too, so a
/// flipped bit in the tag or length is caught instead of desynchronizing
/// the block stream.
fn put_block(out: &mut Vec<u8>, tag: u64, body: &[u8]) {
    let start = out.len();
    put_varint(out, tag);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(body);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------
// Table encoders (column-major bodies; docs/SEGMENT_FORMAT.md §4)
// ---------------------------------------------------------------------

fn encode_usage(out: &mut Vec<u8>, usage: &BTreeMap<(MacAddress, Application), UsageTotals>) {
    put_varint(out, usage.len() as u64);
    for (mac, _) in usage.keys() {
        out.extend_from_slice(&mac.0);
    }
    for (_, app) in usage.keys() {
        put_varint(out, *app as u64);
    }
    for totals in usage.values() {
        put_varint(out, totals.up_bytes);
    }
    for totals in usage.values() {
        put_varint(out, totals.down_bytes);
    }
}

fn encode_clients(out: &mut Vec<u8>, clients: &BTreeMap<MacAddress, (ClientMeta, ClientIdentity)>) {
    put_varint(out, clients.len() as u64);
    for mac in clients.keys() {
        out.extend_from_slice(&mac.0);
    }
    for (meta, _) in clients.values() {
        put_varint(out, meta.device);
    }
    for (meta, _) in clients.values() {
        put_varint(out, meta.seq);
    }
    for (meta, _) in clients.values() {
        put_varint(out, u64::from(meta.slot));
    }
    for (_, identity) in clients.values() {
        put_varint(out, identity.os as u64);
    }
    for (_, identity) in clients.values() {
        put_varint(out, pack_caps(identity.caps));
    }
    for (_, identity) in clients.values() {
        put_varint(out, identity.band as u64);
    }
    for (_, identity) in clients.values() {
        out.extend_from_slice(&identity.rssi_dbm.to_le_bytes());
    }
}

fn encode_links(out: &mut Vec<u8>, links: &BTreeMap<LinkKey, Vec<LinkObservation>>) {
    put_varint(out, links.len() as u64);
    for key in links.keys() {
        put_varint(out, key.rx_device);
    }
    for key in links.keys() {
        put_varint(out, key.tx_device);
    }
    for key in links.keys() {
        put_varint(out, key.band as u64);
    }
    for series in links.values() {
        put_varint(out, series.len() as u64);
    }
    for series in links.values() {
        for obs in series {
            put_varint(out, obs.timestamp_s);
        }
    }
    for series in links.values() {
        for obs in series {
            out.extend_from_slice(&obs.ratio.to_le_bytes());
        }
    }
}

fn encode_airtime(out: &mut Vec<u8>, airtime: &BTreeMap<(u64, Band), AirtimeLedger>) {
    put_varint(out, airtime.len() as u64);
    for (device, _) in airtime.keys() {
        put_varint(out, *device);
    }
    for (_, band) in airtime.keys() {
        put_varint(out, *band as u64);
    }
    for ledger in airtime.values() {
        put_varint(out, ledger.elapsed_us());
    }
    for ledger in airtime.values() {
        put_varint(out, ledger.busy_us());
    }
    for ledger in airtime.values() {
        put_varint(out, ledger.wifi_us());
    }
}

fn encode_neighbors(out: &mut Vec<u8>, neighbors: &NeighborTable) {
    put_varint(out, neighbors.len() as u64);
    for device in neighbors.keys() {
        put_varint(out, *device);
    }
    for (meta, _) in neighbors.values() {
        put_varint(out, meta.device);
    }
    for (meta, _) in neighbors.values() {
        put_varint(out, meta.seq);
    }
    for (meta, _) in neighbors.values() {
        put_varint(out, u64::from(meta.slot));
    }
    for (_, rows) in neighbors.values() {
        put_varint(out, rows.len() as u64);
    }
    for (_, rows) in neighbors.values() {
        for (band, _, _, _) in rows {
            put_varint(out, *band as u64);
        }
    }
    for (_, rows) in neighbors.values() {
        for (_, number, _, _) in rows {
            put_varint(out, u64::from(*number));
        }
    }
    for (_, rows) in neighbors.values() {
        for (_, _, networks, _) in rows {
            put_varint(out, u64::from(*networks));
        }
    }
    for (_, rows) in neighbors.values() {
        for (_, _, _, hotspots) in rows {
            put_varint(out, u64::from(*hotspots));
        }
    }
}

fn encode_scans(out: &mut Vec<u8>, scans: &BTreeMap<u64, BTreeMap<(u64, u32), ScanObservation>>) {
    put_varint(out, scans.len() as u64);
    for device in scans.keys() {
        put_varint(out, *device);
    }
    for per_device in scans.values() {
        put_varint(out, per_device.len() as u64);
    }
    for per_device in scans.values() {
        for (seq, _) in per_device.keys() {
            put_varint(out, *seq);
        }
    }
    for per_device in scans.values() {
        for (_, slot) in per_device.keys() {
            put_varint(out, u64::from(*slot));
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, obs.timestamp_s);
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, obs.record.channel.band as u64);
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, u64::from(obs.record.channel.number));
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, u64::from(obs.record.utilization_ppm));
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, u64::from(obs.record.decodable_ppm));
        }
    }
    for per_device in scans.values() {
        for obs in per_device.values() {
            put_varint(out, u64::from(obs.record.networks));
        }
    }
}

fn encode_crashes(out: &mut Vec<u8>, crashes: &BTreeMap<u64, BTreeMap<(u64, u32), CrashReport>>) {
    put_varint(out, crashes.len() as u64);
    for device in crashes.keys() {
        put_varint(out, *device);
    }
    for per_device in crashes.values() {
        put_varint(out, per_device.len() as u64);
    }
    for per_device in crashes.values() {
        for (seq, _) in per_device.keys() {
            put_varint(out, *seq);
        }
    }
    for per_device in crashes.values() {
        for (_, slot) in per_device.keys() {
            put_varint(out, u64::from(*slot));
        }
    }
    for per_device in crashes.values() {
        for report in per_device.values() {
            put_varint(out, u64::from(report.reason.code()));
        }
    }
    for per_device in crashes.values() {
        for report in per_device.values() {
            put_varint(out, report.program_counter);
        }
    }
    for per_device in crashes.values() {
        for report in per_device.values() {
            put_varint(out, report.uptime_s);
        }
    }
    for per_device in crashes.values() {
        for report in per_device.values() {
            put_varint(out, report.free_memory_bytes);
        }
    }
    for per_device in crashes.values() {
        for report in per_device.values() {
            put_varint(out, report.firmware.len() as u64);
            out.extend_from_slice(report.firmware.as_bytes());
        }
    }
}

fn encode_dedup(out: &mut Vec<u8>, shard: &StoreShard) {
    let entries = shard.dedup_entries();
    put_varint(out, entries.len() as u64);
    for ((window, _), _) in &entries {
        put_varint(out, u64::from(window.0));
    }
    for ((_, device), _) in &entries {
        put_varint(out, *device);
    }
    for (_, set) in &entries {
        put_varint(out, set.parts().0);
    }
    for (_, set) in &entries {
        put_varint(out, set.parts().1.len() as u64);
    }
    for (_, set) in &entries {
        for seq in set.parts().1 {
            put_varint(out, *seq);
        }
    }
}

/// Rows a window's tables contribute to the header's zone summary:
/// usage cells + client identities + link observations + airtime
/// ledgers + census rows + scan observations + crash rows.
fn table_rows(tables: &WindowTables) -> u64 {
    tables.usage.len() as u64
        + tables.clients.len() as u64
        + tables.links.values().map(|s| s.len() as u64).sum::<u64>()
        + tables.airtime.len() as u64
        + tables
            .neighbors
            .values()
            .map(|(_, r)| r.len() as u64)
            .sum::<u64>()
        + tables.scans.values().map(|m| m.len() as u64).sum::<u64>()
        + tables.crashes.values().map(|m| m.len() as u64).sum::<u64>()
}

/// Encodes one shard as a complete segment byte image
/// (docs/SEGMENT_FORMAT.md §§2–4).
pub(crate) fn encode_segment(shard: &StoreShard, epoch: u64, index: u32, count: u32) -> Vec<u8> {
    let mut window_count = 0u32;
    let mut min_window = u16::MAX;
    let mut max_window = 0u16;
    let mut total_rows = 0u64;
    for (window, tables) in shard.windows() {
        window_count += 1;
        min_window = min_window.min(window.0);
        max_window = max_window.max(window.0);
        total_rows += table_rows(tables);
    }
    if window_count == 0 {
        min_window = 0;
        max_window = 0;
    }

    let mut out = Vec::new();
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&index.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&window_count.to_le_bytes());
    out.extend_from_slice(&min_window.to_le_bytes());
    out.extend_from_slice(&max_window.to_le_bytes());
    out.extend_from_slice(&total_rows.to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(out.len(), SEGMENT_HEADER_LEN);

    let mut body = Vec::new();
    for (window, tables) in shard.windows() {
        body.clear();
        put_varint(&mut body, u64::from(window.0));
        put_block(&mut out, BLOCK_WINDOW, &body);
        if !tables.usage.is_empty() {
            body.clear();
            encode_usage(&mut body, &tables.usage);
            put_block(&mut out, BLOCK_USAGE, &body);
        }
        if !tables.clients.is_empty() {
            body.clear();
            encode_clients(&mut body, &tables.clients);
            put_block(&mut out, BLOCK_CLIENTS, &body);
        }
        if !tables.links.is_empty() {
            body.clear();
            encode_links(&mut body, &tables.links);
            put_block(&mut out, BLOCK_LINKS, &body);
        }
        if !tables.airtime.is_empty() {
            body.clear();
            encode_airtime(&mut body, &tables.airtime);
            put_block(&mut out, BLOCK_AIRTIME, &body);
        }
        if !tables.neighbors.is_empty() {
            body.clear();
            encode_neighbors(&mut body, &tables.neighbors);
            put_block(&mut out, BLOCK_NEIGHBORS, &body);
        }
        if !tables.scans.is_empty() {
            body.clear();
            encode_scans(&mut body, &tables.scans);
            put_block(&mut out, BLOCK_SCANS, &body);
        }
        if !tables.crashes.is_empty() {
            body.clear();
            encode_crashes(&mut body, &tables.crashes);
            put_block(&mut out, BLOCK_CRASHES, &body);
        }
    }
    body.clear();
    encode_dedup(&mut body, shard);
    put_block(&mut out, BLOCK_DEDUP, &body);
    body.clear();
    put_varint(&mut body, shard.reports_ingested());
    put_varint(&mut body, shard.duplicates_dropped());
    put_block(&mut out, BLOCK_COUNTERS, &body);
    put_block(&mut out, BLOCK_END, &[]);
    out
}

// ---------------------------------------------------------------------
// Table decoders
// ---------------------------------------------------------------------

fn decode_usage(
    body: &[u8],
    apps: &[Option<Application>],
) -> Result<BTreeMap<(MacAddress, Application), UsageTotals>, SegmentError> {
    let mut cur = Cursor::new(body);
    let n = cur.count(9, "usage row count exceeds block size")?;
    let mut macs = Vec::with_capacity(n);
    for _ in 0..n {
        let bytes = cur.take(6, "truncated MAC column")?;
        macs.push(MacAddress(
            bytes
                .try_into()
                .expect("invariant: take(6) returned exactly 6 bytes"),
        ));
    }
    let mut app_col = Vec::with_capacity(n);
    for _ in 0..n {
        let d = cur.varint()?;
        let app = usize::try_from(d)
            .ok()
            .and_then(|i| apps.get(i).copied().flatten())
            .ok_or_else(|| corrupt("application discriminant out of range"))?;
        app_col.push(app);
    }
    let mut ups = Vec::with_capacity(n);
    for _ in 0..n {
        ups.push(cur.varint()?);
    }
    let mut map = BTreeMap::new();
    for i in 0..n {
        let down = cur.varint()?;
        map.insert(
            (macs[i], app_col[i]),
            UsageTotals {
                up_bytes: ups[i],
                down_bytes: down,
            },
        );
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in usage block"));
    }
    Ok(map)
}

fn decode_clients(
    body: &[u8],
    oses: &[Option<OsFamily>],
) -> Result<BTreeMap<MacAddress, (ClientMeta, ClientIdentity)>, SegmentError> {
    let mut cur = Cursor::new(body);
    let n = cur.count(6 + 6 + 8, "client row count exceeds block size")?;
    let mut macs = Vec::with_capacity(n);
    for _ in 0..n {
        let bytes = cur.take(6, "truncated MAC column")?;
        macs.push(MacAddress(
            bytes
                .try_into()
                .expect("invariant: take(6) returned exactly 6 bytes"),
        ));
    }
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        devices.push(cur.varint()?);
    }
    let mut seqs = Vec::with_capacity(n);
    for _ in 0..n {
        seqs.push(cur.varint()?);
    }
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let slot = cur.varint()?;
        slots.push(u32::try_from(slot).map_err(|_| corrupt("client slot out of range"))?);
    }
    let mut os_col = Vec::with_capacity(n);
    for _ in 0..n {
        let d = cur.varint()?;
        let os = usize::try_from(d)
            .ok()
            .and_then(|i| oses.get(i).copied().flatten())
            .ok_or_else(|| corrupt("OS-family discriminant out of range"))?;
        os_col.push(os);
    }
    let mut caps_col = Vec::with_capacity(n);
    for _ in 0..n {
        caps_col.push(unpack_caps(cur.varint()?)?);
    }
    let mut bands = Vec::with_capacity(n);
    for _ in 0..n {
        bands.push(band_from(cur.varint()?)?);
    }
    let mut map = BTreeMap::new();
    for i in 0..n {
        let rssi_dbm = cur.f64()?;
        map.insert(
            macs[i],
            (
                ClientMeta {
                    device: devices[i],
                    seq: seqs[i],
                    slot: slots[i],
                },
                ClientIdentity {
                    os: os_col[i],
                    caps: caps_col[i],
                    band: bands[i],
                    rssi_dbm,
                },
            ),
        );
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in clients block"));
    }
    Ok(map)
}

fn decode_links(body: &[u8]) -> Result<BTreeMap<LinkKey, Vec<LinkObservation>>, SegmentError> {
    let mut cur = Cursor::new(body);
    let k = cur.count(4, "link key count exceeds block size")?;
    let mut rx = Vec::with_capacity(k);
    for _ in 0..k {
        rx.push(cur.varint()?);
    }
    let mut tx = Vec::with_capacity(k);
    for _ in 0..k {
        tx.push(cur.varint()?);
    }
    let mut bands = Vec::with_capacity(k);
    for _ in 0..k {
        bands.push(band_from(cur.varint()?)?);
    }
    let mut lens = Vec::with_capacity(k);
    for _ in 0..k {
        lens.push(cur.count(1, "link series length exceeds block size")?);
    }
    let total: usize = lens.iter().sum();
    let mut timestamps = Vec::with_capacity(total);
    for _ in 0..total {
        timestamps.push(cur.varint()?);
    }
    let mut map = BTreeMap::new();
    let mut offset = 0usize;
    for i in 0..k {
        let mut series = Vec::with_capacity(lens[i]);
        for t in &timestamps[offset..offset + lens[i]] {
            series.push(LinkObservation {
                timestamp_s: *t,
                ratio: cur.f64()?,
            });
        }
        offset += lens[i];
        map.insert(
            LinkKey {
                rx_device: rx[i],
                tx_device: tx[i],
                band: bands[i],
            },
            series,
        );
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in links block"));
    }
    Ok(map)
}

fn decode_airtime(body: &[u8]) -> Result<BTreeMap<(u64, Band), AirtimeLedger>, SegmentError> {
    let mut cur = Cursor::new(body);
    let n = cur.count(5, "airtime row count exceeds block size")?;
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        devices.push(cur.varint()?);
    }
    let mut bands = Vec::with_capacity(n);
    for _ in 0..n {
        bands.push(band_from(cur.varint()?)?);
    }
    let mut elapsed = Vec::with_capacity(n);
    for _ in 0..n {
        elapsed.push(cur.varint()?);
    }
    let mut busy = Vec::with_capacity(n);
    for _ in 0..n {
        busy.push(cur.varint()?);
    }
    let mut map = BTreeMap::new();
    for i in 0..n {
        let wifi = cur.varint()?;
        if busy[i] > elapsed[i] || wifi > busy[i] {
            return Err(corrupt(
                "airtime ledger violates busy ≤ elapsed, wifi ≤ busy",
            ));
        }
        let mut ledger = AirtimeLedger::default();
        // The stored values satisfy the ledger's clamping invariant
        // (checked above), so one account() call restores them exactly.
        ledger.account(elapsed[i], busy[i], wifi);
        map.insert((devices[i], bands[i]), ledger);
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in airtime block"));
    }
    Ok(map)
}

fn decode_neighbors(body: &[u8]) -> Result<NeighborTable, SegmentError> {
    let mut cur = Cursor::new(body);
    let d = cur.count(5, "neighbor device count exceeds block size")?;
    let mut keys = Vec::with_capacity(d);
    for _ in 0..d {
        keys.push(cur.varint()?);
    }
    let mut meta_devices = Vec::with_capacity(d);
    for _ in 0..d {
        meta_devices.push(cur.varint()?);
    }
    let mut seqs = Vec::with_capacity(d);
    for _ in 0..d {
        seqs.push(cur.varint()?);
    }
    let mut slots = Vec::with_capacity(d);
    for _ in 0..d {
        let slot = cur.varint()?;
        slots.push(u32::try_from(slot).map_err(|_| corrupt("neighbor slot out of range"))?);
    }
    let mut lens = Vec::with_capacity(d);
    for _ in 0..d {
        lens.push(cur.count(1, "census row count exceeds block size")?);
    }
    let total: usize = lens.iter().sum();
    let mut bands = Vec::with_capacity(total);
    for _ in 0..total {
        bands.push(band_from(cur.varint()?)?);
    }
    let mut numbers = Vec::with_capacity(total);
    for _ in 0..total {
        let number = cur.varint()?;
        numbers.push(u16::try_from(number).map_err(|_| corrupt("channel number out of range"))?);
    }
    let mut networks = Vec::with_capacity(total);
    for _ in 0..total {
        let v = cur.varint()?;
        networks.push(u32::try_from(v).map_err(|_| corrupt("network count out of range"))?);
    }
    let mut map = BTreeMap::new();
    let mut offset = 0usize;
    for i in 0..d {
        let mut rows = Vec::with_capacity(lens[i]);
        for j in offset..offset + lens[i] {
            let hotspots = cur.varint()?;
            let hotspots =
                u32::try_from(hotspots).map_err(|_| corrupt("hotspot count out of range"))?;
            rows.push((bands[j], numbers[j], networks[j], hotspots));
        }
        offset += lens[i];
        map.insert(
            keys[i],
            (
                ClientMeta {
                    device: meta_devices[i],
                    seq: seqs[i],
                    slot: slots[i],
                },
                rows,
            ),
        );
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in neighbors block"));
    }
    Ok(map)
}

fn decode_scans(body: &[u8]) -> Result<KeyedTable<ScanObservation>, SegmentError> {
    let mut cur = Cursor::new(body);
    let d = cur.count(2, "scan device count exceeds block size")?;
    let mut keys = Vec::with_capacity(d);
    for _ in 0..d {
        keys.push(cur.varint()?);
    }
    let mut lens = Vec::with_capacity(d);
    for _ in 0..d {
        lens.push(cur.count(1, "scan observation count exceeds block size")?);
    }
    let total: usize = lens.iter().sum();
    let mut seqs = Vec::with_capacity(total);
    for _ in 0..total {
        seqs.push(cur.varint()?);
    }
    let mut slots = Vec::with_capacity(total);
    for _ in 0..total {
        let slot = cur.varint()?;
        slots.push(u32::try_from(slot).map_err(|_| corrupt("scan slot out of range"))?);
    }
    let mut timestamps = Vec::with_capacity(total);
    for _ in 0..total {
        timestamps.push(cur.varint()?);
    }
    let mut bands = Vec::with_capacity(total);
    for _ in 0..total {
        bands.push(cur.varint()?);
    }
    let mut channels = Vec::with_capacity(total);
    for &band in &bands {
        channels.push(channel_from(band, cur.varint()?)?);
    }
    let mut utilization = Vec::with_capacity(total);
    for _ in 0..total {
        let v = cur.varint()?;
        utilization.push(u32::try_from(v).map_err(|_| corrupt("utilization out of range"))?);
    }
    let mut decodable = Vec::with_capacity(total);
    for _ in 0..total {
        let v = cur.varint()?;
        decodable.push(u32::try_from(v).map_err(|_| corrupt("decodable share out of range"))?);
    }
    let mut map = BTreeMap::new();
    let mut offset = 0usize;
    for i in 0..d {
        let mut per_device = BTreeMap::new();
        for j in offset..offset + lens[i] {
            let networks = cur.varint()?;
            let networks =
                u32::try_from(networks).map_err(|_| corrupt("network count out of range"))?;
            per_device.insert(
                (seqs[j], slots[j]),
                ScanObservation {
                    timestamp_s: timestamps[j],
                    record: ChannelScanRecord {
                        channel: channels[j],
                        utilization_ppm: utilization[j],
                        decodable_ppm: decodable[j],
                        networks,
                    },
                },
            );
        }
        offset += lens[i];
        map.insert(keys[i], per_device);
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in scans block"));
    }
    Ok(map)
}

fn decode_crashes(body: &[u8]) -> Result<KeyedTable<CrashReport>, SegmentError> {
    let mut cur = Cursor::new(body);
    let d = cur.count(2, "crash device count exceeds block size")?;
    let mut keys = Vec::with_capacity(d);
    for _ in 0..d {
        keys.push(cur.varint()?);
    }
    let mut lens = Vec::with_capacity(d);
    for _ in 0..d {
        lens.push(cur.count(1, "crash row count exceeds block size")?);
    }
    let total: usize = lens.iter().sum();
    let mut seqs = Vec::with_capacity(total);
    for _ in 0..total {
        seqs.push(cur.varint()?);
    }
    let mut slots = Vec::with_capacity(total);
    for _ in 0..total {
        let slot = cur.varint()?;
        slots.push(u32::try_from(slot).map_err(|_| corrupt("crash slot out of range"))?);
    }
    let mut reasons = Vec::with_capacity(total);
    for _ in 0..total {
        reasons.push(reason_from(cur.varint()?)?);
    }
    let mut pcs = Vec::with_capacity(total);
    for _ in 0..total {
        pcs.push(cur.varint()?);
    }
    let mut uptimes = Vec::with_capacity(total);
    for _ in 0..total {
        uptimes.push(cur.varint()?);
    }
    let mut free_memory = Vec::with_capacity(total);
    for _ in 0..total {
        free_memory.push(cur.varint()?);
    }
    let mut map = BTreeMap::new();
    let mut offset = 0usize;
    for i in 0..d {
        let mut per_device = BTreeMap::new();
        for j in offset..offset + lens[i] {
            let len = cur.count(1, "firmware string length exceeds block size")?;
            let bytes = cur.take(len, "truncated firmware string")?;
            let firmware = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("firmware string is not UTF-8"))?
                .to_string();
            per_device.insert(
                (seqs[j], slots[j]),
                CrashReport {
                    device: keys[i],
                    firmware,
                    reason: reasons[j],
                    program_counter: pcs[j],
                    uptime_s: uptimes[j],
                    free_memory_bytes: free_memory[j],
                },
            );
        }
        offset += lens[i];
        map.insert(keys[i], per_device);
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in crashes block"));
    }
    Ok(map)
}

// airstat::allow(no-hashmap-iter): returns the shard's keyed-access
// ledger type; canonical order is enforced on the segment bytes.
fn decode_dedup(body: &[u8]) -> Result<HashMap<(WindowId, u64), SeqSet>, SegmentError> {
    let mut cur = Cursor::new(body);
    let n = cur.count(4, "dedup entry count exceeds block size")?;
    let mut windows = Vec::with_capacity(n);
    for _ in 0..n {
        let w = cur.varint()?;
        windows.push(WindowId(
            u16::try_from(w).map_err(|_| corrupt("window id out of range"))?,
        ));
    }
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        devices.push(cur.varint()?);
    }
    let mut watermarks = Vec::with_capacity(n);
    for _ in 0..n {
        watermarks.push(cur.varint()?);
    }
    let mut lens = Vec::with_capacity(n);
    for _ in 0..n {
        lens.push(cur.count(1, "sparse tail length exceeds block size")?);
    }
    let mut map = HashMap::with_capacity(n);
    let mut last_key: Option<(WindowId, u64)> = None;
    for i in 0..n {
        let key = (windows[i], devices[i]);
        if let Some(last) = last_key {
            if key <= last {
                return Err(corrupt(
                    "dedup entries not in ascending (window, device) order",
                ));
            }
        }
        last_key = Some(key);
        let mut sparse = BTreeSet::new();
        let mut previous = watermarks[i];
        for _ in 0..lens[i] {
            let seq = cur.varint()?;
            if seq <= previous {
                return Err(corrupt("sparse dedup tail not strictly ascending"));
            }
            previous = seq;
            sparse.insert(seq);
        }
        map.insert(key, SeqSet::from_parts(watermarks[i], sparse));
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in dedup block"));
    }
    // airstat::allow(unordered-collection-escape): the rebuilt dedup
    // ledger is keyed-access only; its canonical order lives in the
    // sorted segment bytes it was decoded from, never in map iteration.
    Ok(map)
}

// ---------------------------------------------------------------------
// Segment decode
// ---------------------------------------------------------------------

/// What the manifest says a segment must be; decode cross-checks the
/// segment header against it so a file cannot be swapped between shard
/// slots or epochs undetected.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegmentExpectation {
    pub(crate) epoch: u64,
    pub(crate) index: u32,
    pub(crate) count: u32,
}

/// Running verification counters for one decode pass.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DecodeTally {
    pub(crate) crc_checks: u64,
}

/// Decodes one segment image back into a [`StoreShard`], verifying
/// magic, version, every CRC, the block grammar, and the header's
/// zone-map summary.
pub(crate) fn decode_segment(
    bytes: &[u8],
    expect: SegmentExpectation,
    tally: &mut DecodeTally,
) -> Result<StoreShard, SegmentError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(corrupt("segment shorter than its fixed header"));
    }
    let mut header = Cursor::new(&bytes[..SEGMENT_HEADER_LEN]);
    let magic = header.take(4, "truncated segment header")?;
    if magic != SEGMENT_MAGIC {
        return Err(SegmentError::Magic { context: "segment" });
    }
    let version = header.u32_le("truncated segment header")?;
    if version != SEGMENT_SCHEMA_VERSION {
        return Err(SegmentError::Version {
            found: version,
            supported: SEGMENT_SCHEMA_VERSION,
        });
    }
    let epoch_bytes = header.take(8, "truncated segment header")?;
    let epoch = u64::from_le_bytes(
        epoch_bytes
            .try_into()
            .expect("invariant: take(8) returned exactly 8 bytes"),
    );
    let index = header.u32_le("truncated segment header")?;
    let count = header.u32_le("truncated segment header")?;
    let window_count = header.u32_le("truncated segment header")?;
    let min_window = header.take(2, "truncated segment header")?;
    let min_window = u16::from_le_bytes([min_window[0], min_window[1]]);
    let max_window = header.take(2, "truncated segment header")?;
    let max_window = u16::from_le_bytes([max_window[0], max_window[1]]);
    let total_rows_bytes = header.take(8, "truncated segment header")?;
    let total_rows = u64::from_le_bytes(
        total_rows_bytes
            .try_into()
            .expect("invariant: take(8) returned exactly 8 bytes"),
    );
    let stored_crc = header.u32_le("truncated segment header")?;
    let computed_crc = crc32(&bytes[..SEGMENT_HEADER_LEN - 4]);
    tally.crc_checks += 1;
    if stored_crc != computed_crc {
        return Err(SegmentError::Crc {
            context: "segment header",
            stored: stored_crc,
            computed: computed_crc,
        });
    }
    if epoch != expect.epoch || index != expect.index || count != expect.count {
        return Err(corrupt("segment header disagrees with the manifest"));
    }

    let apps = application_lanes();
    let oses = os_lanes();
    let mut cur = Cursor::new(&bytes[SEGMENT_HEADER_LEN..]);
    let mut windows: BTreeMap<WindowId, WindowTables> = BTreeMap::new();
    let mut current: Option<(WindowId, WindowTables)> = None;
    // airstat::allow(no-hashmap-iter): holds decode_dedup's keyed-access
    // result until from_parts; never iterated here.
    let mut dedup: Option<HashMap<(WindowId, u64), SeqSet>> = None;
    let mut counters: Option<(u64, u64)> = None;
    let mut ended = false;
    while !ended {
        let block_start = cur.pos;
        let tag = cur.varint()?;
        let len = cur.count(1, "block length exceeds file size")?;
        let body = cur.take(len, "truncated block body")?;
        let stored = cur.u32_le("truncated block checksum")?;
        let computed = crc32(&cur.buf[block_start..cur.pos - 4]);
        tally.crc_checks += 1;
        if stored != computed {
            return Err(SegmentError::Crc {
                context: "column block",
                stored,
                computed,
            });
        }
        match tag {
            BLOCK_END => {
                if !body.is_empty() {
                    return Err(corrupt("end block carries a body"));
                }
                ended = true;
            }
            BLOCK_WINDOW => {
                if dedup.is_some() || counters.is_some() {
                    return Err(corrupt("window block after shard-level blocks"));
                }
                let mut wb = Cursor::new(body);
                let w = wb.varint()?;
                if !wb.done() {
                    return Err(corrupt("trailing bytes in window block"));
                }
                let window =
                    WindowId(u16::try_from(w).map_err(|_| corrupt("window id out of range"))?);
                if let Some((previous, tables)) = current.take() {
                    if window <= previous {
                        return Err(corrupt("windows not in ascending order"));
                    }
                    windows.insert(previous, tables);
                }
                current = Some((window, WindowTables::default()));
            }
            BLOCK_DEDUP => {
                if dedup.is_some() {
                    return Err(corrupt("duplicate dedup block"));
                }
                dedup = Some(decode_dedup(body)?);
            }
            BLOCK_COUNTERS => {
                if counters.is_some() {
                    return Err(corrupt("duplicate counters block"));
                }
                let mut cb = Cursor::new(body);
                let ingested = cb.varint()?;
                let duplicates = cb.varint()?;
                if !cb.done() {
                    return Err(corrupt("trailing bytes in counters block"));
                }
                counters = Some((ingested, duplicates));
            }
            _ => {
                if dedup.is_some() || counters.is_some() {
                    return Err(corrupt("table block after shard-level blocks"));
                }
                let Some((_, tables)) = current.as_mut() else {
                    return Err(corrupt("table block outside a window"));
                };
                match tag {
                    BLOCK_USAGE if tables.usage.is_empty() => {
                        tables.usage = decode_usage(body, &apps)?;
                    }
                    BLOCK_CLIENTS if tables.clients.is_empty() => {
                        tables.clients = decode_clients(body, &oses)?;
                    }
                    BLOCK_LINKS if tables.links.is_empty() => {
                        tables.links = decode_links(body)?;
                    }
                    BLOCK_AIRTIME if tables.airtime.is_empty() => {
                        tables.airtime = decode_airtime(body)?;
                    }
                    BLOCK_NEIGHBORS if tables.neighbors.is_empty() => {
                        tables.neighbors = decode_neighbors(body)?;
                    }
                    BLOCK_SCANS if tables.scans.is_empty() => {
                        tables.scans = decode_scans(body)?;
                    }
                    BLOCK_CRASHES if tables.crashes.is_empty() => {
                        tables.crashes = decode_crashes(body)?;
                    }
                    BLOCK_USAGE | BLOCK_CLIENTS | BLOCK_LINKS | BLOCK_AIRTIME | BLOCK_NEIGHBORS
                    | BLOCK_SCANS | BLOCK_CRASHES => {
                        return Err(corrupt("duplicate table block in one window"));
                    }
                    _ => return Err(corrupt("unknown block tag")),
                }
            }
        }
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes after end block"));
    }
    if let Some((window, tables)) = current.take() {
        windows.insert(window, tables);
    }
    let Some(seen) = dedup else {
        return Err(corrupt("segment is missing its dedup block"));
    };
    let Some((reports_ingested, duplicates_dropped)) = counters else {
        return Err(corrupt("segment is missing its counters block"));
    };

    // Re-verify the header's zone-map summary against the decoded rows.
    let decoded_window_count = u32::try_from(windows.len())
        .map_err(|_| corrupt("window count exceeds header field range"))?;
    let (decoded_min, decoded_max) = match (windows.keys().next(), windows.keys().next_back()) {
        (Some(first), Some(last)) => (first.0, last.0),
        _ => (0, 0),
    };
    let decoded_rows: u64 = windows.values().map(table_rows).sum();
    if decoded_window_count != window_count
        || decoded_min != min_window
        || decoded_max != max_window
        || decoded_rows != total_rows
    {
        return Err(corrupt("zone-map summary disagrees with decoded blocks"));
    }
    Ok(StoreShard::from_parts(
        seen,
        duplicates_dropped,
        reports_ingested,
        windows,
    ))
}

// ---------------------------------------------------------------------
// Files: atomic writes, manifest, segment set
// ---------------------------------------------------------------------

/// The file name of the segment holding shard `index` at `epoch`.
pub(crate) fn segment_file_name(epoch: u64, index: u32) -> String {
    format!("seg-{epoch:016x}-{index:04x}.aseg")
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written and
/// synced, then renamed into place. Readers therefore never observe a
/// partially written file under the final name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SegmentError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = fs::File::create(&tmp).map_err(io_err("create temp store file"))?;
    file.write_all(bytes)
        .map_err(io_err("write temp store file"))?;
    file.sync_all().map_err(io_err("sync temp store file"))?;
    drop(file);
    fs::rename(&tmp, path).map_err(io_err("rename temp store file into place"))
}

/// One live delta segment named by the manifest: the epoch it was
/// persisted at (which names its file — see [`segment_file_name`]) and
/// its byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ManifestEntry {
    /// Persist epoch the delta was written at.
    pub(crate) epoch: u64,
    /// Byte length of the segment file.
    pub(crate) len: u64,
}

/// Parsed manifest: the store's committed epoch and, per shard, the
/// ordered delta chain (oldest to newest) that reconstructs it.
#[derive(Debug, Clone)]
pub(crate) struct Manifest {
    pub(crate) epoch: u64,
    /// Per-shard delta chains, in shard order.
    pub(crate) lists: Vec<Vec<ManifestEntry>>,
}

fn encode_manifest(epoch: u64, lists: &[Vec<ManifestEntry>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.extend_from_slice(&SEGMENT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(lists.len() as u32).to_le_bytes());
    for chain in lists {
        out.extend_from_slice(&(chain.len() as u32).to_le_bytes());
        for entry in chain {
            out.extend_from_slice(&entry.epoch.to_le_bytes());
            out.extend_from_slice(&entry.len.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8], tally: &mut DecodeTally) -> Result<Manifest, SegmentError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(4, "truncated manifest")?;
    if magic != MANIFEST_MAGIC {
        return Err(SegmentError::Magic {
            context: "manifest",
        });
    }
    let version = cur.u32_le("truncated manifest")?;
    if version != SEGMENT_SCHEMA_VERSION {
        return Err(SegmentError::Version {
            found: version,
            supported: SEGMENT_SCHEMA_VERSION,
        });
    }
    let epoch_bytes = cur.take(8, "truncated manifest")?;
    let epoch = u64::from_le_bytes(
        epoch_bytes
            .try_into()
            .expect("invariant: take(8) returned exactly 8 bytes"),
    );
    let count = cur.u32_le("truncated manifest")?;
    let count = usize::try_from(count).map_err(|_| corrupt("manifest shard count out of range"))?;
    if count == 0 || count.saturating_mul(4) > cur.remaining() {
        return Err(corrupt("manifest shard count exceeds file size"));
    }
    let mut lists = Vec::with_capacity(count);
    for _ in 0..count {
        let deltas = cur.u32_le("truncated manifest delta count")?;
        let deltas =
            usize::try_from(deltas).map_err(|_| corrupt("manifest delta count out of range"))?;
        if deltas.saturating_mul(16) > cur.remaining() {
            return Err(corrupt("manifest delta count exceeds file size"));
        }
        let mut chain = Vec::with_capacity(deltas);
        let mut previous: Option<u64> = None;
        for _ in 0..deltas {
            let epoch_bytes = cur.take(8, "truncated manifest entry")?;
            let delta_epoch = u64::from_le_bytes(
                epoch_bytes
                    .try_into()
                    .expect("invariant: take(8) returned exactly 8 bytes"),
            );
            if previous.is_some_and(|p| delta_epoch <= p) {
                return Err(corrupt("manifest delta chain not in ascending epoch order"));
            }
            previous = Some(delta_epoch);
            let len_bytes = cur.take(8, "truncated manifest entry")?;
            let len = u64::from_le_bytes(
                len_bytes
                    .try_into()
                    .expect("invariant: take(8) returned exactly 8 bytes"),
            );
            chain.push(ManifestEntry {
                epoch: delta_epoch,
                len,
            });
        }
        lists.push(chain);
    }
    let stored = cur.u32_le("truncated manifest checksum")?;
    let computed = crc32(&bytes[..bytes.len() - 4]);
    tally.crc_checks += 1;
    if stored != computed {
        return Err(SegmentError::Crc {
            context: "manifest",
            stored,
            computed,
        });
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in manifest"));
    }
    Ok(Manifest { epoch, lists })
}

/// Commits `lists` as the live segment set: writes the manifest (the
/// single commit point), deletes files the new set no longer
/// references, and resets the tail log to base `epoch`.
fn commit_manifest(
    lists: &[Vec<ManifestEntry>],
    epoch: u64,
    dir: &Path,
    stats: &mut PersistenceStats,
) -> Result<(), SegmentError> {
    let manifest = encode_manifest(epoch, lists);
    write_atomic(&dir.join(MANIFEST_NAME), &manifest)?;
    stats.bytes_written += manifest.len() as u64;

    // The new set is committed; delete segments it no longer references.
    // Best-effort: a leftover file is garbage, not corruption.
    let live = |name: &str| {
        lists.iter().enumerate().any(|(i, chain)| {
            chain
                .iter()
                .any(|e| segment_file_name(e.epoch, i as u32) == name)
        })
    };
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_segment = name.ends_with(".aseg") && !live(name);
            let orphan_temp = name.ends_with(".tmp");
            if stale_segment || orphan_temp {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    // Everything the tail log held is now in the committed segments.
    let wal = encode_wal_header(epoch);
    write_atomic(&dir.join(WAL_NAME), &wal)?;
    stats.bytes_written += wal.len() as u64;
    Ok(())
}

/// Persists the full segment set + manifest into `dir` and resets the
/// tail log (docs/SEGMENT_FORMAT.md §6): every shard becomes a
/// single-delta chain. Returns what was written and the committed
/// chains.
///
/// Write order is the atomicity argument: every new epoch-named segment
/// is written and renamed first, then the manifest rename commits the
/// new set, then stale segment files are deleted and the tail log is
/// reset. A crash before the manifest rename leaves the old store
/// intact (new segments are unreferenced garbage, cleaned next
/// persist); a crash after it leaves the new store committed and at
/// worst a stale tail log, which `open` detects by epoch and skips.
pub(crate) fn write_store_full(
    shards: &[Arc<StoreShard>],
    epoch: u64,
    dir: &Path,
) -> Result<(PersistenceStats, Vec<Vec<ManifestEntry>>), SegmentError> {
    fs::create_dir_all(dir).map_err(io_err("create store directory"))?;
    let count = u32::try_from(shards.len()).map_err(|_| corrupt("too many shards to persist"))?;
    let mut stats = PersistenceStats::default();
    let mut lists = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let bytes = encode_segment(shard, epoch, i as u32, count);
        write_atomic(&dir.join(segment_file_name(epoch, i as u32)), &bytes)?;
        stats.segments_written += 1;
        stats.bytes_written += bytes.len() as u64;
        lists.push(vec![ManifestEntry {
            epoch,
            len: bytes.len() as u64,
        }]);
    }
    commit_manifest(&lists, epoch, dir, &mut stats)?;
    Ok((stats, lists))
}

/// Persists an **incremental** delta on top of the committed chains in
/// `prior` (docs/SEGMENT_FORMAT.md §6): each `Some` shard appends one
/// epoch-named delta segment holding only that shard's rows dirtied
/// since the previous persist; `None` shards keep their chains as-is.
/// The manifest rename commits the grown chains exactly as in
/// [`write_store_full`] — same crash-safety argument, since prior
/// chains' files are never touched.
pub(crate) fn write_store_delta(
    deltas: &[Option<StoreShard>],
    prior: &[Vec<ManifestEntry>],
    epoch: u64,
    dir: &Path,
) -> Result<(PersistenceStats, Vec<Vec<ManifestEntry>>), SegmentError> {
    fs::create_dir_all(dir).map_err(io_err("create store directory"))?;
    let count = u32::try_from(deltas.len()).map_err(|_| corrupt("too many shards to persist"))?;
    let mut stats = PersistenceStats::default();
    let mut lists = prior.to_vec();
    for (i, delta) in deltas.iter().enumerate() {
        let Some(delta) = delta else { continue };
        let bytes = encode_segment(delta, epoch, i as u32, count);
        write_atomic(&dir.join(segment_file_name(epoch, i as u32)), &bytes)?;
        stats.segments_written += 1;
        stats.bytes_written += bytes.len() as u64;
        lists[i].push(ManifestEntry {
            epoch,
            len: bytes.len() as u64,
        });
    }
    commit_manifest(&lists, epoch, dir, &mut stats)?;
    Ok((stats, lists))
}

/// What `read_store` recovered from the committed segment set.
#[derive(Debug)]
pub(crate) struct LoadedStore {
    pub(crate) epoch: u64,
    pub(crate) shards: Vec<StoreShard>,
    /// The committed delta chains, handed to the store so a later
    /// persist back into the same directory can stay incremental.
    pub(crate) lists: Vec<Vec<ManifestEntry>>,
    pub(crate) bytes_read: u64,
    pub(crate) crc_checks: u64,
}

/// Reads the committed segment set named by the manifest, if one
/// exists. `Ok(None)` means a fresh directory (no manifest). Each
/// shard's delta chain is folded oldest to newest through
/// [`StoreShard::absorb`] — the newest delta naming a key holds its
/// full current value, so the fold reconstructs the exact shard a
/// monolithic persist would have written.
pub(crate) fn read_store(dir: &Path) -> Result<Option<LoadedStore>, SegmentError> {
    let manifest_bytes = match fs::read(dir.join(MANIFEST_NAME)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest")(e)),
    };
    let mut tally = DecodeTally::default();
    let mut bytes_read = manifest_bytes.len() as u64;
    let manifest = decode_manifest(&manifest_bytes, &mut tally)?;
    let count = u32::try_from(manifest.lists.len())
        .map_err(|_| corrupt("manifest shard count out of range"))?;
    let mut shards = Vec::with_capacity(manifest.lists.len());
    for (i, chain) in manifest.lists.iter().enumerate() {
        let mut shard = StoreShard::default();
        for entry in chain {
            let name = segment_file_name(entry.epoch, i as u32);
            let bytes = fs::read(dir.join(&name)).map_err(io_err("read segment file"))?;
            if bytes.len() as u64 != entry.len {
                return Err(corrupt("segment length disagrees with the manifest"));
            }
            bytes_read += bytes.len() as u64;
            let delta = decode_segment(
                &bytes,
                SegmentExpectation {
                    epoch: entry.epoch,
                    index: i as u32,
                    count,
                },
                &mut tally,
            )?;
            shard.absorb(delta);
        }
        shards.push(shard);
    }
    Ok(Some(LoadedStore {
        epoch: manifest.epoch,
        shards,
        lists: manifest.lists,
        bytes_read,
        crc_checks: tally.crc_checks,
    }))
}

// ---------------------------------------------------------------------
// Tail log (write-ahead record log)
// ---------------------------------------------------------------------

fn encode_wal_header(base_epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&SEGMENT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&base_epoch.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(out.len(), WAL_HEADER_LEN);
    out
}

/// Encodes one tail-log record body: the window, then each report's
/// wire encoding ([`Report::encode`]) length-prefixed.
fn encode_wal_record(window: WindowId, reports: &[Report], scratch: &mut Vec<u8>) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, u64::from(window.0));
    put_varint(&mut body, reports.len() as u64);
    let mut field_scratch = Vec::new();
    for report in reports {
        scratch.clear();
        report.encode_into(scratch, &mut field_scratch);
        put_varint(&mut body, scratch.len() as u64);
        body.extend_from_slice(scratch);
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// One recovered tail-log batch.
pub(crate) type WalBatch = (WindowId, Vec<Report>);

/// The outcome of scanning a tail log.
#[derive(Debug, Default)]
pub(crate) struct WalReplay {
    /// Whole, CRC-valid records in append order.
    pub(crate) batches: Vec<WalBatch>,
    /// Reports across all recovered batches.
    pub(crate) reports: u64,
    /// Trailing bytes discarded as a torn final write.
    pub(crate) bytes_discarded: u64,
    /// File length up to and including the last whole record — the
    /// append point after recovery.
    pub(crate) valid_len: u64,
    /// True when the log's base epoch predates `expected_base` (records
    /// already committed into segments by a completed persist).
    pub(crate) stale: bool,
}

/// Scans the tail log in `dir`. Missing log → empty replay. A log whose
/// base epoch differs from `expected_base` is stale (see
/// [`write_store`]) and reported as such with no batches.
///
/// Replay stops cleanly at the first incomplete or CRC-failing record:
/// that is the torn final write of a crashed appender, and every record
/// before it is intact by construction (appends are sequential).
pub(crate) fn read_wal(dir: &Path, expected_base: u64) -> Result<WalReplay, SegmentError> {
    let bytes = match fs::read(dir.join(WAL_NAME)) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(io_err("read tail log")(e)),
    };
    if bytes.len() < WAL_HEADER_LEN {
        return Err(corrupt("tail log shorter than its header"));
    }
    let mut header = Cursor::new(&bytes[..WAL_HEADER_LEN]);
    let magic = header.take(4, "truncated tail-log header")?;
    if magic != WAL_MAGIC {
        return Err(SegmentError::Magic {
            context: "tail log",
        });
    }
    let version = header.u32_le("truncated tail-log header")?;
    if version != SEGMENT_SCHEMA_VERSION {
        return Err(SegmentError::Version {
            found: version,
            supported: SEGMENT_SCHEMA_VERSION,
        });
    }
    let base_bytes = header.take(8, "truncated tail-log header")?;
    let base_epoch = u64::from_le_bytes(
        base_bytes
            .try_into()
            .expect("invariant: take(8) returned exactly 8 bytes"),
    );
    let stored = header.u32_le("truncated tail-log header")?;
    let computed = crc32(&bytes[..WAL_HEADER_LEN - 4]);
    if stored != computed {
        return Err(SegmentError::Crc {
            context: "tail-log header",
            stored,
            computed,
        });
    }
    let mut replay = WalReplay {
        valid_len: WAL_HEADER_LEN as u64,
        ..WalReplay::default()
    };
    if base_epoch != expected_base {
        replay.stale = true;
        replay.bytes_discarded = (bytes.len() - WAL_HEADER_LEN) as u64;
        return Ok(replay);
    }
    let mut pos = WAL_HEADER_LEN;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 4 {
            break; // torn length prefix
        }
        let len = u32::from_le_bytes(
            bytes[pos..pos + 4]
                .try_into()
                .expect("invariant: slice of 4 bytes converts to [u8; 4]"),
        ) as usize;
        if remaining < 4 + len + 4 {
            break; // torn record body or checksum
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        let stored = u32::from_le_bytes(
            bytes[pos + 4 + len..pos + 8 + len]
                .try_into()
                .expect("invariant: slice of 4 bytes converts to [u8; 4]"),
        );
        if crc32(body) != stored {
            break; // torn write caught by the record guard
        }
        // A CRC-valid record must parse; failure here is real corruption.
        let mut cur = Cursor::new(body);
        let window = cur.varint()?;
        let window =
            WindowId(u16::try_from(window).map_err(|_| corrupt("window id out of range"))?);
        let count = cur.count(1, "tail-log report count exceeds record size")?;
        let mut reports = Vec::with_capacity(count);
        for _ in 0..count {
            let report_len = cur.count(1, "tail-log report length exceeds record size")?;
            let report_bytes = cur.take(report_len, "truncated tail-log report")?;
            reports.push(Report::decode(report_bytes)?);
        }
        if !cur.done() {
            return Err(corrupt("trailing bytes in tail-log record"));
        }
        replay.reports += reports.len() as u64;
        replay.batches.push((window, reports));
        pos += 8 + len;
        replay.valid_len = pos as u64;
    }
    replay.bytes_discarded = (bytes.len() - replay.valid_len as usize) as u64;
    Ok(replay)
}

// ---------------------------------------------------------------------
// DurableStore: a ShardedStore bound to a directory
// ---------------------------------------------------------------------

/// A [`ShardedStore`] bound to an on-disk store directory.
///
/// Every ingested batch is appended to the tail log **before** it
/// reaches the in-memory shards, so a crash at any instant loses at
/// most the torn final record — [`ShardedStore::open`] recovers the
/// committed segments plus every whole tail record, reproducing the
/// exact pre-crash query surface. Call [`DurableStore::persist`] to
/// fold the tail into sealed segments (and empty the log).
///
/// [`ReportSink`] has no error channel, so an append failure poisons
/// the sink instead of panicking: later appends are skipped and the
/// deferred error surfaces at the next [`DurableStore::persist`] (or
/// [`DurableStore::take_error`]).
#[derive(Debug)]
pub struct DurableStore {
    store: ShardedStore,
    dir: PathBuf,
    wal: fs::File,
    scratch: Vec<u8>,
    deferred: Option<SegmentError>,
}

impl DurableStore {
    /// Starts a **fresh** durable store in `dir`, wiping any previous
    /// store state there (manifest, segments, tail log).
    pub fn create(dir: &Path, config: StoreConfig) -> Result<DurableStore, SegmentError> {
        fs::create_dir_all(dir).map_err(io_err("create store directory"))?;
        let _ = fs::remove_file(dir.join(MANIFEST_NAME));
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".aseg") || name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        write_atomic(&dir.join(WAL_NAME), &encode_wal_header(0))?;
        let wal = fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_NAME))
            .map_err(io_err("open tail log for append"))?;
        Ok(DurableStore {
            store: ShardedStore::with_config(config),
            dir: dir.to_path_buf(),
            wal,
            scratch: Vec::new(),
            deferred: None,
        })
    }

    /// Reopens the durable store in `dir`, recovering committed
    /// segments and replaying the tail log (see [`ShardedStore::open`]).
    /// Appending resumes after the last whole tail record; a torn final
    /// record or stale log is truncated away first.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> Result<(DurableStore, RecoveryStats), SegmentError> {
        let (store, recovery) = ShardedStore::open(dir, config)?;
        let wal_path = dir.join(WAL_NAME);
        let append_at = if recovery.wal_stale || recovery.wal_valid_len == 0 {
            // Stale (pre-persist) or missing log: start a fresh one whose
            // base is the recovered epoch. No replay happened in either
            // case, so `store.epoch()` is the committed manifest epoch.
            write_atomic(&wal_path, &encode_wal_header(store.epoch()))?;
            WAL_HEADER_LEN as u64
        } else {
            recovery.wal_valid_len
        };
        let mut wal = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&wal_path)
            .map_err(io_err("open tail log for append"))?;
        wal.set_len(append_at)
            .map_err(io_err("truncate torn tail-log record"))?;
        wal.seek(std::io::SeekFrom::End(0))
            .map_err(io_err("seek tail log to append point"))?;
        Ok((
            DurableStore {
                store,
                dir: dir.to_path_buf(),
                wal,
                scratch: Vec::new(),
                deferred: None,
            },
            recovery,
        ))
    }

    /// The wrapped in-memory store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Folds the tail log into a committed segment set and empties it,
    /// surfacing any deferred append error first.
    pub fn persist(&mut self) -> Result<PersistenceStats, SegmentError> {
        if let Some(error) = self.deferred.take() {
            return Err(error);
        }
        self.wal
            .sync_all()
            .map_err(io_err("sync tail log before persist"))?;
        let stats = self.store.persist(&self.dir)?;
        // write_store reset the log file; reopen the append handle on it.
        self.wal = fs::OpenOptions::new()
            .append(true)
            .open(self.dir.join(WAL_NAME))
            .map_err(io_err("reopen tail log after persist"))?;
        Ok(stats)
    }

    /// Takes the deferred tail-log append error, if any.
    pub fn take_error(&mut self) -> Option<SegmentError> {
        self.deferred.take()
    }

    /// Persists and unwraps the inner store.
    pub fn into_store(mut self) -> Result<(ShardedStore, PersistenceStats), SegmentError> {
        let stats = self.persist()?;
        Ok((self.store, stats))
    }
}

impl Sealable for DurableStore {
    fn reseal(&mut self) {
        let _ = self.store.seal();
    }
}

impl ReportSink for DurableStore {
    fn ingest_batch(&mut self, window: WindowId, reports: &[Report]) -> u64 {
        if reports.is_empty() {
            return 0;
        }
        if self.deferred.is_none() {
            let record = encode_wal_record(window, reports, &mut self.scratch);
            if let Err(e) = self.wal.write_all(&record) {
                self.deferred = Some(io_err("append tail-log record")(e));
            }
        }
        self.store.ingest_batch(window, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::mac::Oui;
    use airstat_telemetry::report::{ReportPayload, UsageRecord};
    use std::sync::atomic::{AtomicU64, Ordering};

    const W: WindowId = WindowId(1501);

    /// A unique scratch directory per test invocation, with no
    /// wall-clock involved (process id + a process-wide counter).
    fn temp_store_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("airstat-segment-{}-{tag}-{id}", std::process::id()))
    }

    /// Formats `bytes` as the spec's hex dump: an offset column plus
    /// 16 space-separated hex bytes per line.
    pub(super) fn hex_dump_lines(bytes: &[u8]) -> Vec<String> {
        bytes
            .chunks(16)
            .enumerate()
            .map(|(i, chunk)| {
                let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
                format!("{:04x}  {}", i * 16, hex.join(" "))
            })
            .collect()
    }

    fn usage_report(device: u64, seq: u64, bytes: u64) -> Report {
        Report {
            device,
            seq,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([2, 4, 6]), device),
                app: Application::Netflix,
                up_bytes: bytes,
                down_bytes: 0,
            }]),
        }
    }

    fn read_segment_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
            .expect("store dir readable")
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_str()?.to_string();
                name.ends_with(".aseg")
                    .then(|| (name.clone(), fs::read(e.path()).expect("segment readable")))
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // CRC-32/ISO-HDLC check values (the zlib parametrization).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"airstat"), crc32(b"airstat"));
    }

    #[test]
    fn persist_open_roundtrip_is_byte_stable() {
        let dir = temp_store_dir("roundtrip");
        let mut store = ShardedStore::new(3);
        let reports: Vec<Report> = (0..40).map(|d| usage_report(d, 0, d * 10 + 1)).collect();
        store.ingest_batch(W, &reports);
        store.ingest_batch(WindowId(1407), &reports[..7]);
        store.ingest_batch(W, &reports[..5]); // duplicates
        let stats = store.persist(&dir).expect("persist");
        assert_eq!(stats.segments_written, 3);
        assert!(stats.bytes_written > 0);

        let (reopened, recovery) = ShardedStore::open(&dir, StoreConfig::default()).expect("open");
        assert_eq!(recovery.epoch, store.epoch());
        assert_eq!(recovery.segments_loaded, 3);
        assert_eq!(recovery.wal_records_replayed, 0);
        assert!(!recovery.wal_stale);
        assert_eq!(reopened.shard_count(), 3, "manifest shard count wins");
        assert_eq!(reopened.epoch(), store.epoch());
        assert_eq!(reopened.reports_ingested(), store.reports_ingested());
        assert_eq!(reopened.duplicates_dropped(), store.duplicates_dropped());
        assert!(reopened.persistence().any());

        // Re-persisting the reopened store reproduces identical files.
        let dir2 = temp_store_dir("roundtrip-again");
        let mut reopened = reopened;
        reopened.persist(&dir2).expect("re-persist");
        assert_eq!(read_segment_files(&dir), read_segment_files(&dir2));

        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn dedup_ledger_survives_reload() {
        let dir = temp_store_dir("dedup");
        let mut store = ShardedStore::new(2);
        store.ingest_batch(W, &[usage_report(1, 0, 10), usage_report(1, 1, 11)]);
        store.persist(&dir).expect("persist");
        let (mut reopened, _) = ShardedStore::open(&dir, StoreConfig::default()).expect("open");
        // Retransmissions of persisted sequences must still be dropped.
        assert_eq!(
            reopened.ingest_batch(W, &[usage_report(1, 0, 10), usage_report(1, 2, 12)]),
            1,
            "seq 0 is a duplicate, seq 2 is new"
        );
        assert_eq!(reopened.duplicates_dropped(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_of_missing_directory_yields_fresh_store() {
        let dir = temp_store_dir("missing");
        let (store, recovery) = ShardedStore::open(
            &dir,
            StoreConfig {
                shards: 5,
                threads: 1,
            },
        )
        .expect("open fresh");
        assert_eq!(store.shard_count(), 5, "config shapes a fresh store");
        assert_eq!(store.epoch(), 0);
        assert_eq!(recovery, RecoveryStats::default());
    }

    #[test]
    fn durable_store_recovers_unpersisted_tail() {
        let dir = temp_store_dir("tail");
        let mut durable = DurableStore::create(&dir, StoreConfig::default()).expect("create");
        durable.ingest_batch(W, &[usage_report(1, 0, 10), usage_report(2, 0, 20)]);
        durable.persist().expect("persist");
        // Two more batches reach only the tail log — no persist. Dropping
        // the store here is the crash.
        durable.ingest_batch(W, &[usage_report(3, 0, 30)]);
        durable.ingest_batch(WindowId(1407), &[usage_report(1, 0, 40)]);
        let expected_epoch = durable.store().epoch();
        let expected_ingested = durable.store().reports_ingested();
        assert!(durable.take_error().is_none(), "no deferred append error");
        drop(durable);

        let (recovered, recovery) =
            DurableStore::open(&dir, StoreConfig::default()).expect("recover");
        assert_eq!(recovery.wal_records_replayed, 2);
        assert_eq!(recovery.wal_reports_recovered, 2);
        assert_eq!(recovery.wal_bytes_discarded, 0);
        assert!(!recovery.wal_stale);
        assert_eq!(recovered.store().epoch(), expected_epoch);
        assert_eq!(recovered.store().reports_ingested(), expected_ingested);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_log_recovers_to_last_whole_record() {
        let dir = temp_store_dir("torn");
        let mut durable = DurableStore::create(&dir, StoreConfig::default()).expect("create");
        durable.ingest_batch(W, &[usage_report(1, 0, 10)]);
        durable.ingest_batch(W, &[usage_report(2, 0, 20)]);
        drop(durable);
        // Tear the final record mid-write.
        let wal_path = dir.join(WAL_NAME);
        let bytes = fs::read(&wal_path).expect("tail log readable");
        fs::write(&wal_path, &bytes[..bytes.len() - 3]).expect("truncate");

        let (recovered, recovery) =
            DurableStore::open(&dir, StoreConfig::default()).expect("recover");
        assert_eq!(recovery.wal_records_replayed, 1, "torn record dropped");
        assert!(recovery.wal_bytes_discarded > 0);
        assert_eq!(
            recovery.wal_valid_len + recovery.wal_bytes_discarded,
            (bytes.len() - 3) as u64,
            "discarded = everything past the last whole record"
        );
        assert_eq!(recovered.store().reports_ingested(), 1);
        // Appends resume cleanly after the recovered prefix; the once-torn
        // batch can be re-ingested and survives the next recovery whole.
        let mut recovered = recovered;
        recovered.ingest_batch(W, &[usage_report(2, 0, 20)]);
        drop(recovered);
        let (again, recovery) = DurableStore::open(&dir, StoreConfig::default()).expect("reopen");
        assert_eq!(recovery.wal_records_replayed, 2);
        assert_eq!(again.store().reports_ingested(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tail_log_is_skipped_not_replayed() {
        let dir = temp_store_dir("stale");
        let mut store = ShardedStore::new(1);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        store.persist(&dir).expect("persist");
        // Forge a tail log from before that persist: its records are
        // already folded into the committed segments.
        let mut forged = encode_wal_header(store.epoch() - 1);
        let mut scratch = Vec::new();
        forged.extend_from_slice(&encode_wal_record(
            W,
            &[usage_report(1, 0, 10)],
            &mut scratch,
        ));
        fs::write(dir.join(WAL_NAME), &forged).expect("forge tail log");

        let (reopened, recovery) = ShardedStore::open(&dir, StoreConfig::default()).expect("open");
        assert!(recovery.wal_stale);
        assert_eq!(recovery.wal_records_replayed, 0);
        assert!(recovery.wal_bytes_discarded > 0);
        assert_eq!(reopened.reports_ingested(), 1, "no double replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let dir = temp_store_dir("flip");
        let mut store = ShardedStore::new(1);
        store.ingest_batch(W, &[usage_report(7, 3, 300)]);
        store.persist(&dir).expect("persist");
        let files = read_segment_files(&dir);
        let bytes = &files[0].1;
        let expect = SegmentExpectation {
            epoch: 1,
            index: 0,
            count: 1,
        };
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xFF;
            let mut tally = DecodeTally::default();
            assert!(
                decode_segment(&corrupted, expect, &mut tally).is_err(),
                "flipping byte {i} went undetected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_column_block_byte_surfaces_as_crc_error() {
        let dir = temp_store_dir("crc");
        let mut store = ShardedStore::new(1);
        store.ingest_batch(W, &[usage_report(7, 3, 300)]);
        store.persist(&dir).expect("persist");
        let files = read_segment_files(&dir);
        let mut bytes = files[0].1.clone();
        // Flip a byte inside the first block body (just past its
        // tag + length prefix): the block CRC must catch it.
        bytes[SEGMENT_HEADER_LEN + 2] ^= 0xFF;
        let mut tally = DecodeTally::default();
        let err = decode_segment(
            &bytes,
            SegmentExpectation {
                epoch: 1,
                index: 0,
                count: 1,
            },
            &mut tally,
        )
        .expect_err("corruption must not decode");
        assert!(
            matches!(err, SegmentError::Crc { .. }),
            "want Crc, got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_version_is_rejected_with_a_clear_message() {
        let dir = temp_store_dir("version");
        let mut store = ShardedStore::new(1);
        store.ingest_batch(W, &[usage_report(7, 3, 300)]);
        store.persist(&dir).expect("persist");
        let files = read_segment_files(&dir);
        let mut bytes = files[0].1.clone();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let mut tally = DecodeTally::default();
        let err = decode_segment(
            &bytes,
            SegmentExpectation {
                epoch: 1,
                index: 0,
                count: 1,
            },
            &mut tally,
        )
        .expect_err("future schema must not decode");
        assert!(matches!(
            err,
            SegmentError::Version {
                found: 99,
                supported: SEGMENT_SCHEMA_VERSION
            }
        ));
        let message = err.to_string();
        assert!(
            message.contains("version 99") && message.contains("docs/SEGMENT_FORMAT.md"),
            "message should name the version and the spec: {message}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = temp_store_dir("manifest");
        let mut store = ShardedStore::new(2);
        store.ingest_batch(W, &[usage_report(1, 0, 10)]);
        store.persist(&dir).expect("persist");
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).expect("manifest readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("rewrite manifest");
        let err = ShardedStore::open(&dir, StoreConfig::default())
            .expect_err("corrupt manifest must not open");
        assert!(matches!(
            err,
            SegmentError::Crc {
                context: "manifest",
                ..
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_version_matches_the_spec() {
        let spec = include_str!("../../../docs/SEGMENT_FORMAT.md");
        let pin = format!("SEGMENT_SCHEMA_VERSION: {SEGMENT_SCHEMA_VERSION}");
        assert!(
            spec.contains(&pin),
            "docs/SEGMENT_FORMAT.md must state the current schema version as `{pin}`; \
             bumping the constant requires updating the spec"
        );
    }
}

#[cfg(test)]
mod pinned_example {
    use super::tests::hex_dump_lines;
    use super::*;

    /// The spec's worked example (docs/SEGMENT_FORMAT.md §8): a
    /// one-shard store holding a single usage report — device `7`,
    /// sequence `3`, window `1501`, one Netflix record of 300 bytes up
    /// from MAC `00:04:06:00:00:07` — persisted at epoch 1.
    fn example_segment() -> Vec<u8> {
        use airstat_classify::mac::Oui;
        use airstat_telemetry::report::{ReportPayload, UsageRecord};
        let mut shard = StoreShard::default();
        shard.ingest(
            WindowId(1501),
            &Report {
                device: 7,
                seq: 3,
                timestamp_s: 0,
                payload: ReportPayload::Usage(vec![UsageRecord {
                    mac: MacAddress::from_id(Oui([2, 4, 6]), 7),
                    app: Application::Netflix,
                    up_bytes: 300,
                    down_bytes: 0,
                }]),
            },
        );
        encode_segment(&shard, 1, 0, 1)
    }

    /// The exact hex dump printed in docs/SEGMENT_FORMAT.md §8 for the
    /// example segment. Any byte-layout change shows up here first.
    const EXPECTED_SEGMENT: [&str; 6] = [
        "0000  41 53 45 47 02 00 00 00 01 00 00 00 00 00 00 00",
        "0010  00 00 00 00 01 00 00 00 01 00 00 00 dd 05 dd 05",
        "0020  01 00 00 00 00 00 00 00 f3 a0 20 53 01 02 dd 0b",
        "0030  cd 0e 38 39 02 0b 01 00 04 06 00 00 07 06 ac 02",
        "0040  00 c6 95 a8 31 09 07 01 dd 0b 07 00 01 03 fa c6",
        "0050  ad 22 0a 02 01 00 57 da 66 54 00 00 ff 12 d9 41",
    ];

    /// The manifest dump for the same example store: one shard whose
    /// delta chain holds a single 96-byte segment persisted at epoch 1.
    const EXPECTED_MANIFEST: [&str; 3] = [
        "0000  41 4d 41 4e 02 00 00 00 01 00 00 00 00 00 00 00",
        "0010  01 00 00 00 01 00 00 00 01 00 00 00 00 00 00 00",
        "0020  60 00 00 00 00 00 00 00 07 3c b4 cc",
    ];

    /// Pins the encoder to the spec's worked example three ways: the
    /// segment bytes, the manifest bytes, and the presence of every
    /// dump line verbatim in docs/SEGMENT_FORMAT.md — so the code, the
    /// constants above, and the prose can never drift apart silently.
    #[test]
    fn segment_format_doc_example_is_pinned() {
        let segment = example_segment();
        assert_eq!(
            hex_dump_lines(&segment),
            EXPECTED_SEGMENT,
            "example segment bytes diverged from docs/SEGMENT_FORMAT.md §8; \
             a byte-layout change requires a SEGMENT_SCHEMA_VERSION bump and a spec update"
        );

        let manifest = encode_manifest(
            1,
            &[vec![ManifestEntry {
                epoch: 1,
                len: segment.len() as u64,
            }]],
        );
        assert_eq!(
            hex_dump_lines(&manifest),
            EXPECTED_MANIFEST,
            "example manifest bytes diverged from docs/SEGMENT_FORMAT.md §8"
        );

        let spec = include_str!("../../../docs/SEGMENT_FORMAT.md");
        for line in EXPECTED_SEGMENT.iter().chain(EXPECTED_MANIFEST.iter()) {
            assert!(
                spec.contains(line),
                "docs/SEGMENT_FORMAT.md is missing the worked-example dump line `{line}`"
            );
        }

        // The example decodes back to the shard it came from.
        let mut tally = DecodeTally::default();
        let decoded = decode_segment(
            &segment,
            SegmentExpectation {
                epoch: 1,
                index: 0,
                count: 1,
            },
            &mut tally,
        )
        .expect("the spec's worked example must decode");
        assert_eq!(encode_segment(&decoded, 1, 0, 1), segment);
    }
}
