//! The typed query layer: plans, the parallel engine, and the cache.
//!
//! A [`QueryPlan`] names one aggregate from the legacy backend's query
//! surface; [`QueryEngine::execute`] answers it against a frozen
//! [`Snapshot`] by fanning the plan out over the shards with
//! [`crate::exec::run_ordered`] and merging the per-shard partials in a
//! **globally canonical order** (every multi-shard merge flattens
//! through a `BTreeMap` keyed by MAC, device or link key). Canonical
//! merge order is what makes the engine shard-count invariant even for
//! floating-point consumers — a correlation over `scan_observations` sums
//! the same values in the same order whether the store has 1 shard or
//! 50 — and it makes the store *more* deterministic than the legacy
//! `Backend`, whose `HashMap`-backed queries iterate in per-process
//! random order.
//!
//! The engine answers every plan through one of two physical layouts,
//! selected by [`QueryBackend`]:
//!
//! * [`QueryBackend::Columnar`] (default) — **scan kernels** over the
//!   snapshot's packed [`crate::columnar::ColumnarShard`] projection:
//!   filter → scan → partial-aggregate per shard over contiguous
//!   struct-of-arrays columns, then a k-way merge of the pre-sorted
//!   per-shard runs in the same canonical key order;
//! * [`QueryBackend::Legacy`] — the original map-backed path, kept
//!   alive so the differential tests can prove the two layouts produce
//!   byte-identical results for every shard and thread count.
//!
//! Results are memoized in an epoch-keyed LRU [`ResultCache`]; the
//! hit/miss/eviction counters surface in [`StoreStats`], which the CLI
//! prints next to the engine's throughput summary.
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use airstat_classify::apps::Application;
use airstat_classify::device::OsFamily;
use airstat_classify::mac::MacAddress;
use airstat_rf::band::{Band, Channel};
use airstat_telemetry::backend::{
    Backend, ClientIdentity, LinkKey, LinkObservation, ScanObservation, UsageTotals, WindowId,
};
use airstat_telemetry::crash::CrashAggregator;

use crate::columnar::{
    add_usage_by_app_stack, kway_groups, merge_runs, merge_segments, select_indices,
    usage_totals_by_mac_stack, ColumnarWindow, WindowZoneMap, APP_LANES, FAM_AIRTIME, FAM_CENSUS,
    FAM_CLIENTS, FAM_CRASHES, FAM_LINKS, FAM_SCANS, FAM_USAGE, OS_LANES,
};
use crate::exec::run_ordered;
use crate::segment::PersistenceStats;
use crate::shard::StoreShard;
use crate::store::{SealStats, Snapshot};

/// Which physical execution strategy the engine's kernels use.
///
/// All backends are proven byte-identical by the differential test
/// `tests/columnar_equivalence.rs`; they differ only in cold-query cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QueryBackend {
    /// Cost-based choice per plan (default): estimates each candidate's
    /// cost from shard row counts and zone-map selectivity, then runs
    /// the cheapest of the vectorized, columnar, or legacy paths.
    #[default]
    Planner,
    /// Two-pass vectorized kernels (selection vector, then gather +
    /// partial-aggregate) over the columnar projection, with zone-map
    /// shard pruning always on.
    Vectorized,
    /// Single-pass fused scan kernels over the packed struct-of-arrays
    /// projection built at `seal()`, scanning every shard.
    Columnar,
    /// The original map-backed path: clone each shard's `BTreeMap`
    /// tables and fold them into a merge map.
    Legacy,
}

impl QueryBackend {
    /// Parses a CLI-style backend name
    /// (`"planner"` / `"vectorized"` / `"columnar"` / `"legacy"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "planner" => Some(QueryBackend::Planner),
            "vectorized" => Some(QueryBackend::Vectorized),
            "columnar" => Some(QueryBackend::Columnar),
            "legacy" => Some(QueryBackend::Legacy),
            _ => None,
        }
    }

    /// The CLI-style name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            QueryBackend::Planner => "planner",
            QueryBackend::Vectorized => "vectorized",
            QueryBackend::Columnar => "columnar",
            QueryBackend::Legacy => "legacy",
        }
    }
}

/// One query against the store, covering the full legacy surface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryPlan {
    /// Usage totals and distinct clients per application (§3).
    UsageByApp(WindowId),
    /// Usage totals and distinct clients per OS family (§3).
    UsageByOs(WindowId),
    /// Distinct clients seen in a window.
    ClientCount(WindowId),
    /// Every client identity, in MAC order.
    Clients(WindowId),
    /// Distinct clients that used an application.
    AppClientCount(WindowId, Application),
    /// All link keys on a band, in key order (§4.2).
    LinkKeys(WindowId, Band),
    /// The observation series for one link.
    LinkSeries(WindowId, LinkKey),
    /// Most recent delivery ratio per link on a band, in key order.
    LatestDeliveryRatios(WindowId, Band),
    /// Mean delivery ratio per link on a band, in key order.
    MeanDeliveryRatios(WindowId, Band),
    /// Serving-radio utilizations on a band, in `(device, band)` order
    /// (§4.3).
    ServingUtilizations(WindowId, Band),
    /// Devices that filed a neighbour census (§4.1).
    CensusDeviceCount(WindowId),
    /// `(total networks, mean per AP, hotspots)` on a band (Table 7).
    NearbySummary(WindowId, Band),
    /// Nearby networks summed per channel on a band (Figure 2).
    NearbyPerChannel(WindowId, Band),
    /// The crash-triage aggregate, reports in device order (§6.1).
    Crashes(WindowId),
    /// All channel-scan observations on a band, in device order (§5).
    ScanObservations(WindowId, Band),
}

/// Cost-model constants, in nanoseconds, calibrated against the bench
/// harness rows in `BENCH_pipeline.json` on the reference host.
///
/// `*_SHARD_SETUP_NS` is the fixed per-shard dispatch cost (closure
/// dispatch plus the buffers the path allocates per shard: selection
/// vectors and partial-aggregate lanes for the vectorized kernels, a
/// partial `Vec` for the fused columnar kernels, table clones and a
/// merge map for the legacy fold). `*_NS_PER_ROW` is the approximate
/// marginal scan+merge cost per row. The model only needs to rank the
/// three paths correctly: the vectorized path wins once enough rows
/// survive pruning to amortize its extra per-shard buffers, the fused
/// columnar path wins on tiny inputs where those buffers dominate, and
/// the legacy path is dominated whenever any rows exist (its clones
/// cost strictly more per row) — it is costed, not special-cased.
const VEC_SHARD_SETUP_NS: f64 = 2500.0;
/// Marginal vectorized cost per admitted row (two linear passes).
const VEC_NS_PER_ROW: f64 = 30.0;
/// Fixed per-shard cost of the fused columnar kernels.
const COL_SHARD_SETUP_NS: f64 = 1500.0;
/// Marginal fused-kernel cost per row (tuple materialize + peek merge).
const COL_NS_PER_ROW: f64 = 95.0;
/// Fixed per-shard cost of the legacy map path (clone + merge map).
const LEG_SHARD_SETUP_NS: f64 = 2500.0;
/// Marginal legacy cost per row (tree walks on pointer-chased nodes).
const LEG_NS_PER_ROW: f64 = 400.0;

/// What the zone maps predict about one plan's execution.
#[derive(Debug, Default, Clone, Copy)]
struct PlanZoneStats {
    /// Shards in the snapshot (admitted or not).
    total_shards: usize,
    /// Shards whose zone map admits the plan's filter.
    admitted_shards: usize,
    /// Rows the plan's kernels would scan across admitted shards.
    admitted_rows: u64,
    /// Rows across all shards holding the window (the unpruned cost).
    total_rows: u64,
}

/// Zone-map admission and scanned-row estimate for `plan` against one
/// shard's window summary — the planner's per-shard selectivity probe.
fn plan_zone_estimate(plan: &QueryPlan, z: &WindowZoneMap) -> (bool, u64) {
    let link_keys = (z.link_keys_per_band[0] + z.link_keys_per_band[1]) as u64;
    match *plan {
        QueryPlan::UsageByApp(_) | QueryPlan::UsageByOs(_) => {
            (z.usage_rows > 0, z.usage_rows as u64)
        }
        QueryPlan::ClientCount(_) | QueryPlan::Clients(_) => {
            (z.client_rows > 0, z.client_rows as u64)
        }
        QueryPlan::AppClientCount(_, app) => (
            z.apps_present & (1u64 << (app as usize)) != 0,
            z.usage_rows as u64,
        ),
        QueryPlan::LinkKeys(_, band)
        | QueryPlan::LatestDeliveryRatios(_, band)
        | QueryPlan::MeanDeliveryRatios(_, band) => {
            (z.link_keys_per_band[band as usize] > 0, link_keys)
        }
        QueryPlan::LinkSeries(_, key) => (
            z.link_key_range
                .is_some_and(|(lo, hi)| lo <= key && key <= hi),
            link_keys,
        ),
        QueryPlan::ServingUtilizations(_, band) => (
            z.airtime_rows_per_band[band as usize] > 0,
            (z.airtime_rows_per_band[0] + z.airtime_rows_per_band[1]) as u64,
        ),
        // Zone-only: answered without scanning any column.
        QueryPlan::CensusDeviceCount(_) => (false, 0),
        QueryPlan::NearbySummary(_, band) | QueryPlan::NearbyPerChannel(_, band) => (
            z.census_rows_per_band[band as usize] > 0,
            (z.census_rows_per_band[0] + z.census_rows_per_band[1]) as u64,
        ),
        QueryPlan::Crashes(_) => (z.crash_devices > 0, z.crash_devices as u64),
        QueryPlan::ScanObservations(_, band) => (
            z.scan_obs_per_band[band as usize] > 0,
            (z.scan_obs_per_band[0] + z.scan_obs_per_band[1]) as u64,
        ),
    }
}

impl QueryPlan {
    /// The window this plan reads.
    pub fn window(&self) -> WindowId {
        match *self {
            QueryPlan::UsageByApp(w)
            | QueryPlan::UsageByOs(w)
            | QueryPlan::ClientCount(w)
            | QueryPlan::Clients(w)
            | QueryPlan::AppClientCount(w, _)
            | QueryPlan::LinkKeys(w, _)
            | QueryPlan::LinkSeries(w, _)
            | QueryPlan::LatestDeliveryRatios(w, _)
            | QueryPlan::MeanDeliveryRatios(w, _)
            | QueryPlan::ServingUtilizations(w, _)
            | QueryPlan::CensusDeviceCount(w)
            | QueryPlan::NearbySummary(w, _)
            | QueryPlan::NearbyPerChannel(w, _)
            | QueryPlan::Crashes(w)
            | QueryPlan::ScanObservations(w, _) => w,
        }
    }

    /// Short plan name, used by the planner's `--explain` output.
    pub fn name(&self) -> &'static str {
        match self {
            QueryPlan::UsageByApp(_) => "usage_by_app",
            QueryPlan::UsageByOs(_) => "usage_by_os",
            QueryPlan::ClientCount(_) => "client_count",
            QueryPlan::Clients(_) => "clients",
            QueryPlan::AppClientCount(..) => "app_client_count",
            QueryPlan::LinkKeys(..) => "link_keys",
            QueryPlan::LinkSeries(..) => "link_series",
            QueryPlan::LatestDeliveryRatios(..) => "latest_delivery_ratios",
            QueryPlan::MeanDeliveryRatios(..) => "mean_delivery_ratios",
            QueryPlan::ServingUtilizations(..) => "serving_utilizations",
            QueryPlan::CensusDeviceCount(_) => "census_device_count",
            QueryPlan::NearbySummary(..) => "nearby_summary",
            QueryPlan::NearbyPerChannel(..) => "nearby_per_channel",
            QueryPlan::Crashes(_) => "crashes",
            QueryPlan::ScanObservations(..) => "scan_observations",
        }
    }
}

/// The result of executing a [`QueryPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// From [`QueryPlan::UsageByApp`].
    AppUsage(Vec<(Application, UsageTotals, u64)>),
    /// From [`QueryPlan::UsageByOs`].
    OsUsage(Vec<(OsFamily, UsageTotals, u64)>),
    /// From the counting plans.
    Count(u64),
    /// From [`QueryPlan::Clients`].
    Clients(Vec<(MacAddress, ClientIdentity)>),
    /// From [`QueryPlan::LinkKeys`].
    LinkKeys(Vec<LinkKey>),
    /// From [`QueryPlan::LinkSeries`].
    Series(Vec<LinkObservation>),
    /// From the delivery-ratio and utilization plans.
    Ratios(Vec<f64>),
    /// From [`QueryPlan::NearbySummary`].
    NearbySummary {
        /// Total nearby networks on the band.
        total: u64,
        /// Mean nearby networks per reporting AP.
        mean_per_ap: f64,
        /// Total nearby hotspots on the band.
        hotspots: u64,
    },
    /// From [`QueryPlan::NearbyPerChannel`].
    PerChannel(Vec<(u16, u64)>),
    /// From [`QueryPlan::ScanObservations`].
    Scans(Vec<ScanObservation>),
    /// From [`QueryPlan::Crashes`].
    Crashes(Option<CrashAggregator>),
}

/// Default result-cache capacity (distinct `(epoch, plan)` entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// An epoch-keyed LRU cache of query results.
///
/// Keys are `(epoch, plan)`: a result is valid exactly for the snapshot
/// epoch it was computed against, so ingesting new data (which bumps the
/// epoch) naturally invalidates without any explicit flush. Recency is
/// tracked with a monotone stamp; eviction removes the least recently
/// used entry.
#[derive(Debug, Default)]
pub struct ResultCache {
    // airstat::allow(no-hashmap-iter): exact-key cache; eviction scan is
    // tie-free (stamps are unique), so iteration order cannot leak out
    entries: HashMap<(u64, QueryPlan), (u64, QueryValue)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            ..ResultCache::default()
        }
    }

    /// Looks up a result, counting the hit or miss.
    pub fn get(&mut self, epoch: u64, plan: &QueryPlan) -> Option<QueryValue> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&(epoch, plan.clone())) {
            Some((stamp, value)) => {
                *stamp = clock;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting the least recently used entry if full.
    pub fn insert(&mut self, epoch: u64, plan: QueryPlan, value: QueryValue) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(epoch, plan.clone()))
        {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(key, _)| key.clone())
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.clock += 1;
        self.entries.insert((epoch, plan), (self.clock, value));
    }

    /// Cached entries right now.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

/// Cache and store shape counters, printed by the CLI next to
/// `throughput_summary()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Shards in the queried snapshot.
    pub shards: usize,
    /// Epoch of the queried snapshot.
    pub epoch: u64,
    /// Results currently cached.
    pub cached_results: u64,
    /// Result-cache capacity.
    pub cache_capacity: u64,
    /// Cache hits served.
    pub hits: u64,
    /// Cache misses (results computed).
    pub misses: u64,
    /// LRU evictions performed.
    pub evictions: u64,
    /// Shard scans dispatched by zone-gated execution.
    pub shards_scanned: u64,
    /// Shard scans skipped because the zone map proved them empty.
    pub shards_pruned: u64,
    /// Plans the planner routed to the vectorized kernels.
    pub plans_vectorized: u64,
    /// Plans the planner routed to the fused columnar kernels.
    pub plans_columnar: u64,
    /// Plans the planner routed to the legacy map path.
    pub plans_legacy: u64,
    /// On-disk persistence counters carried over from the snapshot
    /// (segments written/loaded, bytes, CRC checks, tail-log replays).
    pub persistence: PersistenceStats,
    /// Incremental-seal counters carried over from the snapshot
    /// (seals, live delta segments, compactions, rows resealed).
    pub seal: SealStats,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.hits + self.misses;
        let rate = if total > 0 {
            self.hits as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        writeln!(
            f,
            "store stats ({} shard{}, epoch {}):",
            self.shards,
            if self.shards == 1 { "" } else { "s" },
            self.epoch,
        )?;
        writeln!(
            f,
            "  query cache    {:>7} hits  {:>6} misses  {:>4} evictions  ({rate:.1}% hit rate, {}/{} cached)",
            self.hits, self.misses, self.evictions, self.cached_results, self.cache_capacity,
        )?;
        writeln!(
            f,
            "  zone pruning   {:>7} shards scanned  {:>6} pruned",
            self.shards_scanned, self.shards_pruned,
        )?;
        write!(
            f,
            "  plan choices   {:>7} vectorized  {:>6} columnar  {:>4} legacy",
            self.plans_vectorized, self.plans_columnar, self.plans_legacy,
        )?;
        // Seal counters only appear once a seal happened, so callers
        // printing stats about an unsealed engine see the old block.
        if self.seal.seals_total > 0 {
            let s = self.seal;
            write!(
                f,
                "\n  incremental seal {:>5} seals  {:>4} segments live  {:>4} compacted  {} rows resealed",
                s.seals_total, s.segments_live, s.segments_compacted, s.rows_resealed,
            )?;
        }
        // Persistence is opt-in (`--store-dir`); keep the stderr block
        // unchanged for purely in-memory runs.
        if self.persistence.any() {
            let p = self.persistence;
            write!(
                f,
                "\n  persistence    {:>7} seg written  {:>6} seg loaded  {} B out  {} B in  {} CRC checks  {} tail records replayed",
                p.segments_written,
                p.segments_loaded,
                p.bytes_written,
                p.bytes_read,
                p.crc_checks,
                p.wal_records_replayed,
            )?;
        }
        Ok(())
    }
}

/// One shard's segment stack resolved to a single logical view of a
/// window: a zero-cost borrow when exactly one segment holds the
/// window (the common post-compaction shape — this path reduces to the
/// pre-LSM engine byte for byte), or an owned newest-wins merge
/// ([`merge_segments`]) restricted to the table families the plan
/// reads.
enum ResolvedView<'a> {
    /// The window lives in one segment; borrow it directly.
    Borrowed(&'a ColumnarWindow),
    /// The window spans several delta segments; an owned merge.
    Merged(Box<ColumnarWindow>),
}

impl ResolvedView<'_> {
    /// The resolved window, whichever variant holds it.
    fn get(&self) -> &ColumnarWindow {
        match self {
            ResolvedView::Borrowed(w) => w,
            ResolvedView::Merged(w) => w,
        }
    }
}

/// Resolves one shard's per-segment views of a window (oldest to
/// newest) into a single view, or `None` when no segment holds it.
fn resolve_views<'a>(views: &[&'a ColumnarWindow], families: u8) -> Option<ResolvedView<'a>> {
    match views {
        [] => None,
        [only] => Some(ResolvedView::Borrowed(only)),
        many => Some(ResolvedView::Merged(Box::new(merge_segments(
            many, families,
        )))),
    }
}

/// Lock-free execution counters: zone-pruning outcomes and the
/// planner's per-plan backend choices. Relaxed atomics are enough —
/// the counters are observability only and never feed back into
/// results.
#[derive(Debug, Default)]
struct EngineCounters {
    shards_scanned: AtomicU64,
    shards_pruned: AtomicU64,
    plans_vectorized: AtomicU64,
    plans_columnar: AtomicU64,
    plans_legacy: AtomicU64,
}

/// The parallel, cached query engine over one snapshot.
#[derive(Debug)]
pub struct QueryEngine {
    snapshot: Snapshot,
    threads: usize,
    backend: QueryBackend,
    cache: Mutex<ResultCache>,
    counters: EngineCounters,
    explain: bool,
}

impl QueryEngine {
    /// Creates an engine over `snapshot` using `threads` workers per
    /// query (1 = serial; results are identical for every value) and
    /// the default [`QueryBackend::Planner`] strategy.
    pub fn new(snapshot: Snapshot, threads: usize) -> Self {
        QueryEngine::with_backend(snapshot, threads, QueryBackend::default())
    }

    /// Creates an engine that answers through the given execution
    /// strategy. Results are byte-identical across backends; only the
    /// cold-query cost differs.
    pub fn with_backend(snapshot: Snapshot, threads: usize, backend: QueryBackend) -> Self {
        QueryEngine {
            snapshot,
            threads: threads.max(1),
            backend,
            cache: Mutex::new(ResultCache::new(DEFAULT_CACHE_CAPACITY)),
            counters: EngineCounters::default(),
            explain: false,
        }
    }

    /// Enables (or disables) one-line plan-choice explanations on
    /// stderr: each planned plan prints its chosen path, the pruning
    /// outcome, and the row estimate the cost model used.
    pub fn set_explain(&mut self, explain: bool) {
        self.explain = explain;
    }

    /// The snapshot this engine answers from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The physical layout this engine reads.
    pub fn backend(&self) -> QueryBackend {
        self.backend
    }

    /// Current cache and shape counters.
    pub fn stats(&self) -> StoreStats {
        let cache = self
            .cache
            .lock()
            .expect("invariant: cache lock is never poisoned (no code panics while holding it)");
        let (hits, misses, evictions) = cache.counters();
        StoreStats {
            shards: self.snapshot.shards().len(),
            epoch: self.snapshot.epoch(),
            cached_results: cache.len() as u64,
            cache_capacity: cache.capacity as u64,
            hits,
            misses,
            evictions,
            shards_scanned: self.counters.shards_scanned.load(Ordering::Relaxed),
            shards_pruned: self.counters.shards_pruned.load(Ordering::Relaxed),
            plans_vectorized: self.counters.plans_vectorized.load(Ordering::Relaxed),
            plans_columnar: self.counters.plans_columnar.load(Ordering::Relaxed),
            plans_legacy: self.counters.plans_legacy.load(Ordering::Relaxed),
            persistence: self.snapshot.persistence(),
            seal: self.snapshot.seal_stats(),
        }
    }

    /// Executes a plan, consulting the cache first.
    ///
    /// The cache lock is never held while computing, so plans that
    /// delegate to other plans (`UsageByOs` and the client counts reuse
    /// the cached `Clients` result) re-enter `execute` freely.
    pub fn execute(&self, plan: &QueryPlan) -> QueryValue {
        let epoch = self.snapshot.epoch();
        if let Some(value) = self
            .cache
            .lock()
            .expect("invariant: cache lock is never poisoned (no code panics while holding it)")
            .get(epoch, plan)
        {
            return value;
        }
        let value = self.compute(plan);
        self.cache
            .lock()
            .expect("invariant: cache lock is never poisoned (no code panics while holding it)")
            .insert(epoch, plan.clone(), value.clone());
        value
    }

    /// Runs `f` over every shard in parallel and returns the partials in
    /// shard order. The partials are then merged canonically, so the
    /// thread count never affects the result.
    fn shard_map<T: Send>(&self, f: impl Fn(&StoreShard) -> T + Sync) -> Vec<T> {
        let shards = self.snapshot.shards();
        let mut partials = Vec::with_capacity(shards.len());
        run_ordered(
            self.threads,
            shards.len(),
            |i| f(&shards[i]),
            |_, partial| partials.push(partial),
        );
        partials
    }

    /// Usage cells merged across shards: the same `(MAC, app)` pair may
    /// accumulate in several shards (a roaming client's bytes arrive via
    /// different APs), so cells sum at the key level before any per-app
    /// or per-OS rollup.
    fn merged_usage(&self, window: WindowId) -> BTreeMap<(MacAddress, Application), UsageTotals> {
        let partials = self.shard_map(|shard| {
            shard
                .window(window)
                .map(|t| t.usage.clone())
                .unwrap_or_default()
        });
        let mut merged: BTreeMap<(MacAddress, Application), UsageTotals> = BTreeMap::new();
        for partial in partials {
            for (key, totals) in partial {
                let slot = merged.entry(key).or_default();
                slot.up_bytes = slot.up_bytes.saturating_add(totals.up_bytes);
                slot.down_bytes = slot.down_bytes.saturating_add(totals.down_bytes);
            }
        }
        merged
    }

    /// Link map merged across shards. Keys are disjoint (a link's
    /// `rx_device` pins it to one shard), so this is a pure union.
    fn merged_links(&self, window: WindowId) -> BTreeMap<LinkKey, Vec<LinkObservation>> {
        let partials = self.shard_map(|shard| {
            shard
                .window(window)
                .map(|t| t.links.clone())
                .unwrap_or_default()
        });
        partials.into_iter().flatten().collect()
    }

    /// Computes a plan through the engine's configured strategy.
    fn compute(&self, plan: &QueryPlan) -> QueryValue {
        match self.backend {
            QueryBackend::Planner => self.compute_planned(plan),
            QueryBackend::Vectorized => self.compute_vectorized(plan),
            QueryBackend::Columnar => self.compute_columnar(plan),
            QueryBackend::Legacy => self.compute_legacy(plan),
        }
    }

    /// Per-shard segment views of `window`, gated by the zone
    /// predicate: each admitted shard yields the segments holding the
    /// window (oldest to newest); pruned shards yield an empty list. A
    /// shard is admitted when ANY of its segments' zones admits —
    /// every admission predicate is monotone in "some segment holds a
    /// row the plan reads", so the OR over segments admits exactly the
    /// shards a monolithic zone map would (a falsely-admitted shadowed
    /// row merges away to a zero contribution, never a wrong byte).
    fn admitted_segment_views(
        &self,
        window: WindowId,
        admit: impl Fn(&WindowZoneMap) -> bool,
    ) -> Vec<Vec<&ColumnarWindow>> {
        let (mut scanned, mut pruned) = (0u64, 0u64);
        let out: Vec<Vec<&ColumnarWindow>> = self
            .snapshot
            .columnar()
            .iter()
            .map(|stack| {
                let views: Vec<&ColumnarWindow> = stack
                    .segments()
                    .iter()
                    .filter_map(|seg| seg.window(window))
                    .collect();
                if views.iter().any(|w| admit(w.zone())) {
                    scanned += 1;
                    views
                } else {
                    pruned += 1;
                    Vec::new()
                }
            })
            .collect();
        self.counters
            .shards_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        self.counters
            .shards_pruned
            .fetch_add(pruned, Ordering::Relaxed);
        out
    }

    /// Zone-gated resolved shard views for the vectorized kernels:
    /// `Some` for shards whose stack admits the plan's filter, `None`
    /// (pruned) otherwise, in shard order. Multi-segment stacks
    /// resolve through [`merge_segments`] in parallel, restricted to
    /// `families`; single-segment stacks borrow at zero cost.
    ///
    /// Pruning is byte-transparent because every kernel treats a `None`
    /// shard exactly as it treats a window with zero matching rows: it
    /// contributes nothing to the merge.
    fn admitted_windows(
        &self,
        window: WindowId,
        admit: impl Fn(&WindowZoneMap) -> bool,
        families: u8,
    ) -> Vec<Option<ResolvedView<'_>>> {
        let stacks = self.admitted_segment_views(window, admit);
        let mut out = Vec::with_capacity(stacks.len());
        run_ordered(
            self.threads,
            stacks.len(),
            |i| resolve_views(&stacks[i], families),
            |_, resolved| out.push(resolved),
        );
        out
    }

    /// Parallel map over the admitted per-shard segment views: runs
    /// `f` on each shard's view list (empty when pruned) via
    /// [`run_ordered`], returning partials in shard order — the entry
    /// point for fused stack kernels that never materialize a merge.
    fn stack_map<T: Send>(
        &self,
        window: WindowId,
        admit: impl Fn(&WindowZoneMap) -> bool,
        f: impl Fn(&[&ColumnarWindow]) -> T + Sync,
    ) -> Vec<T> {
        let stacks = self.admitted_segment_views(window, admit);
        let mut partials = Vec::with_capacity(stacks.len());
        run_ordered(
            self.threads,
            stacks.len(),
            |i| f(&stacks[i]),
            |_, partial| partials.push(partial),
        );
        partials
    }

    /// Sums `f` over the zone maps of every segment holding `window` —
    /// the zone-only execution path: no column is touched at all, so
    /// every shard counts as pruned. Only exact when every stack holds
    /// the window in at most one segment (overlapping deltas would
    /// double-count shadowed keys); callers gate on
    /// [`QueryEngine::window_is_flat`].
    fn zone_sum(&self, window: WindowId, f: impl Fn(&WindowZoneMap) -> u64) -> u64 {
        let mut sum = 0u64;
        for stack in self.snapshot.columnar() {
            for seg in stack.segments() {
                if let Some(w) = seg.window(window) {
                    sum += f(w.zone());
                }
            }
        }
        sum
    }

    /// Whether every shard holds `window` in at most one segment — the
    /// shape under which per-segment zone counters are exact (no key
    /// can be shadowed), and the always-true case before the first
    /// incremental reseal or after full compaction.
    fn window_is_flat(&self, window: WindowId) -> bool {
        self.snapshot.columnar().iter().all(|stack| {
            stack
                .segments()
                .iter()
                .filter(|seg| seg.window(window).is_some())
                .count()
                <= 1
        })
    }

    /// Runs `f` over every shard's resolved columnar projection of
    /// `window` in parallel, returning partials in shard order (the
    /// columnar twin of [`QueryEngine::shard_map`]). Multi-segment
    /// stacks are newest-wins merged, restricted to `families`.
    fn columnar_map<T: Send>(
        &self,
        window: WindowId,
        families: u8,
        f: impl Fn(Option<&ColumnarWindow>) -> T + Sync,
    ) -> Vec<T> {
        let stacks = self.snapshot.columnar();
        let mut partials = Vec::with_capacity(stacks.len());
        run_ordered(
            self.threads,
            stacks.len(),
            |i| {
                let views: Vec<&ColumnarWindow> = stacks[i]
                    .segments()
                    .iter()
                    .filter_map(|seg| seg.window(window))
                    .collect();
                let resolved = resolve_views(&views, families);
                f(resolved.as_ref().map(ResolvedView::get))
            },
            |_, partial| partials.push(partial),
        );
        partials
    }

    /// Columnar twin of [`QueryEngine::merged_usage`]: scans each
    /// shard's packed usage columns (no map clones) and k-way merges
    /// the pre-sorted runs, summing roaming clients' cells with the
    /// same saturating adds in the same shard order.
    fn merged_usage_columnar(
        &self,
        window: WindowId,
    ) -> Vec<((MacAddress, Application), UsageTotals)> {
        let runs = self.columnar_map(window, FAM_USAGE, |w| {
            w.map(|w| w.usage_cells().collect::<Vec<_>>())
                .unwrap_or_default()
        });
        merge_runs(runs, |acc, next: UsageTotals| {
            acc.up_bytes = acc.up_bytes.saturating_add(next.up_bytes);
            acc.down_bytes = acc.down_bytes.saturating_add(next.down_bytes);
        })
    }

    /// The columnar scan kernels: filter → scan → partial-aggregate per
    /// shard over contiguous columns, then the deterministic ordered
    /// merge. Each arm reproduces its legacy twin's canonical order and
    /// floating-point reduction order exactly.
    fn compute_columnar(&self, plan: &QueryPlan) -> QueryValue {
        match *plan {
            QueryPlan::UsageByApp(window) => {
                let mut agg: BTreeMap<Application, (UsageTotals, u64)> = BTreeMap::new();
                for ((_, app), totals) in self.merged_usage_columnar(window) {
                    let slot = agg.entry(app).or_default();
                    slot.0.up_bytes = slot.0.up_bytes.saturating_add(totals.up_bytes);
                    slot.0.down_bytes = slot.0.down_bytes.saturating_add(totals.down_bytes);
                    slot.1 += 1;
                }
                QueryValue::AppUsage(agg.into_iter().map(|(app, (t, c))| (app, t, c)).collect())
            }
            QueryPlan::UsageByOs(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                let cells = self.merged_usage_columnar(window);
                // Cells arrive sorted by (mac, app) and clients sorted by
                // mac, so the per-MAC rollup is a linear group-by and the
                // OS lookup a merge-join — no maps on the hot path.
                let mut agg: BTreeMap<OsFamily, (UsageTotals, u64)> = BTreeMap::new();
                let mut ci = 0usize;
                let mut i = 0usize;
                while i < cells.len() {
                    let mac = cells[i].0 .0;
                    let mut totals = UsageTotals::default();
                    while i < cells.len() && cells[i].0 .0 == mac {
                        totals.up_bytes = totals.up_bytes.saturating_add(cells[i].1.up_bytes);
                        totals.down_bytes = totals.down_bytes.saturating_add(cells[i].1.down_bytes);
                        i += 1;
                    }
                    while ci < clients.len() && clients[ci].0 < mac {
                        ci += 1;
                    }
                    let os = match clients.get(ci) {
                        Some((m, identity)) if *m == mac => identity.os,
                        _ => OsFamily::Unknown,
                    };
                    let slot = agg.entry(os).or_default();
                    slot.0.up_bytes = slot.0.up_bytes.saturating_add(totals.up_bytes);
                    slot.0.down_bytes = slot.0.down_bytes.saturating_add(totals.down_bytes);
                    slot.1 += 1;
                }
                QueryValue::OsUsage(agg.into_iter().map(|(os, (t, c))| (os, t, c)).collect())
            }
            QueryPlan::ClientCount(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                QueryValue::Count(clients.len() as u64)
            }
            QueryPlan::Clients(window) => {
                let runs = self.columnar_map(window, FAM_CLIENTS, |w| {
                    w.map(|w| w.client_rows().collect::<Vec<_>>())
                        .unwrap_or_default()
                });
                // Largest provenance wins on cross-shard MAC collisions,
                // matching the legacy merge's `existing >= entry` rule.
                let merged = merge_runs(runs, |acc, next: (crate::shard::ClientMeta, _)| {
                    if next.0 > acc.0 {
                        *acc = next;
                    }
                });
                QueryValue::Clients(
                    merged
                        .into_iter()
                        .map(|(mac, (_, identity))| (mac, identity))
                        .collect(),
                )
            }
            QueryPlan::AppClientCount(window, app) => QueryValue::Count(
                self.merged_usage_columnar(window)
                    .iter()
                    .filter(|&&((_, a), _)| a == app)
                    .count() as u64,
            ),
            QueryPlan::LinkKeys(window, band) => {
                let runs = self.columnar_map(window, FAM_LINKS, |w| {
                    w.map_or_else(Vec::new, |w| {
                        w.link_keys
                            .iter()
                            .filter(|k| k.band == band)
                            .map(|&k| (k, ()))
                            .collect()
                    })
                });
                // Link keys are shard-disjoint (rx_device pins the
                // shard): the merge is a pure union of sorted runs.
                let merged = merge_runs(runs, |(), ()| {});
                QueryValue::LinkKeys(merged.into_iter().map(|(k, ())| k).collect())
            }
            QueryPlan::LinkSeries(window, key) => {
                for stack in self.snapshot.columnar() {
                    // Newest-first: a delta row carries the key's full
                    // series at seal time, so the newest segment
                    // holding the key is authoritative — no merge.
                    for seg in stack.segments().iter().rev() {
                        if let Some(w) = seg.window(window) {
                            if let Ok(i) = w.link_keys.binary_search(&key) {
                                let (ts, ratio) = w.link_series_at(i);
                                return QueryValue::Series(
                                    (0..ts.len())
                                        .map(|j| ColumnarWindow::link_observation(ts, ratio, j))
                                        .collect(),
                                );
                            }
                        }
                    }
                }
                QueryValue::Series(Vec::new())
            }
            QueryPlan::LatestDeliveryRatios(window, band) => {
                let runs = self.columnar_map(window, FAM_LINKS, |w| {
                    w.map_or_else(Vec::new, |w| {
                        (0..w.link_keys.len())
                            .filter(|&i| w.link_keys[i].band == band)
                            .filter_map(|i| {
                                let (_, ratio) = w.link_series_at(i);
                                ratio.last().map(|&r| (w.link_keys[i], r))
                            })
                            .collect()
                    })
                });
                let merged = merge_runs(runs, |_, _: f64| {});
                QueryValue::Ratios(merged.into_iter().map(|(_, r)| r).collect())
            }
            QueryPlan::MeanDeliveryRatios(window, band) => {
                let runs = self.columnar_map(window, FAM_LINKS, |w| {
                    w.map_or_else(Vec::new, |w| {
                        (0..w.link_keys.len())
                            .filter(|&i| w.link_keys[i].band == band)
                            .filter_map(|i| {
                                let (_, ratio) = w.link_series_at(i);
                                if ratio.is_empty() {
                                    return None;
                                }
                                // Same left-to-right series order as the
                                // legacy mean, so the f64 sum is exact.
                                let sum: f64 = ratio.iter().sum();
                                Some((w.link_keys[i], sum / ratio.len() as f64))
                            })
                            .collect()
                    })
                });
                let merged = merge_runs(runs, |_, _: f64| {});
                QueryValue::Ratios(merged.into_iter().map(|(_, r)| r).collect())
            }
            QueryPlan::ServingUtilizations(window, band) => {
                let runs = self.columnar_map(window, FAM_AIRTIME, |w| {
                    w.map_or_else(Vec::new, |w| {
                        (0..w.airtime_key.len())
                            .filter(|&i| w.airtime_key[i].1 == band)
                            .filter_map(|i| {
                                // busy / elapsed, exactly as
                                // `AirtimeLedger::utilization`.
                                let elapsed = w.airtime_elapsed[i];
                                (elapsed > 0).then(|| {
                                    (w.airtime_key[i], w.airtime_busy[i] as f64 / elapsed as f64)
                                })
                            })
                            .collect()
                    })
                });
                let merged = merge_runs(runs, |_, _: f64| {});
                QueryValue::Ratios(merged.into_iter().map(|(_, u)| u).collect())
            }
            QueryPlan::CensusDeviceCount(window) => QueryValue::Count(
                self.columnar_map(window, FAM_CENSUS, |w| {
                    w.map_or(0, |w| w.census_device.len() as u64)
                })
                .into_iter()
                .sum(),
            ),
            QueryPlan::NearbySummary(window, band) => {
                let partials = self.columnar_map(window, FAM_CENSUS, |w| {
                    let (mut total, mut hotspots, mut devices) = (0u64, 0u64, 0u64);
                    if let Some(w) = w {
                        devices = w.census_device.len() as u64;
                        for i in 0..w.census_band.len() {
                            if w.census_band[i] == band {
                                total += u64::from(w.census_networks[i]);
                                hotspots += u64::from(w.census_hotspots[i]);
                            }
                        }
                    }
                    (total, hotspots, devices)
                });
                let (mut total, mut hotspots, mut devices) = (0u64, 0u64, 0u64);
                for (t, h, d) in partials {
                    total += t;
                    hotspots += h;
                    devices += d;
                }
                let mean_per_ap = if devices > 0 {
                    total as f64 / devices as f64
                } else {
                    0.0
                };
                QueryValue::NearbySummary {
                    total,
                    mean_per_ap,
                    hotspots,
                }
            }
            QueryPlan::NearbyPerChannel(window, band) => {
                let mut per: BTreeMap<u16, u64> = Channel::all_in(band)
                    .into_iter()
                    .map(|ch| (ch.number, 0))
                    .collect();
                let partials = self.columnar_map(window, FAM_CENSUS, |w| {
                    let mut sums: BTreeMap<u16, u64> = BTreeMap::new();
                    if let Some(w) = w {
                        for i in 0..w.census_band.len() {
                            if w.census_band[i] == band {
                                *sums.entry(w.census_channel[i]).or_default() +=
                                    u64::from(w.census_networks[i]);
                            }
                        }
                    }
                    sums
                });
                for partial in partials {
                    for (number, sum) in partial {
                        *per.entry(number).or_default() += sum;
                    }
                }
                QueryValue::PerChannel(per.into_iter().collect())
            }
            QueryPlan::Crashes(window) => {
                // Presence semantics mirror the legacy arm: an
                // aggregator exists only once a crash payload arrived.
                let partials = self.columnar_map(window, FAM_CRASHES, |w| {
                    w.filter(|w| !w.crash_device.is_empty()).map(|w| {
                        (0..w.crash_device.len())
                            .map(|i| (w.crash_device[i], w.crash_rows_at(i).to_vec()))
                            .collect::<Vec<_>>()
                    })
                });
                let runs: Vec<_> = partials.into_iter().flatten().collect();
                if runs.is_empty() {
                    return QueryValue::Crashes(None);
                }
                let merged = merge_runs(runs, |_, _| {});
                let mut aggregator = CrashAggregator::default();
                for (_, reports) in merged {
                    for report in reports {
                        aggregator.ingest(report);
                    }
                }
                QueryValue::Crashes(Some(aggregator))
            }
            QueryPlan::ScanObservations(window, band) => {
                let runs = self.columnar_map(window, FAM_SCANS, |w| {
                    w.map_or_else(Vec::new, |w| {
                        (0..w.scan_device.len())
                            .map(|i| {
                                (
                                    w.scan_device[i],
                                    w.scan_rows_at(i)
                                        .filter(|&j| w.scan_channel[j].band == band)
                                        .map(|j| w.scan_observation(j))
                                        .collect::<Vec<_>>(),
                                )
                            })
                            .collect()
                    })
                });
                let merged = merge_runs(runs, |_, _| {});
                QueryValue::Scans(merged.into_iter().flat_map(|(_, obs)| obs).collect())
            }
        }
    }

    /// The two-pass vectorized kernels with zone-map pruning.
    ///
    /// Pass 1 builds a branch-free selection index vector (or dense
    /// partial-aggregate lanes) over the flat columns of every
    /// *admitted* shard; pass 2 gathers through the selections with a
    /// zero-copy cursor merge ([`kway_groups`]) in the same canonical
    /// key order the fused columnar kernels and the legacy fold use.
    /// Every f64 reduction keeps the exact operand order of its legacy
    /// twin; every u64 rollup that re-associates does so under the
    /// saturating-add monoid (associative + commutative), so all three
    /// paths are byte-identical — proven by the differential tests.
    fn compute_vectorized(&self, plan: &QueryPlan) -> QueryValue {
        match *plan {
            QueryPlan::UsageByApp(window) => {
                let stacks = self.admitted_segment_views(window, |z| z.usage_rows > 0);
                // Totals: dense per-app lanes, one fused newest-wins
                // k-way pass per shard's stack (no merged window is
                // materialized). Re-associating the saturating sums per
                // shard first is byte-safe (see
                // `ColumnarWindow::add_usage_by_app`).
                let mut lanes = [UsageTotals::default(); APP_LANES];
                for segs in &stacks {
                    match segs[..] {
                        // Flat stack: the original linear pass, no
                        // cursor overhead.
                        [w] => w.add_usage_by_app(&mut lanes),
                        _ => add_usage_by_app_stack(segs, &mut lanes),
                    }
                }
                // Distinct clients: count distinct (mac, app) cells with
                // a zero-copy cursor walk over every segment's sorted key
                // columns — a cell shadowed across deltas lands in the
                // same group as a cross-shard duplicate and counts once.
                let flat: Vec<&ColumnarWindow> = stacks.iter().flatten().copied().collect();
                let mut counts = [0u64; APP_LANES];
                let lens: Vec<usize> = flat.iter().map(|w| w.usage_mac.len()).collect();
                kway_groups(
                    &lens,
                    |r, i| (flat[r].usage_mac[i], flat[r].usage_app[i]),
                    |(_, app), _| counts[app as usize] += 1,
                );
                // Emit ascending discriminant == ascending `Ord`, matching
                // the legacy `BTreeMap<Application>` iteration order.
                let mut app_by_lane = [None; APP_LANES];
                for &app in Application::ALL {
                    app_by_lane[app as usize] = Some(app);
                }
                QueryValue::AppUsage(
                    (0..APP_LANES)
                        .filter(|&lane| counts[lane] > 0)
                        .map(|lane| {
                            let app = app_by_lane[lane]
                                .expect("invariant: counted lanes come from real cells");
                            (app, lanes[lane], counts[lane])
                        })
                        .collect(),
                )
            }
            QueryPlan::UsageByOs(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                // Pass 1 (parallel): per-shard per-MAC rollups fused
                // over each stack's sorted mac columns (newest segment
                // wins per cell) — shrinks the cross-shard merge by the
                // apps-per-MAC factor, byte-safe under the
                // saturating-add monoid.
                let runs = self.stack_map(
                    window,
                    |z| z.usage_rows > 0,
                    |segs| match segs {
                        // Flat stack: the original linear group-by.
                        [w] => w.usage_totals_by_mac(),
                        _ => usage_totals_by_mac_stack(segs),
                    },
                );
                // Pass 2: cursor k-way merge + merge-join against the
                // sorted client list, aggregating into dense OS lanes.
                let mut os_by_lane = [OsFamily::Unknown; OS_LANES];
                for &os in &OsFamily::ALL {
                    os_by_lane[os as usize] = os;
                }
                let mut agg = [(UsageTotals::default(), 0u64); OS_LANES];
                let lens: Vec<usize> = runs.iter().map(|(macs, _)| macs.len()).collect();
                let mut ci = 0usize;
                kway_groups(
                    &lens,
                    |r, i| runs[r].0[i],
                    |mac, members| {
                        let mut totals = UsageTotals::default();
                        for &(r, i) in members {
                            let t = runs[r].1[i];
                            totals.up_bytes = totals.up_bytes.saturating_add(t.up_bytes);
                            totals.down_bytes = totals.down_bytes.saturating_add(t.down_bytes);
                        }
                        while ci < clients.len() && clients[ci].0 < mac {
                            ci += 1;
                        }
                        let os = match clients.get(ci) {
                            Some((m, identity)) if *m == mac => identity.os,
                            _ => OsFamily::Unknown,
                        };
                        let slot = &mut agg[os as usize];
                        slot.0.up_bytes = slot.0.up_bytes.saturating_add(totals.up_bytes);
                        slot.0.down_bytes = slot.0.down_bytes.saturating_add(totals.down_bytes);
                        slot.1 += 1;
                    },
                );
                // Ascending discriminant == ascending `Ord` (the `ALL`
                // display order differs — never emit in that order).
                QueryValue::OsUsage(
                    (0..OS_LANES)
                        .filter(|&lane| agg[lane].1 > 0)
                        .map(|lane| (os_by_lane[lane], agg[lane].0, agg[lane].1))
                        .collect(),
                )
            }
            QueryPlan::ClientCount(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                QueryValue::Count(clients.len() as u64)
            }
            QueryPlan::Clients(window) => {
                let resolved = self.admitted_windows(window, |z| z.client_rows > 0, FAM_CLIENTS);
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let lens: Vec<usize> = wins.iter().map(|w| w.client_mac.len()).collect();
                let mut out = Vec::with_capacity(lens.iter().sum());
                kway_groups(
                    &lens,
                    |r, i| wins[r].client_mac[i],
                    |mac, members| {
                        // Largest provenance wins, scanning members in
                        // shard order with a strict `>` — the same rule
                        // as the fused merge and the legacy fold.
                        let (mut br, mut bi) = members[0];
                        for &(r, i) in &members[1..] {
                            if wins[r].client_meta[i] > wins[br].client_meta[bi] {
                                (br, bi) = (r, i);
                            }
                        }
                        out.push((
                            mac,
                            ClientIdentity {
                                os: wins[br].client_os[bi],
                                caps: wins[br].client_caps[bi],
                                band: wins[br].client_band[bi],
                                rssi_dbm: wins[br].client_rssi[bi],
                            },
                        ));
                    },
                );
                QueryValue::Clients(out)
            }
            QueryPlan::AppClientCount(window, app) => {
                let bit = 1u64 << (app as usize);
                let resolved =
                    self.admitted_windows(window, |z| z.apps_present & bit != 0, FAM_USAGE);
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| select_indices(w.usage_app.len(), |i| w.usage_app[i] == app))
                    .collect();
                // Cells are unique per shard; distinct MACs fall out of
                // the k-way walk over the selected mac entries.
                let lens: Vec<usize> = sels.iter().map(Vec::len).collect();
                let mut count = 0u64;
                kway_groups(
                    &lens,
                    |r, i| wins[r].usage_mac[sels[r][i] as usize],
                    |_, _| count += 1,
                );
                QueryValue::Count(count)
            }
            QueryPlan::LinkKeys(window, band) => {
                let resolved = self.admitted_windows(
                    window,
                    |z| z.link_keys_per_band[band as usize] > 0,
                    FAM_LINKS,
                );
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| select_indices(w.link_keys.len(), |i| w.link_keys[i].band == band))
                    .collect();
                let lens: Vec<usize> = sels.iter().map(Vec::len).collect();
                let mut keys = Vec::with_capacity(lens.iter().sum());
                // Link keys are shard-disjoint: the walk is a pure union.
                kway_groups(
                    &lens,
                    |r, i| wins[r].link_keys[sels[r][i] as usize],
                    |key, _| keys.push(key),
                );
                QueryValue::LinkKeys(keys)
            }
            QueryPlan::LinkSeries(window, key) => {
                let in_range = |z: &WindowZoneMap| {
                    z.link_key_range
                        .is_some_and(|(lo, hi)| lo <= key && key <= hi)
                };
                let stacks = self.admitted_segment_views(window, in_range);
                for segs in &stacks {
                    // Newest-first within the stack: a delta row carries
                    // the full series, so the first hit is the answer.
                    // Per-segment zone ranges skip the binary searches
                    // that cannot match.
                    for w in segs.iter().rev().filter(|w| in_range(w.zone())) {
                        if let Ok(i) = w.link_keys.binary_search(&key) {
                            let (ts, ratio) = w.link_series_at(i);
                            return QueryValue::Series(
                                (0..ts.len())
                                    .map(|j| ColumnarWindow::link_observation(ts, ratio, j))
                                    .collect(),
                            );
                        }
                    }
                }
                QueryValue::Series(Vec::new())
            }
            QueryPlan::LatestDeliveryRatios(window, band) => {
                let resolved = self.admitted_windows(
                    window,
                    |z| z.link_keys_per_band[band as usize] > 0,
                    FAM_LINKS,
                );
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| {
                        select_indices(w.link_keys.len(), |i| {
                            w.link_keys[i].band == band && w.link_offsets[i + 1] > w.link_offsets[i]
                        })
                    })
                    .collect();
                let lens: Vec<usize> = sels.iter().map(Vec::len).collect();
                let mut ratios = Vec::with_capacity(lens.iter().sum());
                kway_groups(
                    &lens,
                    |r, i| wins[r].link_keys[sels[r][i] as usize],
                    |_, members| {
                        let (r, i) = members[0];
                        let w = wins[r];
                        ratios.push(w.link_ratio[w.link_offsets[sels[r][i] as usize + 1] - 1]);
                    },
                );
                QueryValue::Ratios(ratios)
            }
            QueryPlan::MeanDeliveryRatios(window, band) => {
                let resolved = self.admitted_windows(
                    window,
                    |z| z.link_keys_per_band[band as usize] > 0,
                    FAM_LINKS,
                );
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| {
                        select_indices(w.link_keys.len(), |i| {
                            w.link_keys[i].band == band && w.link_offsets[i + 1] > w.link_offsets[i]
                        })
                    })
                    .collect();
                let lens: Vec<usize> = sels.iter().map(Vec::len).collect();
                let mut ratios = Vec::with_capacity(lens.iter().sum());
                kway_groups(
                    &lens,
                    |r, i| wins[r].link_keys[sels[r][i] as usize],
                    |_, members| {
                        let (r, i) = members[0];
                        let w = wins[r];
                        let (_, series) = w.link_series_at(sels[r][i] as usize);
                        // Same left-to-right series order as the legacy
                        // and fused means, so the f64 sum is exact.
                        let sum: f64 = series.iter().sum();
                        ratios.push(sum / series.len() as f64);
                    },
                );
                QueryValue::Ratios(ratios)
            }
            QueryPlan::ServingUtilizations(window, band) => {
                let resolved = self.admitted_windows(
                    window,
                    |z| z.airtime_rows_per_band[band as usize] > 0,
                    FAM_AIRTIME,
                );
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| {
                        select_indices(w.airtime_key.len(), |i| {
                            w.airtime_key[i].1 == band && w.airtime_elapsed[i] > 0
                        })
                    })
                    .collect();
                let lens: Vec<usize> = sels.iter().map(Vec::len).collect();
                let mut ratios = Vec::with_capacity(lens.iter().sum());
                kway_groups(
                    &lens,
                    |r, i| wins[r].airtime_key[sels[r][i] as usize],
                    |_, members| {
                        let (r, i) = members[0];
                        let w = wins[r];
                        let j = sels[r][i] as usize;
                        // busy / elapsed, exactly as `AirtimeLedger::
                        // utilization` — identical operands, identical
                        // division.
                        ratios.push(w.airtime_busy[j] as f64 / w.airtime_elapsed[j] as f64);
                    },
                );
                QueryValue::Ratios(ratios)
            }
            QueryPlan::CensusDeviceCount(window) => {
                if self.window_is_flat(window) {
                    // Zone-only: the answer is a sum of zone-map
                    // counters, so every shard is "pruned" (no column
                    // scanned).
                    self.counters
                        .shards_pruned
                        .fetch_add(self.snapshot.columnar().len() as u64, Ordering::Relaxed);
                    QueryValue::Count(self.zone_sum(window, |z| z.census_devices as u64))
                } else {
                    // Overlapping deltas can shadow the same device, so
                    // the zone counters overcount: resolve and count
                    // distinct census filers per shard instead.
                    let resolved =
                        self.admitted_windows(window, |z| z.census_devices > 0, FAM_CENSUS);
                    QueryValue::Count(
                        resolved
                            .iter()
                            .flatten()
                            .map(|v| v.get().census_device.len() as u64)
                            .sum(),
                    )
                }
            }
            QueryPlan::NearbySummary(window, band) => {
                // Devices count every census filer regardless of band
                // (legacy semantics): straight from the zones when no
                // stack overlaps, from the resolved views otherwise
                // (shadowed filers must count once).
                let flat = self.window_is_flat(window);
                let resolved = if flat {
                    self.admitted_windows(
                        window,
                        |z| z.census_rows_per_band[band as usize] > 0,
                        FAM_CENSUS,
                    )
                } else {
                    self.admitted_windows(window, |z| z.census_devices > 0, FAM_CENSUS)
                };
                let devices = if flat {
                    self.zone_sum(window, |z| z.census_devices as u64)
                } else {
                    resolved
                        .iter()
                        .flatten()
                        .map(|v| v.get().census_device.len() as u64)
                        .sum()
                };
                let (mut total, mut hotspots) = (0u64, 0u64);
                for w in resolved.iter().flatten().map(ResolvedView::get) {
                    // Branchless mask-multiply accumulate: non-matching
                    // rows add exact zeros, so the u64 sums are the
                    // fused kernel's bytes.
                    for i in 0..w.census_band.len() {
                        let m = u64::from(w.census_band[i] == band);
                        total += m * u64::from(w.census_networks[i]);
                        hotspots += m * u64::from(w.census_hotspots[i]);
                    }
                }
                let mean_per_ap = if devices > 0 {
                    total as f64 / devices as f64
                } else {
                    0.0
                };
                QueryValue::NearbySummary {
                    total,
                    mean_per_ap,
                    hotspots,
                }
            }
            QueryPlan::NearbyPerChannel(window, band) => {
                let mut per: BTreeMap<u16, u64> = Channel::all_in(band)
                    .into_iter()
                    .map(|ch| (ch.number, 0))
                    .collect();
                let resolved = self.admitted_windows(
                    window,
                    |z| z.census_rows_per_band[band as usize] > 0,
                    FAM_CENSUS,
                );
                for w in resolved.iter().flatten().map(ResolvedView::get) {
                    let sel = select_indices(w.census_band.len(), |i| w.census_band[i] == band);
                    for &i in &sel {
                        *per.entry(w.census_channel[i as usize]).or_default() +=
                            u64::from(w.census_networks[i as usize]);
                    }
                }
                QueryValue::PerChannel(per.into_iter().collect())
            }
            QueryPlan::Crashes(window) => {
                let resolved = self.admitted_windows(window, |z| z.crash_devices > 0, FAM_CRASHES);
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                // Presence semantics: a zone with crash_devices > 0 is
                // exactly a shard whose crash table is non-empty.
                if wins.is_empty() {
                    return QueryValue::Crashes(None);
                }
                // Devices are shard-disjoint: a sorted index over
                // (device, shard, row) reproduces the global device
                // order without materializing per-shard report vectors.
                let mut index: Vec<(u64, usize, usize)> = Vec::new();
                for (r, w) in wins.iter().enumerate() {
                    index.extend((0..w.crash_device.len()).map(|i| (w.crash_device[i], r, i)));
                }
                index.sort_unstable();
                let mut aggregator = CrashAggregator::default();
                for (_, r, i) in index {
                    for report in wins[r].crash_rows_at(i) {
                        aggregator.ingest(report.clone());
                    }
                }
                QueryValue::Crashes(Some(aggregator))
            }
            QueryPlan::ScanObservations(window, band) => {
                let resolved = self.admitted_windows(
                    window,
                    |z| z.scan_obs_per_band[band as usize] > 0,
                    FAM_SCANS,
                );
                let wins: Vec<&ColumnarWindow> =
                    resolved.iter().flatten().map(ResolvedView::get).collect();
                // Pass 1: branch-free selection over the flat channel
                // column of each admitted shard.
                let sels: Vec<Vec<u32>> = wins
                    .iter()
                    .map(|w| {
                        select_indices(w.scan_channel.len(), |j| w.scan_channel[j].band == band)
                    })
                    .collect();
                // Pass 2: devices are shard-disjoint; a sorted (device,
                // shard, device-row) index yields the global device
                // order, and per-shard selection cursors gather each
                // device's matching observations in (seq, slot) order.
                let mut index: Vec<(u64, usize, usize)> = Vec::new();
                for (r, w) in wins.iter().enumerate() {
                    index.extend((0..w.scan_device.len()).map(|i| (w.scan_device[i], r, i)));
                }
                index.sort_unstable();
                let mut cursors = vec![0usize; wins.len()];
                let mut out = Vec::with_capacity(sels.iter().map(Vec::len).sum());
                for (_, r, i) in index {
                    let w = wins[r];
                    let range = w.scan_rows_at(i);
                    let sel = &sels[r];
                    while cursors[r] < sel.len() && (sel[cursors[r]] as usize) < range.end {
                        out.push(w.scan_observation(sel[cursors[r]] as usize));
                        cursors[r] += 1;
                    }
                }
                QueryValue::Scans(out)
            }
        }
    }

    /// The cost-based planner: per plan, estimate the vectorized,
    /// columnar, and legacy costs from shard row counts plus zone-map
    /// selectivity, then run the cheapest (the cache was already
    /// consulted by [`QueryEngine::execute`]). Ties go to the
    /// vectorized path.
    fn compute_planned(&self, plan: &QueryPlan) -> QueryValue {
        let stats = self.plan_stats(plan);
        let vec_cost = stats.admitted_shards as f64 * VEC_SHARD_SETUP_NS
            + stats.admitted_rows as f64 * VEC_NS_PER_ROW;
        let col_cost = stats.total_shards as f64 * COL_SHARD_SETUP_NS
            + stats.total_rows as f64 * COL_NS_PER_ROW;
        let leg_cost = stats.total_shards as f64 * LEG_SHARD_SETUP_NS
            + stats.total_rows as f64 * LEG_NS_PER_ROW;
        let (choice, est) = if vec_cost <= col_cost && vec_cost <= leg_cost {
            (QueryBackend::Vectorized, vec_cost)
        } else if col_cost <= leg_cost {
            (QueryBackend::Columnar, col_cost)
        } else {
            (QueryBackend::Legacy, leg_cost)
        };
        let counter = match choice {
            QueryBackend::Vectorized => &self.counters.plans_vectorized,
            QueryBackend::Columnar => &self.counters.plans_columnar,
            _ => &self.counters.plans_legacy,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if self.explain {
            eprintln!(
                "plan {:<22} -> {:<10} (zones admit {}/{} shards, ~{} of {} rows, est {:.0} us)",
                plan.name(),
                choice.name(),
                stats.admitted_shards,
                stats.total_shards,
                stats.admitted_rows,
                stats.total_rows,
                est / 1000.0,
            );
        }
        match choice {
            QueryBackend::Vectorized => self.compute_vectorized(plan),
            QueryBackend::Columnar => self.compute_columnar(plan),
            _ => self.compute_legacy(plan),
        }
    }

    /// Zone-map statistics feeding the cost model: how many shards the
    /// plan's filter admits and how many rows its kernels would touch.
    fn plan_stats(&self, plan: &QueryPlan) -> PlanZoneStats {
        let window = plan.window();
        let mut stats = PlanZoneStats {
            total_shards: self.snapshot.columnar().len(),
            ..PlanZoneStats::default()
        };
        for stack in self.snapshot.columnar() {
            // Segment-granular admission: a shard is admitted when any
            // of its delta segments admits; rows are estimated per
            // segment, so a plan whose filter only touches a small
            // recent delta is costed against that delta, not the whole
            // shard. Shadowed keys may be counted twice — acceptable
            // for ranking, never for results.
            let mut shard_admitted = false;
            for seg in stack.segments() {
                let Some(w) = seg.window(window) else {
                    continue;
                };
                let (admitted, rows) = plan_zone_estimate(plan, w.zone());
                stats.total_rows += rows;
                if admitted {
                    shard_admitted = true;
                    stats.admitted_rows += rows;
                }
            }
            if shard_admitted {
                stats.admitted_shards += 1;
            }
        }
        stats
    }

    /// The original map-backed path: clone each shard's tables, fold
    /// into merge maps. Kept behind [`QueryBackend::Legacy`] as the
    /// differential reference for the columnar kernels.
    fn compute_legacy(&self, plan: &QueryPlan) -> QueryValue {
        match *plan {
            QueryPlan::UsageByApp(window) => {
                let mut agg: BTreeMap<Application, (UsageTotals, u64)> = BTreeMap::new();
                for (&(_, app), totals) in &self.merged_usage(window) {
                    let slot = agg.entry(app).or_default();
                    slot.0.up_bytes = slot.0.up_bytes.saturating_add(totals.up_bytes);
                    slot.0.down_bytes = slot.0.down_bytes.saturating_add(totals.down_bytes);
                    slot.1 += 1;
                }
                QueryValue::AppUsage(agg.into_iter().map(|(app, (t, c))| (app, t, c)).collect())
            }
            QueryPlan::UsageByOs(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                let identities: BTreeMap<MacAddress, OsFamily> =
                    clients.into_iter().map(|(mac, id)| (mac, id.os)).collect();
                let mut per_mac: BTreeMap<MacAddress, UsageTotals> = BTreeMap::new();
                for (&(mac, _), totals) in &self.merged_usage(window) {
                    let slot = per_mac.entry(mac).or_default();
                    slot.up_bytes = slot.up_bytes.saturating_add(totals.up_bytes);
                    slot.down_bytes = slot.down_bytes.saturating_add(totals.down_bytes);
                }
                let mut agg: BTreeMap<OsFamily, (UsageTotals, u64)> = BTreeMap::new();
                for (mac, totals) in per_mac {
                    let os = identities.get(&mac).copied().unwrap_or(OsFamily::Unknown);
                    let slot = agg.entry(os).or_default();
                    slot.0.up_bytes = slot.0.up_bytes.saturating_add(totals.up_bytes);
                    slot.0.down_bytes = slot.0.down_bytes.saturating_add(totals.down_bytes);
                    slot.1 += 1;
                }
                QueryValue::OsUsage(agg.into_iter().map(|(os, (t, c))| (os, t, c)).collect())
            }
            QueryPlan::ClientCount(window) => {
                let QueryValue::Clients(clients) = self.execute(&QueryPlan::Clients(window)) else {
                    unreachable!("Clients plan yields Clients");
                };
                QueryValue::Count(clients.len() as u64)
            }
            QueryPlan::Clients(window) => {
                let partials = self.shard_map(|shard| {
                    shard
                        .window(window)
                        .map(|t| t.clients.clone())
                        .unwrap_or_default()
                });
                // The same MAC may surface in several shards (identity
                // filed via different devices): the largest provenance
                // wins, matching the single-shard conflict rule.
                let mut merged: BTreeMap<MacAddress, (crate::shard::ClientMeta, ClientIdentity)> =
                    BTreeMap::new();
                for partial in partials {
                    for (mac, entry) in partial {
                        match merged.get_mut(&mac) {
                            Some(existing) if existing.0 >= entry.0 => {}
                            Some(existing) => *existing = entry,
                            None => {
                                merged.insert(mac, entry);
                            }
                        }
                    }
                }
                QueryValue::Clients(
                    merged
                        .into_iter()
                        .map(|(mac, (_, identity))| (mac, identity))
                        .collect(),
                )
            }
            QueryPlan::AppClientCount(window, app) => QueryValue::Count(
                self.merged_usage(window)
                    .keys()
                    .filter(|&&(_, a)| a == app)
                    .count() as u64,
            ),
            QueryPlan::LinkKeys(window, band) => QueryValue::LinkKeys(
                self.merged_links(window)
                    .into_keys()
                    .filter(|k| k.band == band)
                    .collect(),
            ),
            QueryPlan::LinkSeries(window, key) => {
                QueryValue::Series(self.merged_links(window).remove(&key).unwrap_or_default())
            }
            QueryPlan::LatestDeliveryRatios(window, band) => QueryValue::Ratios(
                self.merged_links(window)
                    .iter()
                    .filter(|(k, obs)| k.band == band && !obs.is_empty())
                    .map(|(_, obs)| {
                        obs.last()
                            .expect("invariant: filtered to non-empty above")
                            .ratio
                    })
                    .collect(),
            ),
            QueryPlan::MeanDeliveryRatios(window, band) => QueryValue::Ratios(
                self.merged_links(window)
                    .iter()
                    .filter(|(k, obs)| k.band == band && !obs.is_empty())
                    // airstat::allow(float-fold-order): obs comes from merged_links in sealed CSR order, identical for every shard/thread count
                    .map(|(_, obs)| obs.iter().map(|o| o.ratio).sum::<f64>() / obs.len() as f64)
                    .collect(),
            ),
            QueryPlan::ServingUtilizations(window, band) => {
                let partials = self.shard_map(|shard| {
                    shard.window(window).map_or_else(Vec::new, |t| {
                        t.airtime
                            .iter()
                            .filter(|(&(_, b), _)| b == band)
                            .filter_map(|(&key, ledger)| ledger.utilization().map(|u| (key, u)))
                            .collect::<Vec<_>>()
                    })
                });
                // `(device, band)` keys are disjoint across shards;
                // flatten through a BTreeMap for canonical device order.
                let merged: BTreeMap<(u64, Band), f64> = partials.into_iter().flatten().collect();
                QueryValue::Ratios(merged.into_values().collect())
            }
            QueryPlan::CensusDeviceCount(window) => QueryValue::Count(
                self.shard_map(|shard| {
                    shard.window(window).map_or(0, |t| t.neighbors.len() as u64)
                })
                .into_iter()
                .sum(),
            ),
            QueryPlan::NearbySummary(window, band) => {
                let partials = self.shard_map(|shard| {
                    let mut total = 0u64;
                    let mut hotspots = 0u64;
                    let mut devices = 0u64;
                    if let Some(t) = shard.window(window) {
                        for (_, rows) in t.neighbors.values() {
                            devices += 1;
                            for &(b, _, networks, hs) in rows {
                                if b == band {
                                    total += u64::from(networks);
                                    hotspots += u64::from(hs);
                                }
                            }
                        }
                    }
                    (total, hotspots, devices)
                });
                let (mut total, mut hotspots, mut devices) = (0u64, 0u64, 0u64);
                for (t, h, d) in partials {
                    total += t;
                    hotspots += h;
                    devices += d;
                }
                let mean_per_ap = if devices > 0 {
                    total as f64 / devices as f64
                } else {
                    0.0
                };
                QueryValue::NearbySummary {
                    total,
                    mean_per_ap,
                    hotspots,
                }
            }
            QueryPlan::NearbyPerChannel(window, band) => {
                let mut per: BTreeMap<u16, u64> = Channel::all_in(band)
                    .into_iter()
                    .map(|ch| (ch.number, 0))
                    .collect();
                let partials = self.shard_map(|shard| {
                    let mut sums: BTreeMap<u16, u64> = BTreeMap::new();
                    if let Some(t) = shard.window(window) {
                        for (_, rows) in t.neighbors.values() {
                            for &(b, number, networks, _) in rows {
                                if b == band {
                                    *sums.entry(number).or_default() += u64::from(networks);
                                }
                            }
                        }
                    }
                    sums
                });
                for partial in partials {
                    for (number, sum) in partial {
                        *per.entry(number).or_default() += sum;
                    }
                }
                QueryValue::PerChannel(per.into_iter().collect())
            }
            QueryPlan::Crashes(window) => {
                // Presence mirrors the legacy backend: an aggregator
                // exists only once a crash payload arrived (even an empty
                // one), not merely because the window saw other traffic.
                let partials = self.shard_map(|shard| {
                    shard
                        .window(window)
                        .filter(|t| !t.crashes.is_empty())
                        .map(|t| {
                            t.crashes
                                .iter()
                                .map(|(&device, reports)| {
                                    (device, reports.values().cloned().collect::<Vec<_>>())
                                })
                                .collect::<BTreeMap<_, _>>()
                        })
                });
                let mut any = false;
                let mut merged = BTreeMap::new();
                for partial in partials.into_iter().flatten() {
                    any = true;
                    merged.extend(partial);
                }
                if !any {
                    return QueryValue::Crashes(None);
                }
                let mut aggregator = CrashAggregator::default();
                for reports in merged.into_values() {
                    for report in reports {
                        aggregator.ingest(report);
                    }
                }
                QueryValue::Crashes(Some(aggregator))
            }
            QueryPlan::ScanObservations(window, band) => {
                let partials = self.shard_map(|shard| {
                    shard.window(window).map_or_else(Vec::new, |t| {
                        t.scans
                            .iter()
                            .map(|(&device, obs)| {
                                (
                                    device,
                                    obs.values()
                                        .filter(|o| o.record.channel.band == band)
                                        .copied()
                                        .collect::<Vec<_>>(),
                                )
                            })
                            .collect()
                    })
                });
                // Devices are disjoint across shards; flattening the
                // device-keyed BTreeMap gives one canonical global order.
                let merged: BTreeMap<u64, Vec<ScanObservation>> =
                    partials.into_iter().flatten().collect();
                QueryValue::Scans(merged.into_values().flatten().collect())
            }
        }
    }
}

/// The query surface shared by the legacy [`Backend`] and the
/// [`QueryEngine`], with owned returns so analytics code can compute
/// against either.
///
/// The `Backend` impl delegates to its inherent methods; the
/// `QueryEngine` impl executes the matching [`QueryPlan`] (and so
/// benefits from the result cache).
pub trait FleetQuery {
    /// Total usage per application with distinct clients.
    fn usage_by_app(&self, window: WindowId) -> Vec<(Application, UsageTotals, u64)>;
    /// Total usage per OS family with distinct clients.
    fn usage_by_os(&self, window: WindowId) -> Vec<(OsFamily, UsageTotals, u64)>;
    /// Number of distinct clients seen in a window.
    fn client_count(&self, window: WindowId) -> usize;
    /// Every client identity, in MAC order.
    fn clients(&self, window: WindowId) -> Vec<(MacAddress, ClientIdentity)>;
    /// Distinct clients that used a given application.
    fn app_client_count(&self, window: WindowId, app: Application) -> u64;
    /// All link keys on a band, in key order.
    fn link_keys(&self, window: WindowId, band: Band) -> Vec<LinkKey>;
    /// The observation time series for a link.
    fn link_series(&self, window: WindowId, key: LinkKey) -> Vec<LinkObservation>;
    /// Most recent delivery ratio per link on a band.
    fn latest_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64>;
    /// Mean delivery ratio per link on a band.
    fn mean_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64>;
    /// Per-device serving-radio utilizations on a band.
    fn serving_utilizations(&self, window: WindowId, band: Band) -> Vec<f64>;
    /// Devices that filed a neighbour census.
    fn census_device_count(&self, window: WindowId) -> usize;
    /// `(total networks, mean per AP, hotspots)` on a band.
    fn nearby_summary(&self, window: WindowId, band: Band) -> (u64, f64, u64);
    /// Nearby networks summed per channel.
    fn nearby_per_channel(&self, window: WindowId, band: Band) -> Vec<(u16, u64)>;
    /// The crash-triage aggregate, if any crashes arrived.
    fn crashes(&self, window: WindowId) -> Option<CrashAggregator>;
    /// All channel-scan observations on a band.
    fn scan_observations(&self, window: WindowId, band: Band) -> Vec<ScanObservation>;
}

impl FleetQuery for Backend {
    fn usage_by_app(&self, window: WindowId) -> Vec<(Application, UsageTotals, u64)> {
        Backend::usage_by_app(self, window)
    }
    fn usage_by_os(&self, window: WindowId) -> Vec<(OsFamily, UsageTotals, u64)> {
        Backend::usage_by_os(self, window)
    }
    fn client_count(&self, window: WindowId) -> usize {
        Backend::client_count(self, window)
    }
    fn clients(&self, window: WindowId) -> Vec<(MacAddress, ClientIdentity)> {
        Backend::clients(self, window)
            .map(|(mac, identity)| (*mac, *identity))
            .collect()
    }
    fn app_client_count(&self, window: WindowId, app: Application) -> u64 {
        Backend::app_client_count(self, window, app)
    }
    fn link_keys(&self, window: WindowId, band: Band) -> Vec<LinkKey> {
        Backend::link_keys(self, window, band)
    }
    fn link_series(&self, window: WindowId, key: LinkKey) -> Vec<LinkObservation> {
        Backend::link_series(self, window, key).to_vec()
    }
    fn latest_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64> {
        Backend::latest_delivery_ratios(self, window, band)
    }
    fn mean_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64> {
        Backend::mean_delivery_ratios(self, window, band)
    }
    fn serving_utilizations(&self, window: WindowId, band: Band) -> Vec<f64> {
        Backend::serving_utilizations(self, window, band)
    }
    fn census_device_count(&self, window: WindowId) -> usize {
        Backend::census_device_count(self, window)
    }
    fn nearby_summary(&self, window: WindowId, band: Band) -> (u64, f64, u64) {
        Backend::nearby_summary(self, window, band)
    }
    fn nearby_per_channel(&self, window: WindowId, band: Band) -> Vec<(u16, u64)> {
        Backend::nearby_per_channel(self, window, band)
    }
    fn crashes(&self, window: WindowId) -> Option<CrashAggregator> {
        Backend::crashes(self, window).cloned()
    }
    fn scan_observations(&self, window: WindowId, band: Band) -> Vec<ScanObservation> {
        Backend::scan_observations(self, window, band)
    }
}

impl FleetQuery for QueryEngine {
    fn usage_by_app(&self, window: WindowId) -> Vec<(Application, UsageTotals, u64)> {
        match self.execute(&QueryPlan::UsageByApp(window)) {
            QueryValue::AppUsage(rows) => rows,
            _ => unreachable!("UsageByApp yields AppUsage"),
        }
    }
    fn usage_by_os(&self, window: WindowId) -> Vec<(OsFamily, UsageTotals, u64)> {
        match self.execute(&QueryPlan::UsageByOs(window)) {
            QueryValue::OsUsage(rows) => rows,
            _ => unreachable!("UsageByOs yields OsUsage"),
        }
    }
    fn client_count(&self, window: WindowId) -> usize {
        match self.execute(&QueryPlan::ClientCount(window)) {
            QueryValue::Count(n) => n as usize,
            _ => unreachable!("ClientCount yields Count"),
        }
    }
    fn clients(&self, window: WindowId) -> Vec<(MacAddress, ClientIdentity)> {
        match self.execute(&QueryPlan::Clients(window)) {
            QueryValue::Clients(rows) => rows,
            _ => unreachable!("Clients yields Clients"),
        }
    }
    fn app_client_count(&self, window: WindowId, app: Application) -> u64 {
        match self.execute(&QueryPlan::AppClientCount(window, app)) {
            QueryValue::Count(n) => n,
            _ => unreachable!("AppClientCount yields Count"),
        }
    }
    fn link_keys(&self, window: WindowId, band: Band) -> Vec<LinkKey> {
        match self.execute(&QueryPlan::LinkKeys(window, band)) {
            QueryValue::LinkKeys(keys) => keys,
            _ => unreachable!("LinkKeys yields LinkKeys"),
        }
    }
    fn link_series(&self, window: WindowId, key: LinkKey) -> Vec<LinkObservation> {
        match self.execute(&QueryPlan::LinkSeries(window, key)) {
            QueryValue::Series(obs) => obs,
            _ => unreachable!("LinkSeries yields Series"),
        }
    }
    fn latest_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64> {
        match self.execute(&QueryPlan::LatestDeliveryRatios(window, band)) {
            QueryValue::Ratios(r) => r,
            _ => unreachable!("LatestDeliveryRatios yields Ratios"),
        }
    }
    fn mean_delivery_ratios(&self, window: WindowId, band: Band) -> Vec<f64> {
        match self.execute(&QueryPlan::MeanDeliveryRatios(window, band)) {
            QueryValue::Ratios(r) => r,
            _ => unreachable!("MeanDeliveryRatios yields Ratios"),
        }
    }
    fn serving_utilizations(&self, window: WindowId, band: Band) -> Vec<f64> {
        match self.execute(&QueryPlan::ServingUtilizations(window, band)) {
            QueryValue::Ratios(r) => r,
            _ => unreachable!("ServingUtilizations yields Ratios"),
        }
    }
    fn census_device_count(&self, window: WindowId) -> usize {
        match self.execute(&QueryPlan::CensusDeviceCount(window)) {
            QueryValue::Count(n) => n as usize,
            _ => unreachable!("CensusDeviceCount yields Count"),
        }
    }
    fn nearby_summary(&self, window: WindowId, band: Band) -> (u64, f64, u64) {
        match self.execute(&QueryPlan::NearbySummary(window, band)) {
            QueryValue::NearbySummary {
                total,
                mean_per_ap,
                hotspots,
            } => (total, mean_per_ap, hotspots),
            _ => unreachable!("NearbySummary yields NearbySummary"),
        }
    }
    fn nearby_per_channel(&self, window: WindowId, band: Band) -> Vec<(u16, u64)> {
        match self.execute(&QueryPlan::NearbyPerChannel(window, band)) {
            QueryValue::PerChannel(rows) => rows,
            _ => unreachable!("NearbyPerChannel yields PerChannel"),
        }
    }
    fn crashes(&self, window: WindowId) -> Option<CrashAggregator> {
        match self.execute(&QueryPlan::Crashes(window)) {
            QueryValue::Crashes(crashes) => crashes,
            _ => unreachable!("Crashes yields Crashes"),
        }
    }
    fn scan_observations(&self, window: WindowId, band: Band) -> Vec<ScanObservation> {
        match self.execute(&QueryPlan::ScanObservations(window, band)) {
            QueryValue::Scans(obs) => obs,
            _ => unreachable!("ScanObservations yields Scans"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardedStore;
    use airstat_classify::mac::Oui;
    use airstat_telemetry::report::{Report, ReportPayload, UsageRecord};

    const W: WindowId = WindowId(1501);

    fn usage_report(device: u64, seq: u64, mac_id: u64, up: u64) -> Report {
        Report {
            device,
            seq,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([0, 80, 194]), mac_id),
                app: Application::Netflix,
                up_bytes: up,
                down_bytes: 2 * up,
            }]),
        }
    }

    fn loaded_engine(shards: usize, threads: usize) -> QueryEngine {
        let mut store = ShardedStore::new(shards);
        let reports: Vec<Report> = (0..40).map(|d| usage_report(d, 0, d % 11, d + 1)).collect();
        store.ingest_batch(W, &reports);
        QueryEngine::new(store.seal(), threads)
    }

    #[test]
    fn results_are_shard_and_thread_invariant() {
        let baseline = loaded_engine(1, 1).usage_by_app(W);
        for (shards, threads) in [(4, 1), (4, 3), (7, 2)] {
            assert_eq!(
                loaded_engine(shards, threads).usage_by_app(W),
                baseline,
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn cache_hits_and_lru_evictions_are_counted() {
        let engine = loaded_engine(3, 1);
        let first = engine.execute(&QueryPlan::UsageByApp(W));
        let second = engine.execute(&QueryPlan::UsageByApp(W));
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!(stats.cached_results >= 1);
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let mut cache = ResultCache::new(2);
        cache.insert(0, QueryPlan::ClientCount(W), QueryValue::Count(1));
        cache.insert(0, QueryPlan::CensusDeviceCount(W), QueryValue::Count(2));
        // Touch the first entry so the second becomes the LRU victim.
        assert!(cache.get(0, &QueryPlan::ClientCount(W)).is_some());
        cache.insert(0, QueryPlan::UsageByApp(W), QueryValue::Count(3));
        assert!(cache.get(0, &QueryPlan::ClientCount(W)).is_some());
        assert!(cache.get(0, &QueryPlan::CensusDeviceCount(W)).is_none());
        assert_eq!(cache.counters().2, 1, "one eviction");
    }

    #[test]
    fn epoch_keys_isolate_stale_results() {
        let mut cache = ResultCache::new(8);
        cache.insert(1, QueryPlan::ClientCount(W), QueryValue::Count(10));
        assert!(cache.get(2, &QueryPlan::ClientCount(W)).is_none());
        assert!(cache.get(1, &QueryPlan::ClientCount(W)).is_some());
    }

    #[test]
    fn engine_matches_legacy_backend_on_identical_streams() {
        let reports: Vec<Report> = (0..60)
            .map(|i| usage_report(i % 13, i / 13, i % 7, i + 1))
            .collect();
        let mut backend = Backend::new();
        let mut store = ShardedStore::new(5);
        for r in &reports {
            backend.ingest(W, r);
        }
        store.ingest_batch(W, &reports);
        let engine = QueryEngine::new(store.seal(), 2);
        assert_eq!(
            FleetQuery::usage_by_app(&backend, W),
            engine.usage_by_app(W)
        );
        assert_eq!(FleetQuery::usage_by_os(&backend, W), engine.usage_by_os(W));
        assert_eq!(backend.duplicates_dropped(), {
            let mut probe = ShardedStore::new(5);
            probe.ingest_batch(W, &reports);
            probe.duplicates_dropped()
        });
    }
}
