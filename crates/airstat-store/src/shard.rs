//! One shard of the sharded store.
//!
//! A [`StoreShard`] owns the aggregates for the subset of devices routed
//! to it (reports hash-partition by `(window, device)`, so everything a
//! device files into one window lands in exactly one shard). Its tables
//! mirror the legacy `airstat_telemetry::backend::Backend` with two
//! deliberate differences:
//!
//! * every per-window table is a `BTreeMap`, so iterating a shard — and
//!   therefore merging shards — is canonical regardless of ingest order
//!   or shard count;
//! * duplicate suppression is the **set-based** [`SeqSet`] instead of the
//!   legacy highest-seq watermark, so dedup is ingest-order independent
//!   (the property tests permute report order freely). On the engine's
//!   transport streams the two disciplines accept exactly the same
//!   reports: per-device delivery is in order and duplicates are exact
//!   redeliveries, which the differential tests pin down.
//!
//! The `(window, device)` routing has a consequence the read side leans
//! on hard: device-keyed data is **shard-disjoint** (a device's rows for
//! one window live in exactly one shard), so cross-shard merges of
//! device-keyed columns are pure unions, and a shard whose seal-time
//! [`crate::columnar::WindowZoneMap`] shows no rows for a plan's filter
//! can be skipped without changing a single output byte.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use airstat_classify::apps::Application;
use airstat_classify::mac::MacAddress;
use airstat_rf::airtime::AirtimeLedger;
use airstat_rf::band::Band;
use airstat_telemetry::backend::{
    ClientIdentity, LinkKey, LinkObservation, ScanObservation, UsageTotals, WindowId,
};
use airstat_telemetry::crash::{CrashReport, RebootReason};
use airstat_telemetry::report::{Report, ReportPayload};

/// Order-independent per-`(window, device)` sequence-number dedup.
///
/// Accepts each sequence number at most once, in any arrival order. The
/// dense prefix is compressed into a watermark (`contiguous_below`): once
/// `0..k` have all been seen only the sparse out-of-order tail is stored,
/// so memory stays O(reorder window) for the in-order streams the
/// transport produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqSet {
    /// Every sequence number `< contiguous_below` has been seen.
    contiguous_below: u64,
    /// Seen sequence numbers `>= contiguous_below`.
    sparse: BTreeSet<u64>,
}

impl SeqSet {
    /// Records `seq`; returns `false` if it was already present.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.contiguous_below || !self.sparse.insert(seq) {
            return false;
        }
        while self.sparse.remove(&self.contiguous_below) {
            self.contiguous_below += 1;
        }
        true
    }

    /// Whether `seq` has been recorded.
    pub fn contains(&self, seq: u64) -> bool {
        seq < self.contiguous_below || self.sparse.contains(&seq)
    }

    /// The dense-prefix watermark and sparse tail, in segment-encoding
    /// order (docs/SEGMENT_FORMAT.md, dedup block).
    pub(crate) fn parts(&self) -> (u64, &BTreeSet<u64>) {
        (self.contiguous_below, &self.sparse)
    }

    /// Rebuilds a set from its persisted parts. Segment decode verifies
    /// every sparse member is `> contiguous_below` before calling this,
    /// so the compaction invariant (the watermark is never itself in the
    /// sparse tail) holds by construction.
    pub(crate) fn from_parts(contiguous_below: u64, sparse: BTreeSet<u64>) -> SeqSet {
        SeqSet {
            contiguous_below,
            sparse,
        }
    }
}

/// Provenance of a client-identity record, used to break write conflicts
/// deterministically.
///
/// The legacy backend applies `ClientInfo` records in stream order (last
/// write wins). A sharded store has no single stream, so the winner is
/// the record with the largest `(device, seq, slot)` instead — a total
/// order over records that is invariant under ingest-order and
/// shard-count permutations, and that coincides with stream order on the
/// engine's streams (each client's identity is filed by one device with
/// increasing sequence numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClientMeta {
    /// Reporting device id.
    pub device: u64,
    /// Report sequence number.
    pub seq: u64,
    /// Record index within the report's payload.
    pub slot: u32,
}

/// Per-device census rows: `(band, channel number, networks, hotspots)`.
pub type CensusRows = Vec<(Band, u16, u32, u32)>;

/// The keys one window dirtied since a seal (or persist) baseline: one
/// set per table, mirroring [`WindowTables`] key for key.
///
/// Marking is a deliberate **superset**: every key a report's payload
/// names is marked on accept, even when the write turned out to be a
/// no-op (a losing `ClientInfo` conflict, say). Re-emitting an
/// unchanged row into a delta is harmless under the newest-wins
/// resolution rule — the delta row equals the row it shadows — while a
/// missed key would corrupt the stack, so the cheap superset is the
/// safe one.
#[derive(Debug, Clone, Default)]
pub(crate) struct DirtyWindow {
    pub(crate) usage: BTreeSet<(MacAddress, Application)>,
    pub(crate) clients: BTreeSet<MacAddress>,
    pub(crate) links: BTreeSet<LinkKey>,
    pub(crate) airtime: BTreeSet<(u64, Band)>,
    pub(crate) neighbors: BTreeSet<u64>,
    pub(crate) scans: BTreeSet<u64>,
    pub(crate) crashes: BTreeSet<u64>,
}

impl DirtyWindow {
    pub(crate) fn is_empty(&self) -> bool {
        self.usage.is_empty()
            && self.clients.is_empty()
            && self.links.is_empty()
            && self.airtime.is_empty()
            && self.neighbors.is_empty()
            && self.scans.is_empty()
            && self.crashes.is_empty()
    }

    pub(crate) fn merge_from(&mut self, other: &DirtyWindow) {
        self.usage.extend(other.usage.iter().copied());
        self.clients.extend(other.clients.iter().copied());
        self.links.extend(other.links.iter().copied());
        self.airtime.extend(other.airtime.iter().copied());
        self.neighbors.extend(other.neighbors.iter().copied());
        self.scans.extend(other.scans.iter().copied());
        self.crashes.extend(other.crashes.iter().copied());
    }
}

/// Everything one shard dirtied since a baseline: per-window key sets
/// plus the shard-level dedup-ledger entries and counters.
///
/// [`crate::ShardedStore`] keeps one of these per shard for the
/// seal baseline (rows since the last delta segment was cut) and one
/// for the persist baseline (rows since the last on-disk delta).
#[derive(Debug, Clone, Default)]
pub(crate) struct DirtyShard {
    pub(crate) windows: BTreeMap<WindowId, DirtyWindow>,
    /// `(window, device)` dedup-ledger entries whose [`SeqSet`] changed.
    pub(crate) dedup: BTreeSet<(WindowId, u64)>,
    /// Whether either acceptance counter moved (set on every ingest,
    /// including rejected duplicates).
    pub(crate) counters_touched: bool,
}

impl DirtyShard {
    pub(crate) fn is_empty(&self) -> bool {
        self.windows.values().all(DirtyWindow::is_empty)
            && self.dedup.is_empty()
            && !self.counters_touched
    }

    pub(crate) fn clear(&mut self) {
        *self = DirtyShard::default();
    }

    pub(crate) fn merge_from(&mut self, other: &DirtyShard) {
        for (&window, dirty) in &other.windows {
            self.windows.entry(window).or_default().merge_from(dirty);
        }
        self.dedup.extend(other.dedup.iter().copied());
        self.counters_touched |= other.counters_touched;
    }
}

/// The aggregates one shard maintains for one window.
#[derive(Debug, Clone, Default)]
pub struct WindowTables {
    /// Usage totals keyed by `(client MAC, application)`.
    pub usage: BTreeMap<(MacAddress, Application), UsageTotals>,
    /// Client identities with the provenance of the winning write.
    pub clients: BTreeMap<MacAddress, (ClientMeta, ClientIdentity)>,
    /// Probe-link observation series in arrival order per link.
    pub links: BTreeMap<LinkKey, Vec<LinkObservation>>,
    /// Serving-radio airtime ledgers keyed by `(device, band)`.
    pub airtime: BTreeMap<(u64, Band), AirtimeLedger>,
    /// Latest neighbour census per device, with its provenance (a fresh
    /// census replaces the previous one; the winner is the largest
    /// `ClientMeta`, i.e. the highest sequence number from the device).
    pub neighbors: BTreeMap<u64, (ClientMeta, CensusRows)>,
    /// Channel-scan observations per device, ordered by `(seq, slot)` so
    /// concatenation is ingest-order independent.
    pub scans: BTreeMap<u64, BTreeMap<(u64, u32), ScanObservation>>,
    /// Crash reports per device, ordered by `(seq, slot)`.
    pub crashes: BTreeMap<u64, BTreeMap<(u64, u32), CrashReport>>,
}

impl WindowTables {
    /// Clones the rows named by `dirty` out of the live tables — the
    /// current (newest) value of every dirtied key. Keys are never
    /// removed from a shard, so every dirty key resolves.
    pub(crate) fn filtered(&self, dirty: &DirtyWindow) -> WindowTables {
        WindowTables {
            usage: dirty
                .usage
                .iter()
                .filter_map(|k| self.usage.get(k).map(|v| (*k, *v)))
                .collect(),
            clients: dirty
                .clients
                .iter()
                .filter_map(|k| self.clients.get(k).map(|v| (*k, *v)))
                .collect(),
            links: dirty
                .links
                .iter()
                .filter_map(|k| self.links.get(k).map(|v| (*k, v.clone())))
                .collect(),
            airtime: dirty
                .airtime
                .iter()
                .filter_map(|k| self.airtime.get(k).map(|v| (*k, *v)))
                .collect(),
            neighbors: dirty
                .neighbors
                .iter()
                .filter_map(|k| self.neighbors.get(k).map(|v| (*k, v.clone())))
                .collect(),
            scans: dirty
                .scans
                .iter()
                .filter_map(|k| self.scans.get(k).map(|v| (*k, v.clone())))
                .collect(),
            crashes: dirty
                .crashes
                .iter()
                .filter_map(|k| self.crashes.get(k).map(|v| (*k, v.clone())))
                .collect(),
        }
    }
}

/// One shard: an independent store with its own dedup state.
#[derive(Debug, Clone, Default)]
pub struct StoreShard {
    // airstat::allow(no-hashmap-iter): per-(window, device) dedup state,
    // looked up by exact key on the ingest hot path and never iterated
    seen: HashMap<(WindowId, u64), SeqSet>,
    duplicates_dropped: u64,
    reports_ingested: u64,
    windows: BTreeMap<WindowId, WindowTables>,
}

impl StoreShard {
    /// Reports accepted by this shard (excluding duplicates).
    pub fn reports_ingested(&self) -> u64 {
        self.reports_ingested
    }

    /// Duplicate reports this shard rejected.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// The aggregates for `window`, if the shard holds any.
    pub fn window(&self, window: WindowId) -> Option<&WindowTables> {
        self.windows.get(&window)
    }

    /// All windows this shard holds, in ascending window order — the
    /// columnar projection walks this at seal time.
    pub fn windows(&self) -> impl Iterator<Item = (WindowId, &WindowTables)> {
        self.windows
            .iter()
            .map(|(&window, tables)| (window, tables))
    }

    /// The dedup ledger in canonical `(window, device)` order, for
    /// segment encoding. The backing map is hash-ordered (keyed access
    /// on the ingest hot path), so this sorts a snapshot of the entries
    /// to make the persisted bytes independent of the map's seed.
    pub(crate) fn dedup_entries(&self) -> Vec<((WindowId, u64), &SeqSet)> {
        let mut entries: Vec<_> = self.seen.iter().map(|(&key, set)| (key, set)).collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        entries
    }

    /// Rebuilds a shard from its persisted parts (segment decode). The
    /// caller is responsible for internal consistency: the counters and
    /// dedup ledger must describe the same ingest history that produced
    /// `windows`, which holds whenever the parts come from one decoded
    /// segment (the CRC guards reject mixed or tampered inputs).
    pub(crate) fn from_parts(
        // airstat::allow(no-hashmap-iter): rebuilt dedup ledger; keyed
        // access only after reconstruction, never iterated for output
        seen: HashMap<(WindowId, u64), SeqSet>,
        duplicates_dropped: u64,
        reports_ingested: u64,
        windows: BTreeMap<WindowId, WindowTables>,
    ) -> StoreShard {
        StoreShard {
            // airstat::allow(unordered-collection-escape): constructor
            // hand-off of the keyed-access dedup ledger; every site
            // that drains it sorts (or never iterates it) downstream.
            seen,
            duplicates_dropped,
            reports_ingested,
            windows,
        }
    }

    /// Ingests one report; returns `false` for duplicates.
    ///
    /// The aggregation semantics match `Backend::ingest` record for
    /// record; only the dedup discipline (see [`SeqSet`]) and the
    /// conflict rules for `ClientInfo` / `Neighbors` overwrites (see
    /// [`ClientMeta`]) are generalized to be ingest-order independent.
    pub fn ingest(&mut self, window: WindowId, report: &Report) -> bool {
        if !self
            .seen
            .entry((window, report.device))
            .or_default()
            .insert(report.seq)
        {
            self.duplicates_dropped += 1;
            return false;
        }
        self.reports_ingested += 1;
        let tables = self.windows.entry(window).or_default();
        match &report.payload {
            ReportPayload::Usage(records) => {
                for r in records {
                    let slot = tables.usage.entry((r.mac, r.app)).or_default();
                    slot.up_bytes = slot.up_bytes.saturating_add(r.up_bytes);
                    slot.down_bytes = slot.down_bytes.saturating_add(r.down_bytes);
                }
            }
            ReportPayload::ClientInfo(records) => {
                for (slot, r) in records.iter().enumerate() {
                    let meta = ClientMeta {
                        device: report.device,
                        seq: report.seq,
                        slot: slot as u32,
                    };
                    let identity = ClientIdentity {
                        os: r.os,
                        caps: r.caps,
                        band: r.band,
                        rssi_dbm: r.rssi_dbm,
                    };
                    match tables.clients.get_mut(&r.mac) {
                        Some(entry) if entry.0 > meta => {}
                        Some(entry) => *entry = (meta, identity),
                        None => {
                            tables.clients.insert(r.mac, (meta, identity));
                        }
                    }
                }
            }
            ReportPayload::Links(records) => {
                for r in records {
                    if let Some(ratio) = r.delivery_ratio() {
                        tables
                            .links
                            .entry(LinkKey {
                                rx_device: report.device,
                                tx_device: r.peer_device,
                                band: r.band,
                            })
                            .or_default()
                            .push(LinkObservation {
                                timestamp_s: report.timestamp_s,
                                ratio,
                            });
                    }
                }
            }
            ReportPayload::Airtime(records) => {
                for r in records {
                    let ledger = tables
                        .airtime
                        .entry((report.device, r.channel.band))
                        .or_default();
                    ledger.account(r.elapsed_us, r.busy_us, r.wifi_us);
                }
            }
            ReportPayload::Neighbors(records) => {
                let meta = ClientMeta {
                    device: report.device,
                    seq: report.seq,
                    slot: 0,
                };
                let rows: CensusRows = records
                    .iter()
                    .map(|r| (r.channel.band, r.channel.number, r.networks, r.hotspots))
                    .collect();
                match tables.neighbors.get_mut(&report.device) {
                    Some(entry) if entry.0 > meta => {}
                    Some(entry) => *entry = (meta, rows),
                    None => {
                        tables.neighbors.insert(report.device, (meta, rows));
                    }
                }
            }
            ReportPayload::ChannelScan(records) => {
                let per_device = tables.scans.entry(report.device).or_default();
                for (slot, &record) in records.iter().enumerate() {
                    per_device.insert(
                        (report.seq, slot as u32),
                        ScanObservation {
                            timestamp_s: report.timestamp_s,
                            record,
                        },
                    );
                }
            }
            ReportPayload::Crash(records) => {
                let per_device = tables.crashes.entry(report.device).or_default();
                for (slot, r) in records.iter().enumerate() {
                    let reason = match r.reason {
                        0 => RebootReason::OutOfMemory,
                        1 => RebootReason::Watchdog,
                        2 => RebootReason::Fault,
                        3 => RebootReason::Requested,
                        _ => RebootReason::PowerLoss,
                    };
                    per_device.insert(
                        (report.seq, slot as u32),
                        CrashReport {
                            device: report.device,
                            firmware: r.firmware.clone(),
                            reason,
                            program_counter: r.program_counter,
                            uptime_s: r.uptime_s,
                            free_memory_bytes: r.free_memory_bytes,
                        },
                    );
                }
            }
        }
        true
    }

    /// [`StoreShard::ingest`] plus dirty-key tracking: on accept, every
    /// key the payload names is recorded in `dirty` (see [`DirtyWindow`]
    /// for why the superset is the safe marking policy). Both the accept
    /// and the duplicate path move an acceptance counter, so
    /// `counters_touched` is set unconditionally.
    pub(crate) fn ingest_tracked(
        &mut self,
        window: WindowId,
        report: &Report,
        dirty: &mut DirtyShard,
    ) -> bool {
        let accepted = self.ingest(window, report);
        dirty.counters_touched = true;
        if !accepted {
            return false;
        }
        dirty.dedup.insert((window, report.device));
        let w = dirty.windows.entry(window).or_default();
        match &report.payload {
            ReportPayload::Usage(records) => {
                for r in records {
                    w.usage.insert((r.mac, r.app));
                }
            }
            ReportPayload::ClientInfo(records) => {
                for r in records {
                    w.clients.insert(r.mac);
                }
            }
            ReportPayload::Links(records) => {
                for r in records {
                    if r.delivery_ratio().is_some() {
                        w.links.insert(LinkKey {
                            rx_device: report.device,
                            tx_device: r.peer_device,
                            band: r.band,
                        });
                    }
                }
            }
            ReportPayload::Airtime(records) => {
                for r in records {
                    w.airtime.insert((report.device, r.channel.band));
                }
            }
            ReportPayload::Neighbors(_) => {
                w.neighbors.insert(report.device);
            }
            ReportPayload::ChannelScan(_) => {
                w.scans.insert(report.device);
            }
            ReportPayload::Crash(_) => {
                w.crashes.insert(report.device);
            }
        }
        true
    }

    /// A self-contained delta shard: the current rows of every key in
    /// `dirty`, the touched dedup-ledger entries, and the full
    /// acceptance counters (counters are totals, so the newest delta's
    /// values win wholesale on reload).
    ///
    /// Encoding this through the ordinary segment writer yields an
    /// on-disk **delta segment**; [`StoreShard::absorb`] is its reload
    /// inverse.
    pub(crate) fn delta_snapshot(&self, dirty: &DirtyShard) -> StoreShard {
        let mut seen = HashMap::with_capacity(dirty.dedup.len());
        for &(window, device) in &dirty.dedup {
            if let Some(set) = self.seen.get(&(window, device)) {
                seen.insert((window, device), set.clone());
            }
        }
        let windows = dirty
            .windows
            .iter()
            .filter(|(_, dw)| !dw.is_empty())
            .filter_map(|(&window, dw)| {
                self.windows
                    .get(&window)
                    .map(|tables| (window, tables.filtered(dw)))
            })
            .collect();
        StoreShard {
            // airstat::allow(unordered-collection-escape): delta
            // hand-off of the keyed-access dedup ledger; the segment
            // writer sorts its entries before a single byte is emitted.
            seen,
            duplicates_dropped: self.duplicates_dropped,
            reports_ingested: self.reports_ingested,
            windows,
        }
    }

    /// Folds a newer delta shard into this one, newest-wins per key:
    /// each delta row carries the full value it had at persist time, so
    /// plain replacement reconstructs the original state when deltas are
    /// applied oldest to newest.
    pub(crate) fn absorb(&mut self, delta: StoreShard) {
        for (key, set) in delta.seen {
            self.seen.insert(key, set);
        }
        self.duplicates_dropped = delta.duplicates_dropped;
        self.reports_ingested = delta.reports_ingested;
        for (window, tables) in delta.windows {
            let into = self.windows.entry(window).or_default();
            into.usage.extend(tables.usage);
            into.clients.extend(tables.clients);
            into.links.extend(tables.links);
            into.airtime.extend(tables.airtime);
            into.neighbors.extend(tables.neighbors);
            into.scans.extend(tables.scans);
            into.crashes.extend(tables.crashes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::mac::Oui;
    use airstat_telemetry::report::UsageRecord;

    #[test]
    fn seq_set_accepts_each_seq_once_in_any_order() {
        let mut set = SeqSet::default();
        for seq in [3u64, 0, 1, 2, 3, 0, 7, 5, 7] {
            let fresh = !set.contains(seq);
            assert_eq!(set.insert(seq), fresh, "seq {seq}");
        }
        assert_eq!(set.contiguous_below, 4, "dense prefix compacted");
        assert!(set.contains(5) && set.contains(7) && !set.contains(6));
    }

    #[test]
    fn seq_set_compacts_to_watermark_for_in_order_streams() {
        let mut set = SeqSet::default();
        for seq in 0..1000u64 {
            assert!(set.insert(seq));
        }
        assert_eq!(set.contiguous_below, 1000);
        assert!(set.sparse.is_empty(), "no sparse state for ordered input");
    }

    #[test]
    fn duplicate_counting_matches_rejections() {
        let mut shard = StoreShard::default();
        let report = Report {
            device: 9,
            seq: 0,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([0, 1, 2]), 7),
                app: Application::Netflix,
                up_bytes: 1,
                down_bytes: 2,
            }]),
        };
        let w = WindowId(1501);
        assert!(shard.ingest(w, &report));
        assert!(!shard.ingest(w, &report));
        assert_eq!(shard.reports_ingested(), 1);
        assert_eq!(shard.duplicates_dropped(), 1);
        let totals = shard.window(w).unwrap().usage.values().next().unwrap();
        assert_eq!((totals.up_bytes, totals.down_bytes), (1, 2));
    }

    #[test]
    fn client_identity_conflicts_resolve_by_meta_not_arrival() {
        let mac = MacAddress::from_id(Oui([0, 1, 2]), 1);
        let record = |rssi: f64| airstat_telemetry::report::ClientInfoRecord {
            mac,
            os: airstat_classify::device::OsFamily::Unknown,
            caps: airstat_rf::phy::Capabilities::new(
                airstat_rf::phy::Generation::N,
                false,
                false,
                1,
            ),
            band: Band::Ghz2_4,
            rssi_dbm: rssi,
        };
        let early = Report {
            device: 1,
            seq: 0,
            timestamp_s: 0,
            payload: ReportPayload::ClientInfo(vec![record(-70.0)]),
        };
        let late = Report {
            device: 1,
            seq: 5,
            timestamp_s: 0,
            payload: ReportPayload::ClientInfo(vec![record(-40.0)]),
        };
        let w = WindowId(1501);
        for order in [[&early, &late], [&late, &early]] {
            let mut shard = StoreShard::default();
            for report in order {
                shard.ingest(w, report);
            }
            let (meta, identity) = &shard.window(w).unwrap().clients[&mac];
            assert_eq!(meta.seq, 5, "highest provenance wins either way");
            assert_eq!(identity.rssi_dbm, -40.0);
        }
    }
}
