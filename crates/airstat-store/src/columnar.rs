//! Columnar (struct-of-arrays) projection of sealed shards.
//!
//! The map-backed [`crate::shard::WindowTables`] are the *write*
//! layout: `BTreeMap`s absorb out-of-order ingest with canonical
//! iteration. They are a poor *read* layout — a cold query walks
//! pointer-chased tree nodes and the legacy engine additionally cloned
//! whole tables per shard before merging. [`ColumnarShard`] is the read
//! layout built once per sealed epoch: every per-window table is packed
//! into sorted key columns plus struct-of-arrays value columns, so a
//! scan kernel touches contiguous memory and a cross-shard merge is a
//! k-way walk over pre-sorted runs instead of map clones.
//!
//! Layout contract (what makes the columnar backend byte-identical to
//! the map-backed one):
//!
//! * key columns are sorted ascending — they are produced by iterating
//!   the shard's `BTreeMap`s, so the per-shard run order *is* the
//!   canonical merge order the legacy engine flattens into;
//! * variadic tables (link series, census rows, scans, crashes) use a
//!   CSR encoding: one offsets column of `len + 1` positions into flat
//!   value columns, preserving the per-key order the maps held
//!   (arrival order for link series, `(seq, slot)` order for scans and
//!   crashes);
//! * `merge_runs` combines equal keys in ascending shard order —
//!   exactly the order in which the legacy engine folded per-shard
//!   partials into its merge `BTreeMap` — so saturating sums and
//!   last-writer conflict rules see operands in the same sequence.

use std::collections::BTreeMap;

use airstat_classify::apps::Application;
use airstat_classify::device::OsFamily;
use airstat_classify::mac::MacAddress;
use airstat_rf::band::{Band, Channel};
use airstat_rf::phy::Capabilities;
use airstat_telemetry::backend::{
    ClientIdentity, LinkKey, LinkObservation, ScanObservation, UsageTotals, WindowId,
};
use airstat_telemetry::crash::CrashReport;

use crate::shard::{ClientMeta, DirtyShard, StoreShard, WindowTables};

/// Dense accumulator lanes for [`Application`] (indexed by
/// discriminant).
pub(crate) const APP_LANES: usize = Application::ALL.len();

/// Dense accumulator lanes for [`OsFamily`] (indexed by discriminant).
pub(crate) const OS_LANES: usize = OsFamily::ALL.len();

/// Dense lanes for [`Band`] (indexed by discriminant).
pub(crate) const BAND_LANES: usize = Band::ALL.len();

// The zone map packs application presence into one u64 bitmask.
const _: () = assert!(Application::ALL.len() <= 64);

/// One shard's columnar projection: a packed, read-optimized copy of
/// every window the shard holds, built by [`ColumnarShard::build`] at
/// seal time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarShard {
    windows: BTreeMap<WindowId, ColumnarWindow>,
}

impl ColumnarShard {
    /// Projects `shard`'s window tables into columnar form.
    pub fn build(shard: &StoreShard) -> Self {
        ColumnarShard {
            windows: shard
                .windows()
                .map(|(window, tables)| (window, ColumnarWindow::build(tables)))
                .collect(),
        }
    }

    /// The columnar tables for `window`, if the shard holds any.
    pub fn window(&self, window: WindowId) -> Option<&ColumnarWindow> {
        self.windows.get(&window)
    }

    /// Windows this shard holds, ascending.
    pub fn window_ids(&self) -> impl Iterator<Item = WindowId> + '_ {
        self.windows.keys().copied()
    }

    /// Projects only the rows named by `dirty` — the **delta segment**
    /// an incremental seal cuts. Each projected row carries the key's
    /// *current* value from the live tables, so within a shard's
    /// segment stack the newest segment holding a key always holds the
    /// value a monolithic rebuild would have produced — the invariant
    /// every newest-wins fold below relies on.
    pub(crate) fn build_delta(shard: &StoreShard, dirty: &DirtyShard) -> Self {
        ColumnarShard {
            windows: dirty
                .windows
                .iter()
                .filter(|(_, dw)| !dw.is_empty())
                .filter_map(|(&window, dw)| {
                    shard
                        .window(window)
                        .map(|tables| (window, ColumnarWindow::build(&tables.filtered(dw))))
                })
                .collect(),
        }
    }

    /// The key sets this segment holds, as a [`DirtyShard`] — the unit
    /// compaction works in: merging adjacent segments is exactly
    /// [`ColumnarShard::build_delta`] over the union of their key sets
    /// (current values shadow both inputs correctly because any key
    /// written after these segments sealed lives in a newer segment).
    pub(crate) fn key_sets(&self) -> DirtyShard {
        let mut dirty = DirtyShard::default();
        for (&window, w) in &self.windows {
            let dw = dirty.windows.entry(window).or_default();
            for i in 0..w.usage_mac.len() {
                dw.usage.insert((w.usage_mac[i], w.usage_app[i]));
            }
            dw.clients.extend(w.client_mac.iter().copied());
            dw.links.extend(w.link_keys.iter().copied());
            dw.airtime.extend(w.airtime_key.iter().copied());
            dw.neighbors.extend(w.census_device.iter().copied());
            dw.scans.extend(w.scan_device.iter().copied());
            dw.crashes.extend(w.crash_device.iter().copied());
        }
        dirty
    }

    /// Total keyed rows across all windows and tables — the size the
    /// deterministic compaction policy compares segments by.
    pub(crate) fn row_count(&self) -> u64 {
        self.windows
            .values()
            .map(|w| {
                (w.usage_mac.len()
                    + w.client_mac.len()
                    + w.link_keys.len()
                    + w.airtime_key.len()
                    + w.census_device.len()
                    + w.scan_device.len()
                    + w.crash_device.len()) as u64
            })
            .sum()
    }
}

/// The struct-of-arrays tables for one `(shard, window)` pair.
///
/// Every `*_mac` / `*_key` / `*_device` column is sorted ascending;
/// parallel value columns share its indices. CSR tables pair a
/// `*_offsets` column (`len + 1` entries, starting at 0) with flat
/// per-observation columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarWindow {
    // usage: one row per (client MAC, application) cell.
    pub(crate) usage_mac: Vec<MacAddress>,
    pub(crate) usage_app: Vec<Application>,
    pub(crate) usage_up: Vec<u64>,
    pub(crate) usage_down: Vec<u64>,
    // clients: one row per MAC, identity split into SoA columns with the
    // winning write's provenance (needed for cross-shard conflicts).
    pub(crate) client_mac: Vec<MacAddress>,
    pub(crate) client_meta: Vec<ClientMeta>,
    pub(crate) client_os: Vec<OsFamily>,
    pub(crate) client_caps: Vec<Capabilities>,
    pub(crate) client_band: Vec<Band>,
    pub(crate) client_rssi: Vec<f64>,
    // links: CSR — observation series per link key, arrival order.
    pub(crate) link_keys: Vec<LinkKey>,
    pub(crate) link_offsets: Vec<usize>,
    pub(crate) link_ts: Vec<u64>,
    pub(crate) link_ratio: Vec<f64>,
    // airtime: one row per (device, band) serving radio.
    pub(crate) airtime_key: Vec<(u64, Band)>,
    pub(crate) airtime_elapsed: Vec<u64>,
    pub(crate) airtime_busy: Vec<u64>,
    // census: CSR — latest neighbour rows, grouped by device. The scan
    // kernels only need whole-window sums, but the newest-wins segment
    // merge must replace a device's census wholesale, so offsets are
    // kept alongside the flat row columns.
    pub(crate) census_device: Vec<u64>,
    pub(crate) census_offsets: Vec<usize>,
    pub(crate) census_band: Vec<Band>,
    pub(crate) census_channel: Vec<u16>,
    pub(crate) census_networks: Vec<u32>,
    pub(crate) census_hotspots: Vec<u32>,
    // scans: CSR — channel-scan observations per device, (seq, slot)
    // order.
    pub(crate) scan_device: Vec<u64>,
    pub(crate) scan_offsets: Vec<usize>,
    pub(crate) scan_ts: Vec<u64>,
    pub(crate) scan_channel: Vec<Channel>,
    pub(crate) scan_util_ppm: Vec<u32>,
    pub(crate) scan_decodable_ppm: Vec<u32>,
    pub(crate) scan_networks: Vec<u32>,
    // crashes: CSR — crash reports per device, (seq, slot) order. The
    // rows stay whole (they carry a firmware string); only the device
    // key column is packed.
    pub(crate) crash_device: Vec<u64>,
    pub(crate) crash_offsets: Vec<usize>,
    pub(crate) crash_rows: Vec<CrashReport>,
    // zone map: per-column summaries for shard pruning, built last.
    pub(crate) zone: WindowZoneMap,
}

/// Per-window zone map: tiny per-column summaries — row counts,
/// presence bitmasks, and key/time min–max ranges — computed once at
/// `seal()` time alongside the columns they describe.
///
/// The query engine consults these to prove "this shard cannot
/// contribute to this plan" *before* dispatching a scan, so a pruned
/// shard costs one struct read instead of a column walk. Pruning is
/// byte-transparent: a shard is skipped only when its kernel
/// contribution would be the identity (zero matching rows), so the
/// merged result is bit-for-bit the unpruned one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowZoneMap {
    /// Usage cells (`(mac, app)` rows) in the window.
    pub usage_rows: usize,
    /// Bit `app as usize` is set iff some usage cell references it.
    pub apps_present: u64,
    /// Client identity rows.
    pub client_rows: usize,
    /// Link keys per band, indexed by `Band` discriminant.
    pub link_keys_per_band: [usize; BAND_LANES],
    /// Smallest and largest link key, if any links exist.
    pub link_key_range: Option<(LinkKey, LinkKey)>,
    /// Smallest and largest link observation timestamp, if any.
    pub link_ts_range: Option<(u64, u64)>,
    /// Airtime ledger rows per band.
    pub airtime_rows_per_band: [usize; BAND_LANES],
    /// Devices that filed a neighbour census.
    pub census_devices: usize,
    /// Census rows per band.
    pub census_rows_per_band: [usize; BAND_LANES],
    /// Channel-scan observations per band.
    pub scan_obs_per_band: [usize; BAND_LANES],
    /// Smallest and largest scan timestamp, if any.
    pub scan_ts_range: Option<(u64, u64)>,
    /// Devices with crash reports.
    pub crash_devices: usize,
}

impl WindowZoneMap {
    /// Summarizes a freshly packed window in one pass per column.
    fn build(w: &ColumnarWindow) -> Self {
        let mut z = WindowZoneMap {
            usage_rows: w.usage_mac.len(),
            client_rows: w.client_mac.len(),
            census_devices: w.census_device.len(),
            crash_devices: w.crash_device.len(),
            ..WindowZoneMap::default()
        };
        for &app in &w.usage_app {
            z.apps_present |= 1u64 << (app as usize);
        }
        for key in &w.link_keys {
            z.link_keys_per_band[key.band as usize] += 1;
        }
        if let (Some(&lo), Some(&hi)) = (w.link_keys.first(), w.link_keys.last()) {
            z.link_key_range = Some((lo, hi));
        }
        z.link_ts_range = min_max(&w.link_ts);
        for &(_, band) in &w.airtime_key {
            z.airtime_rows_per_band[band as usize] += 1;
        }
        for &band in &w.census_band {
            z.census_rows_per_band[band as usize] += 1;
        }
        for ch in &w.scan_channel {
            z.scan_obs_per_band[ch.band as usize] += 1;
        }
        z.scan_ts_range = min_max(&w.scan_ts);
        z
    }
}

/// `(min, max)` of a column, `None` when empty.
fn min_max(xs: &[u64]) -> Option<(u64, u64)> {
    let (mut lo, mut hi) = (*xs.first()?, *xs.first()?);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

impl ColumnarWindow {
    fn build(t: &WindowTables) -> Self {
        let mut w = ColumnarWindow::default();

        w.usage_mac.reserve(t.usage.len());
        w.usage_app.reserve(t.usage.len());
        w.usage_up.reserve(t.usage.len());
        w.usage_down.reserve(t.usage.len());
        for (&(mac, app), totals) in &t.usage {
            w.usage_mac.push(mac);
            w.usage_app.push(app);
            w.usage_up.push(totals.up_bytes);
            w.usage_down.push(totals.down_bytes);
        }

        w.client_mac.reserve(t.clients.len());
        for (&mac, &(meta, identity)) in &t.clients {
            w.client_mac.push(mac);
            w.client_meta.push(meta);
            w.client_os.push(identity.os);
            w.client_caps.push(identity.caps);
            w.client_band.push(identity.band);
            w.client_rssi.push(identity.rssi_dbm);
        }

        w.link_offsets.push(0);
        for (&key, series) in &t.links {
            w.link_keys.push(key);
            for obs in series {
                w.link_ts.push(obs.timestamp_s);
                w.link_ratio.push(obs.ratio);
            }
            w.link_offsets.push(w.link_ts.len());
        }

        for (&key, ledger) in &t.airtime {
            w.airtime_key.push(key);
            w.airtime_elapsed.push(ledger.elapsed_us());
            w.airtime_busy.push(ledger.busy_us());
        }

        w.census_offsets.push(0);
        for (&device, (_, rows)) in &t.neighbors {
            w.census_device.push(device);
            for &(band, number, networks, hotspots) in rows {
                w.census_band.push(band);
                w.census_channel.push(number);
                w.census_networks.push(networks);
                w.census_hotspots.push(hotspots);
            }
            w.census_offsets.push(w.census_band.len());
        }

        w.scan_offsets.push(0);
        for (&device, obs) in &t.scans {
            w.scan_device.push(device);
            for o in obs.values() {
                w.scan_ts.push(o.timestamp_s);
                w.scan_channel.push(o.record.channel);
                w.scan_util_ppm.push(o.record.utilization_ppm);
                w.scan_decodable_ppm.push(o.record.decodable_ppm);
                w.scan_networks.push(o.record.networks);
            }
            w.scan_offsets.push(w.scan_ts.len());
        }

        w.crash_offsets.push(0);
        for (&device, reports) in &t.crashes {
            w.crash_device.push(device);
            w.crash_rows.extend(reports.values().cloned());
            w.crash_offsets.push(w.crash_rows.len());
        }

        w.zone = WindowZoneMap::build(&w);
        w
    }

    /// The zone map summarizing this window's columns.
    pub fn zone(&self) -> &WindowZoneMap {
        &self.zone
    }

    /// Usage cells `((mac, app), totals)` in key order.
    pub(crate) fn usage_cells(
        &self,
    ) -> impl Iterator<Item = ((MacAddress, Application), UsageTotals)> + '_ {
        (0..self.usage_mac.len()).map(|i| {
            (
                (self.usage_mac[i], self.usage_app[i]),
                UsageTotals {
                    up_bytes: self.usage_up[i],
                    down_bytes: self.usage_down[i],
                },
            )
        })
    }

    /// Client rows `(mac, (meta, identity))` in MAC order.
    pub(crate) fn client_rows(
        &self,
    ) -> impl Iterator<Item = (MacAddress, (ClientMeta, ClientIdentity))> + '_ {
        (0..self.client_mac.len()).map(|i| {
            (
                self.client_mac[i],
                (
                    self.client_meta[i],
                    ClientIdentity {
                        os: self.client_os[i],
                        caps: self.client_caps[i],
                        band: self.client_band[i],
                        rssi_dbm: self.client_rssi[i],
                    },
                ),
            )
        })
    }

    /// The observation columns for the `i`-th link key, arrival order.
    pub(crate) fn link_series_at(&self, i: usize) -> (&[u64], &[f64]) {
        let (lo, hi) = (self.link_offsets[i], self.link_offsets[i + 1]);
        (&self.link_ts[lo..hi], &self.link_ratio[lo..hi])
    }

    /// The scan observation range for the `i`-th device.
    pub(crate) fn scan_rows_at(&self, i: usize) -> std::ops::Range<usize> {
        self.scan_offsets[i]..self.scan_offsets[i + 1]
    }

    /// Reconstructs the `j`-th scan observation from its columns.
    pub(crate) fn scan_observation(&self, j: usize) -> ScanObservation {
        ScanObservation {
            timestamp_s: self.scan_ts[j],
            record: airstat_telemetry::report::ChannelScanRecord {
                channel: self.scan_channel[j],
                utilization_ppm: self.scan_util_ppm[j],
                decodable_ppm: self.scan_decodable_ppm[j],
                networks: self.scan_networks[j],
            },
        }
    }

    /// The crash-report rows for the `i`-th device, `(seq, slot)` order.
    pub(crate) fn crash_rows_at(&self, i: usize) -> &[CrashReport] {
        &self.crash_rows[self.crash_offsets[i]..self.crash_offsets[i + 1]]
    }

    /// The census row range for the `i`-th device.
    pub(crate) fn census_rows_at(&self, i: usize) -> std::ops::Range<usize> {
        self.census_offsets[i]..self.census_offsets[i + 1]
    }

    /// Reconstructs one link observation.
    pub(crate) fn link_observation(ts: &[u64], ratio: &[f64], j: usize) -> LinkObservation {
        LinkObservation {
            timestamp_s: ts[j],
            ratio: ratio[j],
        }
    }

    /// Vectorized pass 1 for the usage plans: collapses the sorted
    /// `(mac, app)` cell rows into one `(mac, totals)` row per MAC — a
    /// linear group-by over the contiguous key column.
    ///
    /// Saturating u64 addition is associative and commutative (it
    /// computes `min(Σ, u64::MAX)`), so pre-aggregating a shard's cells
    /// here and merging per-MAC partials across shards later yields the
    /// same bytes as merging at cell level first — the cross-shard
    /// merge just shrinks by the apps-per-MAC factor.
    pub(crate) fn usage_totals_by_mac(&self) -> (Vec<MacAddress>, Vec<UsageTotals>) {
        let mut macs = Vec::new();
        let mut totals: Vec<UsageTotals> = Vec::new();
        for i in 0..self.usage_mac.len() {
            let mac = self.usage_mac[i];
            if macs.last() != Some(&mac) {
                macs.push(mac);
                totals.push(UsageTotals::default());
            }
            let slot = totals
                .last_mut()
                .expect("invariant: pushed alongside macs above");
            slot.up_bytes = slot.up_bytes.saturating_add(self.usage_up[i]);
            slot.down_bytes = slot.down_bytes.saturating_add(self.usage_down[i]);
        }
        (macs, totals)
    }

    /// Vectorized per-app rollup: adds this window's usage cells into
    /// dense accumulator `lanes` indexed by `Application` discriminant.
    ///
    /// Byte-identical to the cell-level merge for the same reason as
    /// [`ColumnarWindow::usage_totals_by_mac`]: saturating adds form a
    /// commutative monoid, so per-shard-then-global association matches
    /// global cell-by-cell association bit for bit.
    pub(crate) fn add_usage_by_app(&self, lanes: &mut [UsageTotals; APP_LANES]) {
        for i in 0..self.usage_app.len() {
            let slot = &mut lanes[self.usage_app[i] as usize];
            slot.up_bytes = slot.up_bytes.saturating_add(self.usage_up[i]);
            slot.down_bytes = slot.down_bytes.saturating_add(self.usage_down[i]);
        }
    }
}

/// Pass 1 of the two-pass vectorized kernels: a branch-free selection
/// vector over a flat column.
///
/// The loop always writes the candidate index and advances the length
/// only when the predicate holds (`k += pred as usize`), so there is no
/// data-dependent branch for the CPU to mispredict on selective
/// filters. The result lists the matching indices in ascending order.
pub(crate) fn select_indices(len: usize, pred: impl Fn(usize) -> bool) -> Vec<u32> {
    debug_assert!(len <= u32::MAX as usize, "column fits u32 indices");
    let mut sel = vec![0u32; len];
    let mut k = 0usize;
    for i in 0..len {
        sel[k] = i as u32;
        k += pred(i) as usize;
    }
    sel.truncate(k);
    sel
}

/// Pass 2 of the vectorized kernels: a zero-copy, cursor-based k-way
/// walk over per-run sorted keys, grouped by key.
///
/// `lens[r]` is run `r`'s length and `key_at(r, i)` its `i`-th key
/// (strictly ascending within a run). `on_group` fires once per
/// distinct key across all runs, in ascending key order, with the
/// member `(run, index)` pairs in ascending run order — the same
/// operand order [`merge_runs`] and the legacy fold produce, so
/// combine rules (saturating sums, largest-provenance) stay
/// byte-compatible. Unlike [`merge_runs`] this never materializes
/// `(key, value)` tuples: callers read values straight out of the
/// source columns via the member indices.
pub(crate) fn kway_groups<K: Ord + Copy>(
    lens: &[usize],
    key_at: impl Fn(usize, usize) -> K,
    mut on_group: impl FnMut(K, &[(usize, usize)]),
) {
    let runs = lens.len();
    let mut cursors = vec![0usize; runs];
    let mut members: Vec<(usize, usize)> = Vec::with_capacity(runs);
    loop {
        let mut min: Option<K> = None;
        for r in 0..runs {
            if cursors[r] < lens[r] {
                let key = key_at(r, cursors[r]);
                min = Some(match min {
                    Some(m) if m <= key => m,
                    _ => key,
                });
            }
        }
        let Some(min) = min else {
            return;
        };
        members.clear();
        for r in 0..runs {
            if cursors[r] < lens[r] && key_at(r, cursors[r]) == min {
                members.push((r, cursors[r]));
                cursors[r] += 1;
            }
        }
        on_group(min, &members);
    }
}

/// K-way merges per-shard runs of `(key, value)` pairs whose keys are
/// sorted strictly ascending *within* each run.
///
/// Equal keys across runs are combined with `combine(acc, next)` in
/// ascending run (shard) order — the same operand order the legacy
/// engine produced by folding shard partials into a `BTreeMap` one
/// shard at a time, which keeps saturating sums and last-writer rules
/// byte-compatible.
pub(crate) fn merge_runs<K: Ord + Copy, V>(
    mut runs: Vec<Vec<(K, V)>>,
    mut combine: impl FnMut(&mut V, V),
) -> Vec<(K, V)> {
    let mut iters: Vec<_> = runs.drain(..).map(|r| r.into_iter().peekable()).collect();
    let mut out = Vec::new();
    loop {
        let mut min_key: Option<K> = None;
        for it in iters.iter_mut() {
            if let Some(&(key, _)) = it.peek() {
                min_key = Some(match min_key {
                    Some(m) if m <= key => m,
                    _ => key,
                });
            }
        }
        let Some(min) = min_key else {
            return out;
        };
        let mut merged: Option<V> = None;
        for it in iters.iter_mut() {
            if it.peek().is_some_and(|&(key, _)| key == min) {
                let (_, value) = it
                    .next()
                    .expect("invariant: peek returned Some on this iterator above");
                match merged.as_mut() {
                    Some(acc) => combine(acc, value),
                    None => merged = Some(value),
                }
            }
        }
        out.push((
            min,
            merged.expect("invariant: min was drawn from one of these runs"),
        ));
    }
}

/// Table families of a [`ColumnarWindow`], as a bitmask — the unit the
/// query-time segment merge works in, so resolving a stack for a
/// link-series plan never touches a large usage delta.
pub(crate) const FAM_USAGE: u8 = 1 << 0;
pub(crate) const FAM_CLIENTS: u8 = 1 << 1;
pub(crate) const FAM_LINKS: u8 = 1 << 2;
pub(crate) const FAM_AIRTIME: u8 = 1 << 3;
pub(crate) const FAM_CENSUS: u8 = 1 << 4;
pub(crate) const FAM_SCANS: u8 = 1 << 5;
pub(crate) const FAM_CRASHES: u8 = 1 << 6;

/// The newest member of a k-way group: segment runs are ordered oldest
/// to newest and [`kway_groups`] lists members in ascending run order,
/// so the last member is the newest segment holding the key.
fn newest(members: &[(usize, usize)]) -> (usize, usize) {
    *members
        .last()
        .expect("invariant: kway_groups never emits an empty group")
}

/// Newest-wins merge of one shard's segment stack for one window:
/// `segs` lists the segments holding the window, **oldest to newest**,
/// and the result is the single [`ColumnarWindow`] a monolithic seal
/// would have produced — restricted to the table `families` requested.
///
/// Correctness leans on the delta-build invariant: a delta row always
/// carries the key's full value at seal time, so taking the newest
/// segment's row for each key reconstructs the live table exactly. Key
/// columns stay sorted because [`kway_groups`] emits groups in
/// ascending key order; the zone map is rebuilt over the merged
/// columns, so segment-granular pruning composes with shard-granular
/// pruning untouched.
pub(crate) fn merge_segments(segs: &[&ColumnarWindow], families: u8) -> ColumnarWindow {
    let mut w = ColumnarWindow::default();
    if families & FAM_USAGE != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.usage_mac.len()).collect();
        kway_groups(
            &lens,
            |r, i| (segs[r].usage_mac[i], segs[r].usage_app[i]),
            |(mac, app), members| {
                let (r, i) = newest(members);
                w.usage_mac.push(mac);
                w.usage_app.push(app);
                w.usage_up.push(segs[r].usage_up[i]);
                w.usage_down.push(segs[r].usage_down[i]);
            },
        );
    }
    if families & FAM_CLIENTS != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.client_mac.len()).collect();
        kway_groups(
            &lens,
            |r, i| segs[r].client_mac[i],
            |mac, members| {
                let (r, i) = newest(members);
                w.client_mac.push(mac);
                w.client_meta.push(segs[r].client_meta[i]);
                w.client_os.push(segs[r].client_os[i]);
                w.client_caps.push(segs[r].client_caps[i]);
                w.client_band.push(segs[r].client_band[i]);
                w.client_rssi.push(segs[r].client_rssi[i]);
            },
        );
    }
    if families & FAM_LINKS != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.link_keys.len()).collect();
        w.link_offsets.push(0);
        kway_groups(
            &lens,
            |r, i| segs[r].link_keys[i],
            |key, members| {
                let (r, i) = newest(members);
                let (ts, ratio) = segs[r].link_series_at(i);
                w.link_keys.push(key);
                w.link_ts.extend_from_slice(ts);
                w.link_ratio.extend_from_slice(ratio);
                w.link_offsets.push(w.link_ts.len());
            },
        );
    }
    if families & FAM_AIRTIME != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.airtime_key.len()).collect();
        kway_groups(
            &lens,
            |r, i| segs[r].airtime_key[i],
            |key, members| {
                let (r, i) = newest(members);
                w.airtime_key.push(key);
                w.airtime_elapsed.push(segs[r].airtime_elapsed[i]);
                w.airtime_busy.push(segs[r].airtime_busy[i]);
            },
        );
    }
    if families & FAM_CENSUS != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.census_device.len()).collect();
        w.census_offsets.push(0);
        kway_groups(
            &lens,
            |r, i| segs[r].census_device[i],
            |device, members| {
                let (r, i) = newest(members);
                let rows = segs[r].census_rows_at(i);
                w.census_device.push(device);
                w.census_band
                    .extend_from_slice(&segs[r].census_band[rows.clone()]);
                w.census_channel
                    .extend_from_slice(&segs[r].census_channel[rows.clone()]);
                w.census_networks
                    .extend_from_slice(&segs[r].census_networks[rows.clone()]);
                w.census_hotspots
                    .extend_from_slice(&segs[r].census_hotspots[rows]);
                w.census_offsets.push(w.census_band.len());
            },
        );
    }
    if families & FAM_SCANS != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.scan_device.len()).collect();
        w.scan_offsets.push(0);
        kway_groups(
            &lens,
            |r, i| segs[r].scan_device[i],
            |device, members| {
                let (r, i) = newest(members);
                let rows = segs[r].scan_rows_at(i);
                w.scan_device.push(device);
                w.scan_ts.extend_from_slice(&segs[r].scan_ts[rows.clone()]);
                w.scan_channel
                    .extend_from_slice(&segs[r].scan_channel[rows.clone()]);
                w.scan_util_ppm
                    .extend_from_slice(&segs[r].scan_util_ppm[rows.clone()]);
                w.scan_decodable_ppm
                    .extend_from_slice(&segs[r].scan_decodable_ppm[rows.clone()]);
                w.scan_networks
                    .extend_from_slice(&segs[r].scan_networks[rows]);
                w.scan_offsets.push(w.scan_ts.len());
            },
        );
    }
    if families & FAM_CRASHES != 0 {
        let lens: Vec<usize> = segs.iter().map(|s| s.crash_device.len()).collect();
        w.crash_offsets.push(0);
        kway_groups(
            &lens,
            |r, i| segs[r].crash_device[i],
            |device, members| {
                let (r, i) = newest(members);
                w.crash_device.push(device);
                w.crash_rows.extend_from_slice(segs[r].crash_rows_at(i));
                w.crash_offsets.push(w.crash_rows.len());
            },
        );
    }
    w.zone = WindowZoneMap::build(&w);
    w
}

/// Stack-aware variant of [`ColumnarWindow::usage_totals_by_mac`]: one
/// fused newest-wins + group-by pass over a shard's segment runs
/// (oldest to newest), so the vectorized usage kernels pay one k-way
/// walk instead of materializing a merged window. Output is identical
/// to `merge_segments(segs, FAM_USAGE).usage_totals_by_mac()`.
pub(crate) fn usage_totals_by_mac_stack(
    segs: &[&ColumnarWindow],
) -> (Vec<MacAddress>, Vec<UsageTotals>) {
    let mut macs: Vec<MacAddress> = Vec::new();
    let mut totals: Vec<UsageTotals> = Vec::new();
    let lens: Vec<usize> = segs.iter().map(|s| s.usage_mac.len()).collect();
    kway_groups(
        &lens,
        |r, i| (segs[r].usage_mac[i], segs[r].usage_app[i]),
        |(mac, _), members| {
            let (r, i) = newest(members);
            if macs.last() != Some(&mac) {
                macs.push(mac);
                totals.push(UsageTotals::default());
            }
            let slot = totals
                .last_mut()
                .expect("invariant: pushed alongside macs above");
            slot.up_bytes = slot.up_bytes.saturating_add(segs[r].usage_up[i]);
            slot.down_bytes = slot.down_bytes.saturating_add(segs[r].usage_down[i]);
        },
    );
    (macs, totals)
}

/// Stack-aware variant of [`ColumnarWindow::add_usage_by_app`]: rolls
/// the newest-wins resolution of a shard's usage cells into dense
/// per-application lanes in one k-way pass.
pub(crate) fn add_usage_by_app_stack(
    segs: &[&ColumnarWindow],
    lanes: &mut [UsageTotals; APP_LANES],
) {
    let lens: Vec<usize> = segs.iter().map(|s| s.usage_mac.len()).collect();
    kway_groups(
        &lens,
        |r, i| (segs[r].usage_mac[i], segs[r].usage_app[i]),
        |(_, app), members| {
            let (r, i) = newest(members);
            let slot = &mut lanes[app as usize];
            slot.up_bytes = slot.up_bytes.saturating_add(segs[r].usage_up[i]);
            slot.down_bytes = slot.down_bytes.saturating_add(segs[r].usage_down[i]);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use airstat_classify::mac::Oui;
    use airstat_telemetry::report::{Report, ReportPayload, UsageRecord};

    const W: WindowId = WindowId(1501);

    fn usage_report(device: u64, seq: u64, mac_id: u64, up: u64) -> Report {
        Report {
            device,
            seq,
            timestamp_s: 0,
            payload: ReportPayload::Usage(vec![UsageRecord {
                mac: MacAddress::from_id(Oui([0, 80, 194]), mac_id),
                app: Application::Netflix,
                up_bytes: up,
                down_bytes: 2 * up,
            }]),
        }
    }

    #[test]
    fn build_packs_usage_in_key_order() {
        let mut shard = StoreShard::default();
        for (i, report) in (0..12u64)
            .map(|d| usage_report(d, 0, 11 - d, d + 1))
            .enumerate()
        {
            assert!(shard.ingest(W, &report), "report {i}");
        }
        let cols = ColumnarShard::build(&shard);
        let w = cols.window(W).expect("window present");
        assert_eq!(w.usage_mac.len(), 12);
        let mut sorted = w.usage_mac.clone();
        sorted.sort();
        assert_eq!(w.usage_mac, sorted, "key column is sorted");
        // Cells round-trip exactly against the source map.
        let from_map: Vec<_> = shard
            .window(W)
            .unwrap()
            .usage
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(w.usage_cells().collect::<Vec<_>>(), from_map);
    }

    #[test]
    fn empty_shard_projects_to_no_windows() {
        let cols = ColumnarShard::build(&StoreShard::default());
        assert_eq!(cols.window_ids().count(), 0);
        assert!(cols.window(W).is_none());
    }

    #[test]
    fn merge_runs_combines_equal_keys_in_run_order() {
        let runs = vec![
            vec![(1u64, vec![0u32]), (3, vec![1])],
            vec![(1, vec![2]), (2, vec![3])],
            vec![(3, vec![4])],
        ];
        let merged = merge_runs(runs, |acc, next| acc.extend(next));
        assert_eq!(
            merged,
            vec![(1, vec![0, 2]), (2, vec![3]), (3, vec![1, 4]),]
        );
    }

    #[test]
    fn merge_runs_handles_empty_and_disjoint_runs() {
        let runs: Vec<Vec<(u8, u8)>> = vec![vec![], vec![(5, 50)], vec![(1, 10), (9, 90)]];
        let merged = merge_runs(runs, |_, _| panic!("no key collides"));
        assert_eq!(merged, vec![(1, 10), (5, 50), (9, 90)]);
    }

    #[test]
    fn select_indices_is_ascending_and_exact() {
        let data = [3u32, 0, 7, 0, 9, 2];
        let sel = select_indices(data.len(), |i| data[i] > 2);
        assert_eq!(sel, vec![0, 2, 4]);
        assert_eq!(select_indices(0, |_| true), Vec::<u32>::new());
        assert_eq!(select_indices(4, |_| false), Vec::<u32>::new());
    }

    #[test]
    fn kway_groups_matches_merge_runs_order() {
        let runs = [
            vec![(1u64, 10u32), (3, 11)],
            vec![(1, 12), (2, 13)],
            vec![(3, 14)],
        ];
        let mut grouped: Vec<(u64, Vec<u32>)> = Vec::new();
        let lens: Vec<usize> = runs.iter().map(Vec::len).collect();
        kway_groups(
            &lens,
            |r, i| runs[r][i].0,
            |key, members| {
                grouped.push((key, members.iter().map(|&(r, i)| runs[r][i].1).collect()));
            },
        );
        assert_eq!(
            grouped,
            vec![(1, vec![10, 12]), (2, vec![13]), (3, vec![11, 14])]
        );
    }

    #[test]
    fn zone_map_counts_and_ranges_match_the_columns() {
        let mut shard = StoreShard::default();
        for (i, report) in (0..5u64).map(|d| usage_report(d, 0, d, d + 1)).enumerate() {
            assert!(shard.ingest(W, &report), "report {i}");
        }
        let cols = ColumnarShard::build(&shard);
        let z = cols.window(W).expect("window present").zone();
        assert_eq!(z.usage_rows, 5);
        assert_eq!(z.apps_present, 1 << (Application::Netflix as usize));
        assert_eq!(z.client_rows, 0);
        assert_eq!(z.link_key_range, None);
        assert_eq!(z.crash_devices, 0);
        // Empty shards summarize to the all-zero zone map.
        let empty = ColumnarShard::build(&StoreShard::default());
        assert!(empty.window(W).is_none());
    }

    #[test]
    fn usage_totals_by_mac_collapses_cells_per_mac() {
        let mut shard = StoreShard::default();
        // Two cells for mac 1 (apps differ via distinct devices' reports
        // would collide; use distinct apps through raw ingest instead).
        for (seq, app) in [(0, Application::Netflix), (1, Application::Youtube)] {
            let report = Report {
                device: 7,
                seq,
                timestamp_s: 0,
                payload: ReportPayload::Usage(vec![UsageRecord {
                    mac: MacAddress::from_id(Oui([0, 80, 194]), 1),
                    app,
                    up_bytes: 5,
                    down_bytes: 10,
                }]),
            };
            assert!(shard.ingest(W, &report));
        }
        let cols = ColumnarShard::build(&shard);
        let w = cols.window(W).unwrap();
        let (macs, totals) = w.usage_totals_by_mac();
        assert_eq!(macs.len(), 1);
        assert_eq!(totals[0].up_bytes, 10);
        assert_eq!(totals[0].down_bytes, 20);
        let mut lanes = [UsageTotals::default(); APP_LANES];
        w.add_usage_by_app(&mut lanes);
        assert_eq!(lanes[Application::Netflix as usize].up_bytes, 5);
        assert_eq!(lanes[Application::Youtube as usize].up_bytes, 5);
    }
}
