//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! `any::<T>()`, `Just`, tuple and collection strategies, a tiny
//! regex-subset string generator, and the `proptest!` / `prop_assert*`
//! macros. There is no shrinking: a failing case panics with the failure
//! message and the deterministic per-test seed, which is enough to
//! reproduce it.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies. Deterministically derived per test
    /// function so failures reproduce across runs.
    pub type TestRng = SmallRng;

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn new_test_rng(name: &str) -> TestRng {
        SmallRng::seed_from_u64(fnv1a(name.as_bytes()))
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The generated case did not satisfy an assumption; retry.
        Reject(String),
        /// An assertion failed; abort the test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy is just a pure sampling function over a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.new_value(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 candidates in a row",
                self.whence
            )
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;

                    fn new_value(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }

                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;

                    fn new_value(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical "anything goes" strategy, for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_gen {
        ($($ty:ty),*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.gen()
                    }
                }
            )*
        };
    }

    arbitrary_via_gen!(bool, u8, u16, u32, u64, usize);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            rng.fill(&mut out[..]);
            out
        }
    }

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strings are generated from a small regex subset: literals, `\`
    /// escapes, `[a-z0-9]` classes with ranges, `(a|b)` alternation, and
    /// `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    /// `prop::collection::vec` size argument.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection strategy");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec_strategy<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            // Bounded retries so duplicate-heavy element strategies still
            // terminate (with a smaller set) instead of spinning.
            let mut attempts = 0usize;
            while out.len() < n && attempts < 10 * n + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set_strategy<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, matching upstream's default 3:1 weighting.
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select needs options");
        Select { options }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::iter::Peekable;
    use std::str::Chars;

    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Alt(Vec<Vec<Node>>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut it = pattern.chars().peekable();
        let branches = parse_alt(&mut it, pattern);
        assert!(
            it.peek().is_none(),
            "unsupported regex pattern {:?}: trailing input",
            pattern
        );
        let mut out = String::new();
        emit_seq(pick(&branches, rng), rng, &mut out);
        out
    }

    fn pick<'a>(branches: &'a [Vec<Node>], rng: &mut TestRng) -> &'a [Node] {
        if branches.len() == 1 {
            &branches[0]
        } else {
            &branches[rng.gen_range(0..branches.len())]
        }
    }

    fn emit_seq(seq: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in seq {
            emit(node, rng, out);
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let idx = rng.gen_range(0..ranges.len());
                let (lo, hi) = ranges[idx];
                out.push(char::from_u32(rng.gen_range(lo as u32..=hi as u32)).unwrap());
            }
            Node::Alt(branches) => emit_seq(pick(branches, rng), rng, out),
            Node::Repeat(inner, lo, hi) => {
                let n = if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }

    fn parse_alt(it: &mut Peekable<Chars>, pattern: &str) -> Vec<Vec<Node>> {
        let mut branches = vec![parse_seq(it, pattern)];
        while it.peek() == Some(&'|') {
            it.next();
            branches.push(parse_seq(it, pattern));
        }
        branches
    }

    fn parse_seq(it: &mut Peekable<Chars>, pattern: &str) -> Vec<Node> {
        let mut seq = Vec::new();
        while let Some(&c) = it.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = parse_atom(it, pattern);
            seq.push(parse_quantifier(atom, it, pattern));
        }
        seq
    }

    fn parse_atom(it: &mut Peekable<Chars>, pattern: &str) -> Node {
        match it.next() {
            Some('[') => {
                let mut ranges = Vec::new();
                loop {
                    match it.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if it.peek() == Some(&'-') {
                                it.next();
                                match it.peek() {
                                    // `-` just before `]` is a literal,
                                    // not a range (e.g. `[a-z0-9.-]`).
                                    Some(&']') => {
                                        ranges.push((lo, lo));
                                        ranges.push(('-', '-'));
                                    }
                                    Some(&hi) => {
                                        it.next();
                                        ranges.push((lo, hi));
                                    }
                                    None => bad(pattern, "unterminated class range"),
                                }
                            } else {
                                ranges.push((lo, lo));
                            }
                        }
                        None => bad(pattern, "unterminated character class"),
                    }
                }
                if ranges.is_empty() {
                    bad(pattern, "empty character class")
                }
                Node::Class(ranges)
            }
            Some('(') => {
                let branches = parse_alt(it, pattern);
                if it.next() != Some(')') {
                    bad(pattern, "unterminated group")
                }
                Node::Alt(branches)
            }
            Some('\\') => {
                let c = it.next().unwrap_or_else(|| bad(pattern, "dangling escape"));
                Node::Lit(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                })
            }
            Some('.') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]),
            Some(c) => Node::Lit(c),
            None => bad(pattern, "empty atom"),
        }
    }

    fn parse_quantifier(atom: Node, it: &mut Peekable<Chars>, pattern: &str) -> Node {
        match it.peek() {
            Some('{') => {
                it.next();
                let mut lo = String::new();
                while let Some(&c) = it.peek() {
                    if c.is_ascii_digit() {
                        lo.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                let lo: u32 = lo
                    .parse()
                    .unwrap_or_else(|_| bad(pattern, "bad repeat count"));
                let hi = match it.next() {
                    Some('}') => lo,
                    Some(',') => {
                        let mut hi = String::new();
                        while let Some(&c) = it.peek() {
                            if c.is_ascii_digit() {
                                hi.push(c);
                                it.next();
                            } else {
                                break;
                            }
                        }
                        if it.next() != Some('}') {
                            bad(pattern, "unterminated repeat")
                        }
                        hi.parse()
                            .unwrap_or_else(|_| bad(pattern, "bad repeat bound"))
                    }
                    _ => bad(pattern, "unterminated repeat"),
                };
                Node::Repeat(Box::new(atom), lo, hi)
            }
            Some('?') => {
                it.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                it.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                it.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            _ => atom,
        }
    }

    fn bad(pattern: &str, why: &str) -> ! {
        panic!("unsupported regex pattern {:?}: {}", pattern, why)
    }
}

/// Namespace mirror of upstream's `prop::` module paths.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{btree_set_strategy, vec_strategy, SizeRange};

        pub fn vec<S: crate::strategy::Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> crate::strategy::VecStrategy<S> {
            vec_strategy(element, size)
        }

        pub fn btree_set<S>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> crate::strategy::BTreeSetStrategy<S>
        where
            S: crate::strategy::Strategy,
            S::Value: Ord,
        {
            btree_set_strategy(element, size)
        }
    }

    pub mod option {
        pub fn of<S: crate::strategy::Strategy>(inner: S) -> crate::strategy::OptionStrategy<S> {
            crate::strategy::option_of(inner)
        }
    }

    pub mod sample {
        pub fn select<T: Clone>(options: Vec<T>) -> crate::strategy::Select<T> {
            crate::strategy::select(options)
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr);) => {};
    (@fns ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::new_test_rng(concat!(
                file!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} attempts)",
                        stringify!($name),
                        attempts
                    );
                }
                $(let $pat = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)*
                #[allow(unused_mut)] // `mut` is only needed when $body mutates captures
                let mut case =
                    move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                match case() {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        msg,
                    )) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_strategy_matches_shape() {
        let mut rng = crate::test_runner::new_test_rng("string_strategy_matches_shape");
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z]{1,10}\\.(com|net|org)", &mut rng);
            let (host, tld) = s.split_once('.').expect("dot present");
            assert!((1..=10).contains(&host.len()));
            assert!(host.chars().all(|c| c.is_ascii_lowercase()));
            assert!(matches!(tld, "com" | "net" | "org"));
        }
    }

    #[test]
    fn class_with_trailing_dash_is_a_literal_dash() {
        let mut rng = crate::test_runner::new_test_rng("class_with_trailing_dash");
        let mut saw_dash = false;
        for _ in 0..400 {
            let s = Strategy::new_value(&"[a-z0-9.-]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '-'));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash, "the trailing dash must be generatable");
    }

    #[test]
    fn union_and_just_cover_options() {
        let mut rng = crate::test_runner::new_test_rng("union_and_just_cover_options");
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::new_test_rng("vec_strategy_respects_size");
        for _ in 0..100 {
            let v = prop::collection::vec(0u64..10, 2..5).new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_with_config((a, b) in (0u32..5, 0u32..5)) {
            prop_assert_ne!(a + b + 1, 0);
        }
    }
}
