//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm rand 0.8 uses on
//!   64-bit platforms), seeded via SplitMix64 like rand 0.8.5's
//!   `seed_from_u64`;
//! * [`Rng::gen`] for `f64` / `u64` / `u32` / `bool` with rand's bit
//!   conversions (53-bit mantissa fill for `f64`, high 32 bits for `u32`);
//! * [`Rng::gen_range`] over integer and float ranges using rand 0.8's
//!   widening-multiply-with-rejection (Lemire) method so draw sequences
//!   match the upstream implementation;
//! * [`SeedableRng::seed_from_u64`].
//!
//! Everything is deterministic and dependency-free. The statistical tests
//! in `crates/airstat-stats` exercise the uniformity of these conversions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level RNG interface: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG's raw bits (`Standard` in rand).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    /// 53 random bits scaled into `[0, 1)`, exactly rand 0.8's `Standard`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// 24 random bits scaled into `[0, 1)`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    /// Compares against the most significant bit (rand 0.8's `Standard`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler.
///
/// `SampleRange` is implemented once, generically, over `Range<T>` and
/// `RangeInclusive<T>` for `T: SampleUniform` — the same shape as upstream
/// rand. The blanket impl matters for inference: it lets the compiler
/// unify the range's element type with the use site (e.g.
/// `arr[rng.gen_range(0..3)]` inferring `usize`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! uniform_int_impl {
    ($($ty:ty => $unsigned:ty, $u_large:ty, $sample:ident, $zone:ident);+ $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_exclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "cannot sample empty range");
                // Upstream routes exclusive ranges through the inclusive
                // sampler with `high - 1`; keep that shape so draw
                // sequences match.
                Self::sample_inclusive(low, high.wrapping_sub(1), rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low <= high, "cannot sample empty range");
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $u_large;
                if range == 0 {
                    // Full domain: every bit pattern is valid.
                    return <$ty>::sample_from_bits(rng);
                }
                let zone = $zone(range);
                $sample(rng, range, low as $unsigned as $u_large, zone) as $ty
            }
        }
    )+};
}

/// Helper for full-domain inclusive ranges: draws from the same raw words
/// as upstream's `Standard` distribution (32-bit output for sub-word
/// integers, 64-bit for the rest).
trait SampleFromBits {
    fn sample_from_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_from_bits_impl {
    (via32: $($ty32:ty),+; via64: $($ty64:ty),+) => {
        $(
            impl SampleFromBits for $ty32 {
                fn sample_from_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u32() as $ty32
                }
            }
        )+
        $(
            impl SampleFromBits for $ty64 {
                fn sample_from_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty64
                }
            }
        )+
    };
}
sample_from_bits_impl!(via32: u8, u16, u32, i8, i16, i32; via64: u64, usize, i64, isize);

// Rejection zones, matching rand 0.8's `uniform_int_impl!`: integer types
// up to 16 bits compute the exact zone by modulus; wider types use the
// cheaper leading-zeros approximation.

fn zone_modulus_u32(range: u32) -> u32 {
    let ints_to_reject = (u32::MAX - range + 1) % range;
    u32::MAX - ints_to_reject
}

fn zone_shift_u32(range: u32) -> u32 {
    (range << range.leading_zeros()).wrapping_sub(1)
}

fn zone_shift_u64(range: u64) -> u64 {
    (range << range.leading_zeros()).wrapping_sub(1)
}

/// Widening-multiply rejection sampling of `[0, range)`, offset by `low`
/// (rand 0.8's unbiased Lemire method), drawing 32-bit words.
///
/// Types whose `$u_large` is `u32` upstream (`u8`..`u32` and signed
/// counterparts) must draw via `next_u32`, not `next_u64`, to keep the
/// word stream aligned with upstream.
fn sample_bounded_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32, low: u32, zone: u32) -> u32 {
    debug_assert!(range > 0);
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (range as u64);
        let hi = (m >> 32) as u32;
        let lo = m as u32;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// 64-bit variant of [`sample_bounded_u32`].
fn sample_bounded_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64, low: u64, zone: u64) -> u64 {
    debug_assert!(range > 0);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let hi = (m >> 64) as u64;
        let lo = m as u64;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

uniform_int_impl! {
    u8 => u8, u32, sample_bounded_u32, zone_modulus_u32;
    u16 => u16, u32, sample_bounded_u32, zone_modulus_u32;
    u32 => u32, u32, sample_bounded_u32, zone_shift_u32;
    u64 => u64, u64, sample_bounded_u64, zone_shift_u64;
    usize => usize, u64, sample_bounded_u64, zone_shift_u64;
    i8 => u8, u32, sample_bounded_u32, zone_modulus_u32;
    i16 => u16, u32, sample_bounded_u32, zone_modulus_u32;
    i32 => u32, u32, sample_bounded_u32, zone_shift_u32;
    i64 => u64, u64, sample_bounded_u64, zone_shift_u64;
    isize => usize, u64, sample_bounded_u64, zone_shift_u64;
}

impl SampleUniform for f64 {
    /// rand 0.8's `UniformFloat::sample_single`: a uniform value in
    /// `[1, 2)` shifted to `[0, 1)` (exact by Sterbenz), then
    /// `value * scale + low`, retrying with a slightly reduced scale when
    /// rounding lands exactly on `high`.
    fn sample_exclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low < high, "cannot sample empty range");
        let mut scale = high - low;
        assert!(scale.is_finite(), "range overflow");
        loop {
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            scale = f64::from_bits(scale.to_bits() - 1);
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        assert!(low <= high, "cannot sample empty range");
        if low == high {
            return low;
        }
        f64::sample_exclusive(low, high.next_up_compat(), rng)
    }
}

impl SampleUniform for f32 {
    fn sample_exclusive<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        assert!(low < high, "cannot sample empty range");
        let mut scale = high - low;
        assert!(scale.is_finite(), "range overflow");
        loop {
            let fraction = rng.next_u32() >> 9;
            let value1_2 = f32::from_bits((127u32 << 23) | fraction);
            let value0_1 = value1_2 - 1.0;
            let res = value0_1 * scale + low;
            if res < high {
                return res;
            }
            scale = f32::from_bits(scale.to_bits() - 1);
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
        assert!(low <= high, "cannot sample empty range");
        if low == high {
            return low;
        }
        f32::sample_exclusive(low, high, rng)
    }
}

/// `f64::next_up` for the pinned toolchain floor (stable in 1.86).
trait NextUpCompat {
    fn next_up_compat(self) -> f64;
}

impl NextUpCompat for f64 {
    fn next_up_compat(self) -> f64 {
        if self.is_nan() || self == f64::INFINITY {
            return self;
        }
        let bits = self.to_bits();
        let next = if self == 0.0 {
            1
        } else if self > 0.0 {
            bits + 1
        } else {
            bits - 1
        };
        f64::from_bits(next)
    }
}

/// The user-facing RNG interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64
    /// exactly as rand 0.8.5 seeds its xoshiro generators.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    ///
    /// The same algorithm rand 0.8's `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // xoshiro256++ scrambles its full output word, so truncation
            // is sound — and it matches upstream rand 0.8's behaviour.
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; nudge it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x0000_0000_0000_0001,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_int_bounds_and_uniformity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            let v = rng.gen_range(0..6usize);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..11);
            assert_eq!(v, 10);
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        // Must not hang or panic: range arithmetic wraps to 0 internally.
        for _ in 0..100 {
            let _: u8 = rng.gen_range(0u8..=u8::MAX);
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = rng.gen_range(5u32..5);
    }
}
